//! The multi-algebra conformance arm: every class a
//! [`MultiPlane`] serves, differentially certified against its own
//! exhaustive oracle — fresh and after shared-dirty-set repair.
//!
//! The standard registry ([`standard_builder`]) is the serving lineup
//! the multi-plane story rests on: all eight Table 1 algebras (the
//! seven regular ones over destination tables, shortest-widest over its
//! bottleneck-class tables) plus the four BGP compositions `B1`–`B4`
//! over per-`(destination, word)` state tables. Edge weights and AS
//! relationships are derived *from the topology itself* (pair-keyed
//! [`synth_atom`] hashes), so every class's scheme factory can rebuild
//! on any churned graph and always agrees with its oracle about
//! weights.
//!
//! [`check_multi_instance`] sweeps one generated [`Instance`] through
//! three phases — `fresh` (just compiled), `repaired` (heal edge
//! removed, every class repaired from **one** shared dirty set) and
//! `restored` (edge added back, the `DirtyPairs::All` fallback) — and
//! in each phase checks every class three ways:
//!
//! * **hop-for-hop** against a freshly built scheme of the same class
//!   on the current topology;
//! * **snapshot agreement** — the immutable [`MultiSnapshot`] (which
//!   serves through the zero-alloc `StaticCore` when a class is
//!   pristine) must answer identically to the master's healed walk;
//! * **oracle certification** — routability and path weight against the
//!   class's own ground truth: the exhaustive simple-path oracle for
//!   Table 1 classes, the valley-free route engine for `B1`–`B4` (with
//!   `B4`'s `(word, length)` lexicographic weight).
//!
//! Coverage entries are `multi:{class}:{family}`, so a sweep across
//! seeds *proves* the classes × generator-families matrix from the
//! report itself instead of asserting counts.
//!
//! [`check_multi_scale`] is the polynomial arm for CI-sized graphs: the
//! exhaustive oracle is exponential, so at `n = 192` every class is
//! checked hop-for-hop against its fresh scheme only (which is itself
//! oracle-certified by the small-instance arm) across the same three
//! phases.
//!
//! [`check_multi_dynamic`] is the dynamic-tenancy arm: the
//! [`dynamic_classes`] registry — one admitted algebra *expression* per
//! compile path the admissibility gates can choose — is registered at
//! runtime through [`MultiPlane::register_class_expr`] (the same path
//! the wire's `Register` opcode takes) and each class is differentially
//! certified against its own exhaustive oracle across the same three
//! phases, with coverage entries
//! `multi-dynamic:{class}:{family}:{phase}`. A deregistration epilogue
//! checks the tombstone discipline: survivors serve bit-for-bit, the
//! freed wire id is reused, seed classes refuse to retire, and an
//! inadmissible expression never moves the registry or the epoch.

use std::fmt;

use cpr_algebra::{check_stretch, Gate, Property, RoutingAlgebra, SchemeChoice, StretchVerdict};
use cpr_bgp::{
    prefer_customer_shortest, routes_to, AsGraph, BgpAlgebra, BgpRoutes, BgpStateTable,
    PreferCustomer, ProviderCustomer, Relationship, ValleyFree, Word,
};
use cpr_graph::{EdgeWeights, Graph, NodeId};
use cpr_paths::exhaustive_preferred_all;
use cpr_plane::{
    build_tenant_class, dyn_edge_weights, MultiBuilder, MultiPlane, MultiSnapshot, RepairPolicy,
    TenantError,
};
use cpr_routing::{route, DestTable, RouteError, SwClassTable};
use rand::SeedableRng;

use crate::algebras::{empirical_properties, AlgebraId, ConformAlgebra, ALL_ALGEBRAS};
use crate::churn::synth_atom;
use crate::engine::{Report, Violation, COWEN_STRETCH, TABLE_STRETCH};
use crate::generate::Instance;

/// Family tag of the eight Table 1 classes.
pub const TABLE1_FAMILY: &str = "table1";
/// Family tag of the four BGP classes.
pub const BGP_FAMILY: &str = "bgp";

/// Registry names of the BGP classes, in wire class order after the
/// Table 1 block.
pub const BGP_CLASSES: [&str; 4] = ["bgp-b1", "bgp-b2", "bgp-b3", "bgp-b4"];

/// One entry of the standard multi-class registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultiClassSpec {
    /// Registry (and wire) name of the class.
    pub name: &'static str,
    /// [`TABLE1_FAMILY`] or [`BGP_FAMILY`].
    pub family: &'static str,
}

/// The standard registry, in wire traffic-class order: classes `0..8`
/// are the Table 1 algebras in [`ALL_ALGEBRAS`] order, classes `8..12`
/// are [`BGP_CLASSES`].
pub fn standard_classes() -> Vec<MultiClassSpec> {
    let mut specs: Vec<MultiClassSpec> = ALL_ALGEBRAS
        .into_iter()
        .map(|id| MultiClassSpec {
            name: id.name(),
            family: TABLE1_FAMILY,
        })
        .collect();
    specs.extend(BGP_CLASSES.into_iter().map(|name| MultiClassSpec {
        name,
        family: BGP_FAMILY,
    }));
    specs
}

/// Edge weights for `alg` derived purely from the topology: each edge's
/// atom is the pair-keyed endpoint hash, so any churned graph — not
/// just a stored instance — weighs deterministically, and a scheme
/// factory and its oracle can never disagree.
pub fn topology_weights<A>(alg: &A, graph: &Graph) -> EdgeWeights<A::W>
where
    A: ConformAlgebra,
    A::W: Send + Sync,
{
    EdgeWeights::from_fn(graph, |e| {
        let (u, v) = graph.endpoints(e);
        alg.weight_from_atom(synth_atom(u, v))
    })
}

/// Derives the AS relationship of one edge from its endpoint hash:
/// roughly a quarter of the links peer, the rest make the
/// higher-numbered endpoint the provider — which keeps the
/// provider–customer digraph acyclic on any topology.
fn relationship_of(u: NodeId, v: NodeId) -> Relationship {
    if synth_atom(u, v).0.is_multiple_of(4) {
        Relationship::Peer
    } else if u > v {
        Relationship::ProviderOf
    } else {
        Relationship::CustomerOf
    }
}

/// The AS-graph view of `graph` for the BGP classes: identical node
/// ids, identical edge insertion order (hence identical per-node port
/// numbering — required for the compiled plane to agree with schemes
/// built on the plain graph), relationships from [`relationship_of`].
pub fn as_graph_for(graph: &Graph) -> AsGraph {
    AsGraph::from_relationships(
        graph.node_count(),
        graph
            .edges()
            .map(|(_, (u, v))| (u, v, relationship_of(u, v))),
    )
    .expect("the source graph is simple, so the relationship list is too")
}

/// Registers the standard twelve classes; see [`standard_classes`] for
/// the order. Every factory derives weights/relationships from the
/// topology, so the registry compiles — and rebuilds under churn — on
/// any graph.
pub fn standard_builder() -> MultiBuilder {
    let mut builder = MultiBuilder::new();
    for id in ALL_ALGEBRAS {
        builder = if id == AlgebraId::ShortestWidest {
            // Not regular: destination tables are inadmissible
            // (Proposition 2), so SW serves through its own
            // bottleneck-class tables.
            builder.class(id.name(), |g: &Graph| {
                let alg = crate::algebras::shortest_widest();
                SwClassTable::build(g, &topology_weights(&alg, g))
            })
        } else {
            crate::with_algebra!(id, alg => builder.class(id.name(), move |g: &Graph| {
                DestTable::build(g, &topology_weights(&alg, g), &alg)
            }))
        };
    }
    builder = builder.class(BGP_CLASSES[0], |g: &Graph| {
        BgpStateTable::build(&as_graph_for(g), &ProviderCustomer)
    });
    builder = builder.class(BGP_CLASSES[1], |g: &Graph| {
        BgpStateTable::build(&as_graph_for(g), &ValleyFree)
    });
    builder = builder.class(BGP_CLASSES[2], |g: &Graph| {
        BgpStateTable::build(&as_graph_for(g), &PreferCustomer)
    });
    // B4 selects like B3 with a shortest-AS-path tie-break — exactly the
    // selection the route engine applies (`routes_to` is exact for B4);
    // its oracle check certifies the (word, length) lexicographic weight.
    builder = builder.class(BGP_CLASSES[3], |g: &Graph| {
        BgpStateTable::build(&as_graph_for(g), &PreferCustomer)
    });
    builder
}

/// Per-pair oracle check: given `(s, t)` and the delivered path (or
/// `None` for unroutable), returns `Some((kind, detail))` on violation.
type OracleCheck<'a> =
    dyn FnMut(NodeId, NodeId, Option<&[NodeId]>) -> Option<(String, String)> + 'a;

fn violation(tag: &str, class: &str, phase: &str, kind: &str, detail: String) -> Violation {
    Violation {
        instance: tag.to_owned(),
        algebra: class.to_owned(),
        scheme: format!("multi-plane+{phase}"),
        kind: kind.to_owned(),
        detail,
    }
}

/// The shared per-pair sweep: serve every ordered pair from the master
/// plane *and* the snapshot, demand routability agreement with the
/// freshly built class scheme and hop-for-hop agreement between master
/// and snapshot, verify every delivered hop is a live edge, then hand
/// the delivered path (or `None`) to the class's oracle check.
///
/// `hop_exact` additionally demands hop-for-hop equality with the fresh
/// scheme. That is the contract when the plane's state *is* a fresh
/// compile (just built, or repaired through the all-dirty rebuild
/// escape) — but **not** after a partial patch: a pair outside the
/// shared dirty closure legitimately keeps its old route, which can be
/// an equally-preferred sibling of the fresh compile's tie-break. In
/// that phase optimality is certified by the oracle check instead.
#[allow(clippy::too_many_arguments)]
fn differential_sweep(
    report: &mut Report,
    tag: &str,
    class_name: &str,
    phase: &str,
    multi: &MultiPlane,
    snap: &MultiSnapshot,
    class: usize,
    cap: usize,
    hop_exact: bool,
    fresh: &dyn Fn(NodeId, NodeId) -> Result<Vec<NodeId>, RouteError>,
    oracle_check: &mut OracleCheck<'_>,
) {
    let n = multi.graph().node_count();
    let before = report.violations.len();
    let mut overflow = 0usize;
    let mut push = |report: &mut Report, v: Violation| {
        if report.violations.len() - before < cap {
            report.violations.push(v);
        } else {
            overflow += 1;
        }
    };
    for s in 0..n {
        for t in 0..n {
            if s == t {
                continue;
            }
            report.pairs_checked += 1;
            let served = multi.lookup(class, s, t);
            let snapped = snap.lookup(class, s, t);
            let fresh_path = fresh(s, t);
            match (&served, &fresh_path) {
                (Ok((sp, _)), Ok(fp)) => {
                    if hop_exact && sp != fp {
                        push(
                            report,
                            violation(
                                tag,
                                class_name,
                                phase,
                                "multi-divergence",
                                format!("{s}→{t}: served {sp:?} vs fresh scheme {fp:?}"),
                            ),
                        );
                    }
                }
                (Err(_), Err(_)) => {}
                (sv, fr) => push(
                    report,
                    violation(
                        tag,
                        class_name,
                        phase,
                        "multi-divergence",
                        format!("{s}→{t}: served {sv:?} vs fresh scheme {fr:?}"),
                    ),
                ),
            }
            // Zero stale edges: every hop of a delivered path must exist
            // in the *current* topology, patched or not.
            if let Ok((sp, _)) = &served {
                if let Some(hop) = sp
                    .windows(2)
                    .find(|h| multi.graph().edge_between(h[0], h[1]).is_none())
                {
                    push(
                        report,
                        violation(
                            tag,
                            class_name,
                            phase,
                            "multi-stale-edge",
                            format!("{s}→{t}: served {sp:?} crosses vanished edge {hop:?}"),
                        ),
                    );
                    continue;
                }
            }
            match (&served, &snapped) {
                (Ok((sp, _)), Ok((zp, _))) if sp == zp => {}
                (Err(_), Err(_)) => {}
                (sv, zp) => push(
                    report,
                    violation(
                        tag,
                        class_name,
                        phase,
                        "snapshot-divergence",
                        format!("{s}→{t}: master {sv:?} vs snapshot {zp:?}"),
                    ),
                ),
            }
            let delivered = served.as_ref().ok().map(|(p, _)| p.as_slice());
            if let Some((kind, detail)) = oracle_check(s, t, delivered) {
                push(report, violation(tag, class_name, phase, &kind, detail));
            }
        }
    }
    if overflow > 0 {
        report.violations.push(violation(
            tag,
            class_name,
            phase,
            "violations-capped",
            format!("{overflow} further violations suppressed"),
        ));
    }
    report.schemes_run += 1;
}

/// Oracle + hop-for-hop check of one Table 1 class in one phase.
#[allow(clippy::too_many_arguments)]
fn check_table1_class<A, S>(
    report: &mut Report,
    tag: &str,
    phase: &str,
    multi: &MultiPlane,
    snap: &MultiSnapshot,
    class: usize,
    id: AlgebraId,
    alg: &A,
    scheme: &S,
    cap: usize,
    hop_exact: bool,
) where
    A: ConformAlgebra,
    A::W: Send + Sync + Clone + fmt::Debug + PartialEq,
    S: cpr_routing::RoutingScheme + Sync,
    S::Header: Send,
{
    let graph = multi.graph();
    let weights = topology_weights(alg, graph);
    let prune = empirical_properties(id).contains(Property::Monotone);
    let oracle = exhaustive_preferred_all(graph, &weights, alg, prune);
    let fresh = |s: NodeId, t: NodeId| route(scheme, graph, s, t);
    let mut oracle_check = |s: NodeId, t: NodeId, delivered: Option<&[NodeId]>| {
        let preferred = oracle[s].weight(t);
        match delivered {
            None => (!preferred.is_infinite()).then(|| {
                (
                    "multi-unroutable".to_owned(),
                    format!("{s}→{t}: refused but the oracle routes at {preferred:?}"),
                )
            }),
            Some(path) => {
                if preferred.is_infinite() {
                    return Some((
                        "multi-phantom-route".to_owned(),
                        format!("{s}→{t}: delivered {path:?} but no traversable path exists"),
                    ));
                }
                if path.first() != Some(&s) || path.last() != Some(&t) {
                    return Some((
                        "multi-misdelivery".to_owned(),
                        format!("{s}→{t}: delivered along {path:?}"),
                    ));
                }
                let actual = weights.path_weight(alg, graph, path);
                (check_stretch(alg, &actual, preferred, TABLE_STRETCH) == StretchVerdict::Exceeded)
                    .then(|| {
                        (
                            "multi-stretch-exceeded".to_owned(),
                            format!(
                                "{s}→{t}: path {path:?} weighs {actual:?}, exceeding the \
                                 stretch-{TABLE_STRETCH} bound over preferred {preferred:?}"
                            ),
                        )
                    })
            }
        }
    };
    differential_sweep(
        report,
        tag,
        id.name(),
        phase,
        multi,
        snap,
        class,
        cap,
        hop_exact,
        &fresh,
        &mut oracle_check,
    );
}

/// Oracle + hop-for-hop check of one BGP class in one phase. `b4`
/// switches the certified weight to the `(word, AS-path length)`
/// lexicographic carrier.
#[allow(clippy::too_many_arguments)]
fn check_bgp_class<A>(
    report: &mut Report,
    tag: &str,
    phase: &str,
    multi: &MultiPlane,
    snap: &MultiSnapshot,
    class: usize,
    name: &str,
    alg: &A,
    b4: bool,
    cap: usize,
    hop_exact: bool,
) where
    A: BgpAlgebra + Sync,
{
    let graph = multi.graph();
    let asg = as_graph_for(graph);
    let scheme = BgpStateTable::build(&asg, alg);
    let n = graph.node_count();
    let per_target: Vec<BgpRoutes> = (0..n).map(|t| routes_to(&asg, alg, t)).collect();
    let b4_alg = prefer_customer_shortest();
    let fresh = |s: NodeId, t: NodeId| route(&scheme, graph, s, t);
    let mut oracle_check = |s: NodeId, t: NodeId, delivered: Option<&[NodeId]>| {
        let routes = &per_target[t];
        match delivered {
            None => routes.weight(s).is_finite().then(|| {
                (
                    "multi-unroutable".to_owned(),
                    format!(
                        "{s}→{t}: refused but the route engine selects {:?}",
                        routes.weight(s)
                    ),
                )
            }),
            Some(path) => {
                if path.first() != Some(&s) || path.last() != Some(&t) {
                    return Some((
                        "multi-misdelivery".to_owned(),
                        format!("{s}→{t}: delivered along {path:?}"),
                    ));
                }
                let mut words: Vec<Word> = Vec::with_capacity(path.len() - 1);
                for hop in path.windows(2) {
                    match asg.word(hop[0], hop[1]) {
                        Some(w) => words.push(w),
                        None => {
                            return Some((
                                "multi-misdelivery".to_owned(),
                                format!("{s}→{t}: {path:?} crosses a non-edge"),
                            ))
                        }
                    }
                }
                if b4 {
                    let pairs: Vec<(Word, u64)> = words.into_iter().map(|w| (w, 1)).collect();
                    let actual = b4_alg.weigh_path_right(&pairs);
                    let expected = routes.weight_with_length(s);
                    (actual != expected).then(|| {
                        (
                            "multi-weight-divergence".to_owned(),
                            format!(
                                "{s}→{t}: path weighs {actual:?}, engine selected {expected:?}"
                            ),
                        )
                    })
                } else {
                    let actual = alg.weigh_path_right(&words);
                    let expected = routes.weight(s);
                    (actual != expected).then(|| {
                        (
                            "multi-weight-divergence".to_owned(),
                            format!(
                                "{s}→{t}: path weighs {actual:?}, engine selected {expected:?}"
                            ),
                        )
                    })
                }
            }
        }
    };
    differential_sweep(
        report,
        tag,
        name,
        phase,
        multi,
        snap,
        class,
        cap,
        hop_exact,
        &fresh,
        &mut oracle_check,
    );
}

/// One phase of [`check_multi_instance`]: every class against its own
/// oracle, plus coverage entries `multi:{class}:{family}`.
fn check_all_classes(
    report: &mut Report,
    tag: &str,
    instance_family: &str,
    phase: &str,
    multi: &MultiPlane,
    cap: usize,
    hop_exact: bool,
) {
    let snap = multi.snapshot();
    for (class, spec) in standard_classes().into_iter().enumerate() {
        if spec.family == TABLE1_FAMILY {
            let id = AlgebraId::from_name(spec.name).expect("registry names are algebra names");
            if id == AlgebraId::ShortestWidest {
                let alg = crate::algebras::shortest_widest();
                let scheme =
                    SwClassTable::build(multi.graph(), &topology_weights(&alg, multi.graph()));
                check_table1_class(
                    report, tag, phase, multi, &snap, class, id, &alg, &scheme, cap, hop_exact,
                );
            } else {
                crate::with_algebra!(id, alg => {
                    let scheme = DestTable::build(
                        multi.graph(),
                        &topology_weights(&alg, multi.graph()),
                        &alg,
                    );
                    check_table1_class(
                        report, tag, phase, multi, &snap, class, id, &alg, &scheme, cap,
                        hop_exact,
                    );
                });
            }
        } else {
            match spec.name {
                "bgp-b1" => check_bgp_class(
                    report,
                    tag,
                    phase,
                    multi,
                    &snap,
                    class,
                    spec.name,
                    &ProviderCustomer,
                    false,
                    cap,
                    hop_exact,
                ),
                "bgp-b2" => check_bgp_class(
                    report,
                    tag,
                    phase,
                    multi,
                    &snap,
                    class,
                    spec.name,
                    &ValleyFree,
                    false,
                    cap,
                    hop_exact,
                ),
                "bgp-b3" => check_bgp_class(
                    report,
                    tag,
                    phase,
                    multi,
                    &snap,
                    class,
                    spec.name,
                    &PreferCustomer,
                    false,
                    cap,
                    hop_exact,
                ),
                _ => check_bgp_class(
                    report,
                    tag,
                    phase,
                    multi,
                    &snap,
                    class,
                    spec.name,
                    &PreferCustomer,
                    true,
                    cap,
                    hop_exact,
                ),
            }
        }
        report
            .coverage
            .insert(format!("multi:{}:{}", spec.name, instance_family));
    }
}

/// Violations recorded per (class, phase) before capping; a systematic
/// bug would otherwise emit one string per ordered pair.
const MULTI_VIOLATION_CAP: usize = 50;

/// The multi-algebra conformance arm over one generated instance; see
/// the module docs for the three phases and the per-class checks.
pub fn check_multi_instance(inst: &Instance) -> Report {
    let mut report = Report::default();
    let graph = inst.graph();
    let tag = inst.tag();
    let mut multi = match MultiPlane::build(&graph, standard_builder()) {
        Ok(m) => m,
        Err(e) => {
            report.violations.push(violation(
                &tag,
                "*",
                "fresh",
                "multi-compile",
                e.to_string(),
            ));
            return report;
        }
    };
    check_all_classes(
        &mut report,
        &tag,
        &inst.family,
        "fresh",
        &multi,
        MULTI_VIOLATION_CAP,
        true,
    );

    let Some(_) = inst.heal_edge else {
        report
            .skips
            .push(format!("multi/repair: no removable edge ({tag})"));
        return report;
    };
    let policy = RepairPolicy {
        // Never force a rebuild: the point is the shared-dirty-set patch
        // path; a genuinely all-dirty delta still rebuilds through the
        // dirty == all escape.
        max_dirty_fraction: 1.0,
        ..RepairPolicy::default()
    };
    let obs = cpr_obs::Obs::with_null_tracer();
    // Phase 2: remove the heal edge — the structural endpoint dirty set.
    let degraded = inst.degraded_graph();
    match multi.reconcile(&degraded, &policy, &obs) {
        Ok(r) => {
            if r.strategy != "pairs" {
                report.violations.push(violation(
                    &tag,
                    "*",
                    "repaired",
                    "multi-strategy",
                    format!("removal-only delta used strategy {:?}", r.strategy),
                ));
            }
        }
        Err(e) => {
            report.violations.push(violation(
                &tag,
                "*",
                "repaired",
                "multi-repair",
                e.to_string(),
            ));
            return report;
        }
    }
    for c in multi.classes() {
        if c.dirty_pairs() != 0 {
            report.violations.push(violation(
                &tag,
                c.class_name(),
                "repaired",
                "multi-stale",
                format!("{} pairs still dirty after reconcile", c.dirty_pairs()),
            ));
        }
    }
    // After a *partial* patch, hop-for-hop equality with a fresh compile
    // is not the contract: pairs outside the shared dirty closure keep
    // their old (still valid, still optimal) routes, which may be
    // equally-preferred tie-break siblings of the fresh compile's
    // choice. Optimality is certified by the per-class oracles instead.
    check_all_classes(
        &mut report,
        &tag,
        &inst.family,
        "repaired",
        &multi,
        MULTI_VIOLATION_CAP,
        false,
    );

    // Phase 3: restore the edge — an addition, the DirtyPairs::All path.
    match multi.reconcile(&graph, &policy, &obs) {
        Ok(r) => {
            if r.strategy != "all" {
                report.violations.push(violation(
                    &tag,
                    "*",
                    "restored",
                    "multi-strategy",
                    format!("addition delta used strategy {:?}", r.strategy),
                ));
            }
        }
        Err(e) => {
            report.violations.push(violation(
                &tag,
                "*",
                "restored",
                "multi-repair",
                e.to_string(),
            ));
            return report;
        }
    }
    // An addition dirties everything (`DirtyPairs::All`), so the repair
    // took the dirty == all rebuild escape: the restored state *is* a
    // fresh compile and the hop-exact contract applies again.
    check_all_classes(
        &mut report,
        &tag,
        &inst.family,
        "restored",
        &multi,
        MULTI_VIOLATION_CAP,
        true,
    );
    report
}

/// Scale-arm check of one Table 1 class: hop-for-hop against the fresh
/// scheme where the phase permits it, and — since the exhaustive oracle
/// is out of reach at these sizes — a delivered path is certified by
/// *weighing* it against the fresh scheme's route for the same pair.
/// The fresh scheme is weight-exact (stretch 1, pinned by the
/// small-instance arm), so weight equality means the patched route is
/// an equally preferred selection.
#[allow(clippy::too_many_arguments)]
fn scale_check_table1<A, S>(
    report: &mut Report,
    tag: &str,
    phase: &str,
    multi: &MultiPlane,
    snap: &MultiSnapshot,
    class: usize,
    id: AlgebraId,
    alg: &A,
    scheme: &S,
    hop_exact: bool,
) where
    A: ConformAlgebra,
    A::W: Send + Sync + Clone + fmt::Debug + PartialEq,
    S: cpr_routing::RoutingScheme + Sync,
    S::Header: Send,
{
    let graph = multi.graph();
    let weights = topology_weights(alg, graph);
    let fresh = |s: NodeId, t: NodeId| route(scheme, graph, s, t);
    let mut weight_check = |s: NodeId, t: NodeId, delivered: Option<&[NodeId]>| {
        let path = delivered?;
        if path.first() != Some(&s) || path.last() != Some(&t) {
            return Some((
                "multi-misdelivery".to_owned(),
                format!("{s}→{t}: delivered along {path:?}"),
            ));
        }
        let fresh_path = route(scheme, graph, s, t).ok()?;
        let actual = weights.path_weight(alg, graph, path);
        let preferred = weights.path_weight(alg, graph, &fresh_path);
        (actual != preferred).then(|| {
            (
                "multi-weight-divergence".to_owned(),
                format!(
                    "{s}→{t}: served path weighs {actual:?}, the fresh scheme's \
                     route weighs {preferred:?}"
                ),
            )
        })
    };
    differential_sweep(
        report,
        tag,
        id.name(),
        phase,
        multi,
        snap,
        class,
        MULTI_VIOLATION_CAP,
        hop_exact,
        &fresh,
        &mut weight_check,
    );
}

/// Scale-arm check of one BGP class; the delivered path's word sequence
/// is weighed against the fresh scheme's route (with `B4`'s
/// `(word, length)` lexicographic carrier when `b4` is set).
#[allow(clippy::too_many_arguments)]
fn scale_check_bgp<A>(
    report: &mut Report,
    tag: &str,
    phase: &str,
    multi: &MultiPlane,
    snap: &MultiSnapshot,
    class: usize,
    name: &str,
    alg: &A,
    b4: bool,
    hop_exact: bool,
) where
    A: BgpAlgebra + Sync,
{
    let graph = multi.graph();
    let asg = as_graph_for(graph);
    let scheme = BgpStateTable::build(&asg, alg);
    let b4_alg = prefer_customer_shortest();
    let fresh = |s: NodeId, t: NodeId| route(&scheme, graph, s, t);
    let words_of = |path: &[NodeId]| -> Option<Vec<Word>> {
        path.windows(2).map(|h| asg.word(h[0], h[1])).collect()
    };
    let mut weight_check = |s: NodeId, t: NodeId, delivered: Option<&[NodeId]>| {
        let path = delivered?;
        if path.first() != Some(&s) || path.last() != Some(&t) {
            return Some((
                "multi-misdelivery".to_owned(),
                format!("{s}→{t}: delivered along {path:?}"),
            ));
        }
        let Some(words) = words_of(path) else {
            return Some((
                "multi-misdelivery".to_owned(),
                format!("{s}→{t}: {path:?} crosses a non-edge"),
            ));
        };
        let fresh_path = route(&scheme, graph, s, t).ok()?;
        let fresh_words = words_of(&fresh_path).expect("the fresh scheme routes over live edges");
        let divergence = if b4 {
            let weigh = |ws: Vec<Word>| {
                let pairs: Vec<(Word, u64)> = ws.into_iter().map(|w| (w, 1)).collect();
                b4_alg.weigh_path_right(&pairs)
            };
            let actual = weigh(words);
            let preferred = weigh(fresh_words);
            (actual != preferred).then(|| format!("{actual:?} vs fresh {preferred:?}"))
        } else {
            let actual = alg.weigh_path_right(&words);
            let preferred = alg.weigh_path_right(&fresh_words);
            (actual != preferred).then(|| format!("{actual:?} vs fresh {preferred:?}"))
        };
        divergence.map(|d| {
            (
                "multi-weight-divergence".to_owned(),
                format!("{s}→{t}: served path weighs {d}"),
            )
        })
    };
    differential_sweep(
        report,
        tag,
        name,
        phase,
        multi,
        snap,
        class,
        MULTI_VIOLATION_CAP,
        hop_exact,
        &fresh,
        &mut weight_check,
    );
}

fn scale_sweep(report: &mut Report, tag: &str, phase: &str, multi: &MultiPlane) {
    let snap = multi.snapshot();
    // Hop-exact only when the plane's state is provably a fresh compile;
    // after the partial `repaired` patch the weight comparison carries
    // the optimality claim (see [`differential_sweep`]).
    let hop_exact = phase != "repaired";
    for (class, spec) in standard_classes().into_iter().enumerate() {
        if spec.family == TABLE1_FAMILY {
            let id = AlgebraId::from_name(spec.name).expect("registry names are algebra names");
            if id == AlgebraId::ShortestWidest {
                let alg = crate::algebras::shortest_widest();
                let scheme =
                    SwClassTable::build(multi.graph(), &topology_weights(&alg, multi.graph()));
                scale_check_table1(
                    report, tag, phase, multi, &snap, class, id, &alg, &scheme, hop_exact,
                );
            } else {
                crate::with_algebra!(id, alg => {
                    let scheme = DestTable::build(
                        multi.graph(),
                        &topology_weights(&alg, multi.graph()),
                        &alg,
                    );
                    scale_check_table1(
                        report, tag, phase, multi, &snap, class, id, &alg, &scheme, hop_exact,
                    );
                });
            }
        } else {
            match spec.name {
                "bgp-b1" => scale_check_bgp(
                    report,
                    tag,
                    phase,
                    multi,
                    &snap,
                    class,
                    spec.name,
                    &ProviderCustomer,
                    false,
                    hop_exact,
                ),
                "bgp-b2" => scale_check_bgp(
                    report,
                    tag,
                    phase,
                    multi,
                    &snap,
                    class,
                    spec.name,
                    &ValleyFree,
                    false,
                    hop_exact,
                ),
                "bgp-b3" => scale_check_bgp(
                    report,
                    tag,
                    phase,
                    multi,
                    &snap,
                    class,
                    spec.name,
                    &PreferCustomer,
                    false,
                    hop_exact,
                ),
                _ => scale_check_bgp(
                    report,
                    tag,
                    phase,
                    multi,
                    &snap,
                    class,
                    spec.name,
                    &PreferCustomer,
                    true,
                    hop_exact,
                ),
            }
        }
        report
            .coverage
            .insert(format!("multi-scale:{}:{}", spec.name, phase));
    }
}

// ---------------------------------------------------------------------------
// Dynamic tenancy arm
// ---------------------------------------------------------------------------

/// Family tag of the runtime-registered tenant classes.
pub const DYNAMIC_FAMILY: &str = "dynamic";

/// One runtime-registered tenant class of the dynamic conformance arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynamicClassSpec {
    /// Registry (and wire) name of the class.
    pub name: &'static str,
    /// The algebra expression registered over the wire.
    pub expr: &'static str,
    /// The scheme the admissibility gates must choose.
    pub scheme: SchemeChoice,
}

/// The dynamic tenant registry: one admitted expression per compile
/// path the gates can choose — exact destination tables (plain and
/// lexicographic), the Theorem 1 bottleneck-class tables, and the
/// Theorem 3 Cowen landmark scheme — so a sweep certifies every way a
/// wire registration can reach the substrate.
pub fn dynamic_classes() -> Vec<DynamicClassSpec> {
    vec![
        DynamicClassSpec {
            name: "tenant-scaled-shortest",
            expr: "scale(shortest-path, 3)",
            scheme: SchemeChoice::DestTable,
        },
        DynamicClassSpec {
            name: "tenant-reliable-shortest",
            expr: "lex(most-reliable-path, shortest-path)",
            scheme: SchemeChoice::DestTable,
        },
        DynamicClassSpec {
            name: "tenant-sw-scaled",
            expr: "lex(widest-path, scale(shortest-path, 2))",
            scheme: SchemeChoice::SwClassTable,
        },
        DynamicClassSpec {
            name: "tenant-compact-shortest",
            expr: "compact(shortest-path)",
            scheme: SchemeChoice::Cowen,
        },
    ]
}

/// Oracle + hop-for-hop check of one runtime-registered tenant class in
/// one phase. The fresh comparator is a tenant class rebuilt from the
/// same expression on the current topology — the factory is
/// deterministic in (expression, graph), so hop-exact phases compare
/// like-for-like — and the oracle is the exhaustive sweep under the
/// expression's own lowered algebra over the same pair-keyed weights
/// the tenant factory derives. The stretch bound follows the gate's
/// scheme choice: exact for tables, 3 for Cowen (Theorem 3).
#[allow(clippy::too_many_arguments)]
fn check_dynamic_class(
    report: &mut Report,
    tag: &str,
    phase: &str,
    multi: &MultiPlane,
    snap: &MultiSnapshot,
    class: usize,
    spec: &DynamicClassSpec,
    cap: usize,
    hop_exact: bool,
) {
    let graph = multi.graph();
    let fresh_class = match build_tenant_class(spec.name, spec.expr, graph) {
        Ok(t) => t,
        Err(e) => {
            report.violations.push(violation(
                tag,
                spec.name,
                phase,
                "tenant-rebuild",
                e.to_string(),
            ));
            return;
        }
    };
    let alg = fresh_class.decision.algebra.clone();
    let weights = dyn_edge_weights(&alg, graph);
    let prune = fresh_class
        .decision
        .report
        .holding()
        .contains(Property::Monotone);
    let oracle = exhaustive_preferred_all(graph, &weights, &alg, prune);
    let stretch = match spec.scheme {
        SchemeChoice::Cowen => COWEN_STRETCH,
        _ => TABLE_STRETCH,
    };
    let plane = fresh_class.plane;
    let fresh = |s: NodeId, t: NodeId| plane.lookup(graph, s, t).map(|(p, _)| p);
    let mut oracle_check = |s: NodeId, t: NodeId, delivered: Option<&[NodeId]>| {
        let preferred = oracle[s].weight(t);
        match delivered {
            None => (!preferred.is_infinite()).then(|| {
                (
                    "multi-unroutable".to_owned(),
                    format!("{s}→{t}: refused but the oracle routes at {preferred:?}"),
                )
            }),
            Some(path) => {
                if preferred.is_infinite() {
                    return Some((
                        "multi-phantom-route".to_owned(),
                        format!("{s}→{t}: delivered {path:?} but no traversable path exists"),
                    ));
                }
                if path.first() != Some(&s) || path.last() != Some(&t) {
                    return Some((
                        "multi-misdelivery".to_owned(),
                        format!("{s}→{t}: delivered along {path:?}"),
                    ));
                }
                let actual = weights.path_weight(&alg, graph, path);
                (check_stretch(&alg, &actual, preferred, stretch) == StretchVerdict::Exceeded).then(
                    || {
                        (
                            "multi-stretch-exceeded".to_owned(),
                            format!(
                                "{s}→{t}: path {path:?} weighs {actual:?}, exceeding the \
                                 stretch-{stretch} bound over preferred {preferred:?}"
                            ),
                        )
                    },
                )
            }
        }
    };
    differential_sweep(
        report,
        tag,
        spec.name,
        phase,
        multi,
        snap,
        class,
        cap,
        hop_exact,
        &fresh,
        &mut oracle_check,
    );
}

/// One phase of [`check_multi_dynamic`]: every *registered* spec from
/// `specs` against its own oracle, plus coverage entries
/// `multi-dynamic:{class}:{family}:{phase}` — the dynamic-class ×
/// instance-family × phase matrix the report proves.
fn check_dynamic_registered(
    report: &mut Report,
    tag: &str,
    instance_family: &str,
    phase: &str,
    multi: &MultiPlane,
    specs: &[DynamicClassSpec],
    hop_exact: bool,
) {
    let snap = multi.snapshot();
    for spec in specs {
        let Some(class) = multi.class_index(spec.name) else {
            report.violations.push(violation(
                tag,
                spec.name,
                phase,
                "tenant-missing",
                "registered class vanished from the registry".to_owned(),
            ));
            continue;
        };
        check_dynamic_class(
            report,
            tag,
            phase,
            multi,
            &snap,
            class,
            spec,
            MULTI_VIOLATION_CAP,
            hop_exact,
        );
        report.coverage.insert(format!(
            "multi-dynamic:{}:{}:{}",
            spec.name, instance_family, phase
        ));
    }
}

/// The dynamic-tenancy conformance arm over one generated instance:
/// the standard registry is built, the dynamic registry is registered
/// *at runtime* through the same [`MultiPlane::register_class_expr`]
/// path the wire uses, and every dynamic class is differentially
/// certified against its own exhaustive oracle across the same three
/// phases as [`check_multi_instance`] — fresh, after shared-dirty-set
/// repair (the one delta repairing seed and tenant classes alike), and
/// after the restoring addition. A deregistration epilogue then checks
/// the tombstone discipline: retiring a class leaves the survivors
/// byte-identical, the freed wire id is reused by the next
/// registration, and seed classes refuse to deregister.
pub fn check_multi_dynamic(inst: &Instance) -> Report {
    let mut report = Report::default();
    let graph = inst.graph();
    let tag = inst.tag();
    let specs = dynamic_classes();
    let mut multi = match MultiPlane::build(&graph, standard_builder()) {
        Ok(m) => m,
        Err(e) => {
            report.violations.push(violation(
                &tag,
                "*",
                "fresh",
                "multi-compile",
                e.to_string(),
            ));
            return report;
        }
    };
    let seed_classes = multi.class_count();

    // Gate sanity on the live plane: an inadmissible expression must be
    // refused before anything compiles, leaving registry and epoch
    // untouched.
    let epoch_before = multi.epoch();
    match multi.register_class_expr("tenant-detour", "detour") {
        Err(TenantError::Inadmissible(r)) => {
            if r.gate != Gate::Prop2 {
                report.violations.push(violation(
                    &tag,
                    "tenant-detour",
                    "fresh",
                    "tenant-gate",
                    format!("detour rejected by {:?}, expected Prop2", r.gate),
                ));
            }
        }
        other => {
            report.violations.push(violation(
                &tag,
                "tenant-detour",
                "fresh",
                "tenant-gate",
                format!("inadmissible expression was not gate-rejected: {other:?}"),
            ));
        }
    }
    if multi.epoch() != epoch_before || multi.class_count() != seed_classes {
        report.violations.push(violation(
            &tag,
            "tenant-detour",
            "fresh",
            "tenant-gate",
            "a rejected registration moved the registry or the epoch".to_owned(),
        ));
    }

    // Register the dynamic registry through the wire path.
    for spec in &specs {
        match multi.register_class_expr(spec.name, spec.expr) {
            Ok(reg) => {
                if reg.scheme != spec.scheme {
                    report.violations.push(violation(
                        &tag,
                        spec.name,
                        "fresh",
                        "tenant-scheme",
                        format!("gate chose {:?}, expected {:?}", reg.scheme, spec.scheme),
                    ));
                }
            }
            Err(e) => {
                report.violations.push(violation(
                    &tag,
                    spec.name,
                    "fresh",
                    "tenant-register",
                    e.to_string(),
                ));
                return report;
            }
        }
    }
    check_dynamic_registered(
        &mut report,
        &tag,
        &inst.family,
        "fresh",
        &multi,
        &specs,
        true,
    );

    // Phases 2–3: the same churn drill as the standard arm — one shared
    // dirty set must repair dynamic classes identically to seed ones.
    let policy = RepairPolicy {
        max_dirty_fraction: 1.0,
        ..RepairPolicy::default()
    };
    let obs = cpr_obs::Obs::with_null_tracer();
    if inst.heal_edge.is_some() {
        let degraded = inst.degraded_graph();
        for (phase, target, hop_exact) in
            [("repaired", &degraded, false), ("restored", &graph, true)]
        {
            if let Err(e) = multi.reconcile(target, &policy, &obs) {
                report
                    .violations
                    .push(violation(&tag, "*", phase, "multi-repair", e.to_string()));
                return report;
            }
            for c in multi.classes() {
                if c.dirty_pairs() != 0 {
                    report.violations.push(violation(
                        &tag,
                        c.class_name(),
                        phase,
                        "multi-stale",
                        format!("{} pairs still dirty after reconcile", c.dirty_pairs()),
                    ));
                }
            }
            check_dynamic_registered(
                &mut report,
                &tag,
                &inst.family,
                phase,
                &multi,
                &specs,
                hop_exact,
            );
        }
    } else {
        report
            .skips
            .push(format!("multi-dynamic/repair: no removable edge ({tag})"));
    }

    // Deregistration epilogue: tombstones, survivor integrity, slot
    // reuse, and the seed-class guard.
    let retired = &specs[0];
    let freed = match multi.deregister_class(retired.name) {
        Ok(c) => c,
        Err(e) => {
            report.violations.push(violation(
                &tag,
                retired.name,
                "deregistered",
                "tenant-deregister",
                e.to_string(),
            ));
            return report;
        }
    };
    if multi.class_index(retired.name).is_some() {
        report.violations.push(violation(
            &tag,
            retired.name,
            "deregistered",
            "tenant-deregister",
            "a retired class is still live in the registry".to_owned(),
        ));
    }
    match multi.deregister_class(retired.name) {
        Err(TenantError::UnknownClass(_)) => {}
        other => report.violations.push(violation(
            &tag,
            retired.name,
            "deregistered",
            "tenant-deregister",
            format!("double deregistration answered {other:?}, expected UnknownClass"),
        )),
    }
    match multi.deregister_class("shortest-path") {
        Err(TenantError::SeedClass(_)) => {}
        other => report.violations.push(violation(
            &tag,
            "shortest-path",
            "deregistered",
            "tenant-deregister",
            format!("seed deregistration answered {other:?}, expected SeedClass"),
        )),
    }
    // The survivors keep serving bit-for-bit.
    check_dynamic_registered(
        &mut report,
        &tag,
        &inst.family,
        "deregistered",
        &multi,
        &specs[1..],
        true,
    );
    // The freed wire id is reused by the next registration.
    let reuse = DynamicClassSpec {
        name: "tenant-hop-count",
        expr: "hop-count",
        scheme: SchemeChoice::DestTable,
    };
    match multi.register_class_expr(reuse.name, reuse.expr) {
        Ok(reg) if reg.class == freed => {
            check_dynamic_registered(
                &mut report,
                &tag,
                &inst.family,
                "reused",
                &multi,
                std::slice::from_ref(&reuse),
                true,
            );
        }
        Ok(reg) => report.violations.push(violation(
            &tag,
            reuse.name,
            "reused",
            "tenant-register",
            format!("slot {} not reused, class {} assigned", freed, reg.class),
        )),
        Err(e) => report.violations.push(violation(
            &tag,
            reuse.name,
            "reused",
            "tenant-register",
            e.to_string(),
        )),
    }
    report
}

/// The first edge whose removal keeps `graph` connected.
fn first_non_bridge(graph: &Graph) -> Option<(NodeId, NodeId)> {
    graph.edges().find_map(|(e, uv)| {
        let kept = graph.edges().filter(|&(i, _)| i != e).map(|(_, p)| p);
        let g = Graph::from_edges(graph.node_count(), kept).expect("sub-edge list is valid");
        cpr_graph::traversal::is_connected(&g).then_some(uv)
    })
}

/// Multi-plane conformance at CI scale (`n` in the hundreds): every
/// registry class hop-for-hop against its freshly built scheme — fresh,
/// after a shared-dirty-set removal repair, and after the restoring
/// addition. The exhaustive oracles stay with the small-instance arm;
/// this one proves the *serving* claims (per-class selection, snapshot
/// agreement, repair-all-classes-from-one-delta) at sizes the fuzzer
/// never reaches.
pub fn check_multi_scale(n: usize, seed: u64) -> Report {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let graph = cpr_graph::generators::barabasi_albert(n, 2, &mut rng);
    let tag = format!("multi-scale/{n}@{seed:#x}");
    let mut report = Report::default();
    let mut multi = match MultiPlane::build(&graph, standard_builder()) {
        Ok(m) => m,
        Err(e) => {
            report.violations.push(violation(
                &tag,
                "*",
                "fresh",
                "multi-compile",
                e.to_string(),
            ));
            return report;
        }
    };
    scale_sweep(&mut report, &tag, "fresh", &multi);

    let Some((u, v)) = first_non_bridge(&graph) else {
        report
            .skips
            .push(format!("multi-scale/repair: no removable edge ({tag})"));
        return report;
    };
    let degraded = Graph::from_edges(
        graph.node_count(),
        graph
            .edges()
            .map(|(_, uv)| uv)
            .filter(|&uv| uv != (u, v) && uv != (v, u)),
    )
    .expect("edge subset is well-formed");
    let policy = RepairPolicy {
        max_dirty_fraction: 1.0,
        ..RepairPolicy::default()
    };
    let obs = cpr_obs::Obs::with_null_tracer();
    for (phase, target) in [("repaired", &degraded), ("restored", &graph)] {
        if let Err(e) = multi.reconcile(target, &policy, &obs) {
            report
                .violations
                .push(violation(&tag, "*", phase, "multi-repair", e.to_string()));
            return report;
        }
        for c in multi.classes() {
            if c.dirty_pairs() != 0 {
                report.violations.push(violation(
                    &tag,
                    c.class_name(),
                    phase,
                    "multi-stale",
                    format!("{} pairs still dirty after reconcile", c.dirty_pairs()),
                ));
            }
        }
        scale_sweep(&mut report, &tag, phase, &multi);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;

    #[test]
    fn the_standard_registry_has_twelve_classes_in_stable_order() {
        let specs = standard_classes();
        assert_eq!(specs.len(), 12);
        assert_eq!(specs[0].name, "shortest-path");
        assert_eq!(specs[7].name, "bounded-shortest-path");
        assert_eq!(specs[8].name, "bgp-b1");
        assert_eq!(specs[11].name, "bgp-b4");
        assert_eq!(standard_builder().len(), specs.len());
        assert!(specs[..8].iter().all(|s| s.family == TABLE1_FAMILY));
        assert!(specs[8..].iter().all(|s| s.family == BGP_FAMILY));
    }

    #[test]
    fn as_graph_preserves_ports_and_is_deterministic() {
        let inst = generate(3);
        let g = inst.graph();
        let asg = as_graph_for(&g);
        assert_eq!(asg.node_count(), g.node_count());
        // Identical edge insertion order ⇒ identical port numbering.
        for v in g.nodes() {
            let a: Vec<_> = g.neighbors(v).collect();
            let b: Vec<_> = asg.graph().neighbors(v).collect();
            assert_eq!(a, b, "port-compatible adjacency at {v}");
        }
        // Relationship derivation is pure in the endpoints.
        let again = as_graph_for(&g);
        for (_, (u, v)) in g.edges() {
            assert_eq!(asg.word(u, v), again.word(u, v));
        }
    }

    #[test]
    fn a_small_multi_instance_sweep_is_clean() {
        for seed in [0u64, 1, 4] {
            let inst = generate(seed);
            let report = check_multi_instance(&inst);
            assert!(report.is_clean(), "{}", report.render());
            assert!(report.pairs_checked > 0);
            // Every class shows up in the coverage matrix.
            for spec in standard_classes() {
                assert!(
                    report
                        .coverage
                        .contains(&format!("multi:{}:{}", spec.name, inst.family)),
                    "missing coverage for {}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn a_dynamic_tenant_sweep_is_clean() {
        // Seed 4 (gnp) carries a heal edge, so all three churn phases
        // plus the deregistration epilogue run.
        let inst = generate(4);
        assert!(inst.heal_edge.is_some());
        let report = check_multi_dynamic(&inst);
        assert!(report.is_clean(), "{}", report.render());
        for spec in dynamic_classes() {
            for phase in ["fresh", "repaired", "restored"] {
                let entry = format!("multi-dynamic:{}:{}:{phase}", spec.name, inst.family);
                assert!(
                    report.coverage.contains(&entry),
                    "missing coverage for {entry}"
                );
            }
        }
        // The epilogue ran: survivors re-certified, freed slot reused.
        assert!(report.coverage.contains(&format!(
            "multi-dynamic:tenant-hop-count:{}:reused",
            inst.family
        )));
    }

    #[test]
    fn the_scale_arm_is_clean_at_a_small_n() {
        let report = check_multi_scale(48, 9);
        assert!(report.is_clean(), "{}", report.render());
        // All three phases ran for every class.
        for spec in standard_classes() {
            for phase in ["fresh", "repaired", "restored"] {
                assert!(report
                    .coverage
                    .contains(&format!("multi-scale:{}:{}", spec.name, phase)));
            }
        }
    }
}
