//! Self-contained repro files.
//!
//! A repro is one [`Instance`] serialized as JSON under `conform/corpus/`.
//! Writing goes through `cpr_obs::Json` (deterministic key order, stable
//! pretty-printing, so files are byte-reproducible); reading uses the
//! minimal recursive-descent parser below — the workspace deliberately
//! has no JSON-parsing dependency, and repro files only ever contain
//! objects, arrays, strings, unsigned integers and `null`.

use std::path::{Path, PathBuf};

use cpr_obs::Json;

use crate::generate::Instance;

/// Repro format version, bumped on incompatible field changes.
pub const REPRO_VERSION: u64 = 1;

/// Serializes an instance as a pretty-printed, byte-stable JSON document.
pub fn to_json(inst: &Instance) -> String {
    let pair = |(a, b): (u64, u64)| Json::arr([Json::int(a), Json::int(b)]);
    Json::obj([
        ("version", Json::int(REPRO_VERSION)),
        ("seed", Json::int(inst.seed)),
        ("family", Json::str(inst.family.clone())),
        ("n", Json::int(inst.n)),
        (
            "edges",
            Json::arr(inst.edges.iter().map(|&(u, v)| pair((u as u64, v as u64)))),
        ),
        ("atoms", Json::arr(inst.atoms.iter().map(|&a| pair(a)))),
        (
            "heal_edge",
            match inst.heal_edge {
                Some(e) => Json::int(e),
                None => Json::Null,
            },
        ),
        ("note", Json::str(inst.note.clone())),
    ])
    .to_pretty()
}

/// Parses a repro document back into an [`Instance`].
///
/// # Errors
///
/// Returns a description of the first syntax or schema problem.
pub fn from_json(text: &str) -> Result<Instance, String> {
    let value = Parser::new(text).document()?;
    let obj = value.as_obj("repro document")?;
    let version = obj.field(text, "version")?.as_u64("version")?;
    if version != REPRO_VERSION {
        return Err(format!("unsupported repro version {version}"));
    }
    let pair = |v: &Value, what: &str| -> Result<(u64, u64), String> {
        let items = v.as_arr(what)?;
        if items.len() != 2 {
            return Err(format!("{what}: expected a two-element array"));
        }
        Ok((items[0].as_u64(what)?, items[1].as_u64(what)?))
    };
    let edges = obj
        .field(text, "edges")?
        .as_arr("edges")?
        .iter()
        .map(|v| pair(v, "edge").map(|(u, w)| (u as usize, w as usize)))
        .collect::<Result<Vec<_>, _>>()?;
    let atoms = obj
        .field(text, "atoms")?
        .as_arr("atoms")?
        .iter()
        .map(|v| pair(v, "atom"))
        .collect::<Result<Vec<_>, _>>()?;
    if atoms.len() != edges.len() {
        return Err(format!(
            "repro has {} edges but {} atoms",
            edges.len(),
            atoms.len()
        ));
    }
    let heal_edge = match obj.field(text, "heal_edge")? {
        Value::Null => None,
        v => Some(v.as_u64("heal_edge")? as usize),
    };
    let inst = Instance {
        seed: obj.field(text, "seed")?.as_u64("seed")?,
        family: obj.field(text, "family")?.as_str("family")?.to_owned(),
        n: obj.field(text, "n")?.as_u64("n")? as usize,
        edges,
        atoms,
        heal_edge,
        note: obj.field(text, "note")?.as_str("note")?.to_owned(),
    };
    for &(u, v) in &inst.edges {
        if u >= inst.n || v >= inst.n {
            return Err(format!("edge ({u}, {v}) out of bounds for n = {}", inst.n));
        }
    }
    if let Some(e) = inst.heal_edge {
        if e >= inst.edges.len() {
            return Err(format!("heal_edge {e} out of bounds"));
        }
    }
    Ok(inst)
}

/// Writes `inst` into `dir` as `<stem>.json`, returning the path.
///
/// # Errors
///
/// Any I/O error creating the directory or writing the file.
pub fn write_repro(dir: &Path, stem: &str, inst: &Instance) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.json"));
    std::fs::write(&path, to_json(inst))?;
    Ok(path)
}

/// The JSON subset repro files use. Numbers are unsigned integers — the
/// writer never emits anything else.
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Null,
    Str(String),
    Num(u64),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn as_obj(&self, what: &str) -> Result<&[(String, Value)], String> {
        match self {
            Value::Obj(fields) => Ok(fields),
            other => Err(format!("{what}: expected an object, got {other:?}")),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Value], String> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(format!("{what}: expected an array, got {other:?}")),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Value::Num(v) => Ok(*v),
            other => Err(format!("{what}: expected an integer, got {other:?}")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!("{what}: expected a string, got {other:?}")),
        }
    }
}

trait Fields {
    fn field(&self, text: &str, key: &str) -> Result<&Value, String>;
}

impl Fields for &[(String, Value)] {
    fn field(&self, _text: &str, key: &str) -> Result<&Value, String> {
        self.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field \"{key}\""))
    }
}

/// Recursive-descent parser for the subset above.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn document(&mut self) -> Result<Value, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing input at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_owned())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b'n' => self.literal(b"null", Value::Null),
            b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected '{}' at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn literal(&mut self, word: &[u8], value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .parse::<u64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_owned())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "surrogate \\u escape unsupported".to_owned())?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (repro notes may hold any text).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                    let c = rest.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got '{}'",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got '{}'",
                        self.pos, other as char
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;

    #[test]
    fn round_trips_generated_instances() {
        for seed in 0..16 {
            let inst = generate(seed);
            let text = to_json(&inst);
            cpr_obs::json::validate(&text).expect("writer emits valid JSON");
            let back = from_json(&text).expect("parser accepts writer output");
            assert_eq!(inst, back, "seed {seed}");
        }
    }

    #[test]
    fn serialization_is_byte_stable() {
        let inst = generate(3);
        assert_eq!(to_json(&inst), to_json(&inst));
    }

    #[test]
    fn notes_with_escapes_survive() {
        let mut inst = generate(1);
        inst.note = "stretch \"k=3\"\nline2\ttab \\ slash".to_owned();
        let back = from_json(&to_json(&inst)).expect("escaped note parses");
        assert_eq!(back.note, inst.note);
    }

    #[test]
    fn schema_problems_are_reported() {
        assert!(from_json("[]").is_err());
        assert!(from_json("{\"version\": 99}").is_err());
        assert!(from_json("not json").is_err());
        let truncated = "{\"version\": 1, \"seed\": 0";
        assert!(from_json(truncated).is_err());
        // Atom/edge count mismatch.
        let bad = r#"{"version":1,"seed":0,"family":"path","n":2,
            "edges":[[0,1]],"atoms":[],"heal_edge":null,"note":""}"#;
        assert!(from_json(bad).unwrap_err().contains("atoms"));
    }
}
