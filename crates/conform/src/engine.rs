//! The differential conformance engine.
//!
//! For one [`Instance`], the engine sweeps every registered algebra and
//! every scheme whose admissibility gate the algebra's *empirical*
//! property set passes, and checks each against the exhaustive
//! simple-path oracle:
//!
//! * **Routability agreement** — a scheme must deliver exactly the pairs
//!   the oracle says are reachable, and refuse the rest; any
//!   [`RouteError`] at a reachable pair (loop, bad port) is a violation.
//! * **Stretch certification** — every delivered path's algebraic weight
//!   is checked against Definition 3 with the scheme's *claimed* bound
//!   (`k = 1` for table schemes, `k = 3` for Cowen per Theorem 3);
//!   [`StretchVerdict::Exceeded`] is a hard failure.
//! * **Plane conformance** — the cpr-plane compiler must reproduce the
//!   live scheme hop-for-hop over all pairs
//!   ([`cpr_plane::validate`]), and after the fault/repair drill the
//!   healed plane must agree with a freshly built scheme on the degraded
//!   topology, with routes re-certified against the degraded oracle.
//! * **Classifier conformance** — the mutant algebras must be detected
//!   (a counterexample for every designed-broken property) and rejected
//!   by the gate that their well-behaved baseline passes
//!   ([`check_mutants`]).
//!
//! Everything is deterministic: violations are emitted in a fixed sweep
//! order and [`Report::render`] is byte-identical for identical inputs
//! across `CPR_THREADS` settings.

use std::fmt;

use cpr_algebra::{
    check_all_properties, check_stretch, embeds_shortest_path, policies, Property, SampleWeights,
    StretchVerdict,
};
use cpr_graph::{EdgeWeights, Graph};
use cpr_paths::{exhaustive_preferred_all, SourceRouting};
use cpr_plane::SelfHealingPlane;
use cpr_routing::{
    route, CowenScheme, DestTable, LabelSwapping, LandmarkStrategy, RouteError, RoutingScheme,
    SrcDestTable, SwClassTable,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::algebras::{AlgebraId, ConformAlgebra, ALL_ALGEBRAS};
use crate::generate::Instance;
use crate::mutant::{classify_mutant, Detour, NarrowSelf, Penalty, Plateau, ALL_MUTANTS};

/// Claimed stretch of the table schemes (they route preferred paths).
pub const TABLE_STRETCH: u32 = 1;
/// Claimed stretch of the generalized Cowen scheme (Theorem 3).
pub const COWEN_STRETCH: u32 = 3;

/// One conformance violation. Every field is deterministic text so a
/// violation renders identically on every run and thread count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The instance tag ([`Instance::tag`]), or `"-"` for
    /// instance-independent checks (mutant classification).
    pub instance: String,
    /// Algebra name.
    pub algebra: String,
    /// Scheme name, or the gate being checked.
    pub scheme: String,
    /// Violation class, e.g. `stretch-exceeded`, `plane-divergence`.
    pub kind: String,
    /// Human-readable specifics (pair, weights, verdicts).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} / {} ({}): {}",
            self.kind, self.algebra, self.scheme, self.instance, self.detail
        )
    }
}

/// Aggregated outcome of a conformance run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Scheme instances run to completion (including healed planes).
    pub schemes_run: usize,
    /// Ordered `(source, target)` pairs differentially checked.
    pub pairs_checked: u64,
    /// `algebra:scheme-kind` combinations actually exercised; lets the
    /// harness *prove* its coverage claim instead of asserting counts.
    pub coverage: std::collections::BTreeSet<String>,
    /// Gate skips, as `algebra/scheme: reason` lines (deterministic order).
    pub skips: Vec<String>,
    /// All violations, in sweep order.
    pub violations: Vec<Violation>,
}

impl Report {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: Report) {
        self.schemes_run += other.schemes_run;
        self.pairs_checked += other.pairs_checked;
        self.coverage.extend(other.coverage);
        self.skips.extend(other.skips);
        self.violations.extend(other.violations);
    }

    /// The distinct scheme kinds exercised (the suffix of each
    /// [`coverage`](Self::coverage) entry).
    pub fn scheme_kinds(&self) -> std::collections::BTreeSet<&str> {
        self.coverage
            .iter()
            .filter_map(|c| c.split(':').nth(1))
            .collect()
    }

    /// `true` when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report as deterministic text: identical inputs yield
    /// byte-identical output regardless of `CPR_THREADS`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "schemes_run={} pairs_checked={} skips={} violations={}\n",
            self.schemes_run,
            self.pairs_checked,
            self.skips.len(),
            self.violations.len()
        );
        for s in &self.skips {
            out.push_str("  skip ");
            out.push_str(s);
            out.push('\n');
        }
        for v in &self.violations {
            out.push_str("  FAIL ");
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

/// Shared per-(instance, algebra) context threaded through the checks.
struct Ctx<'a, A: ConformAlgebra>
where
    A::W: Send + Sync,
{
    inst: &'a Instance,
    id: AlgebraId,
    alg: &'a A,
    graph: &'a Graph,
    weights: &'a EdgeWeights<A::W>,
    oracle: &'a [SourceRouting<A::W>],
}

impl<A: ConformAlgebra> Ctx<'_, A>
where
    A::W: Send + Sync,
{
    fn violation(&self, scheme: &str, kind: &str, detail: String) -> Violation {
        Violation {
            instance: self.inst.tag(),
            algebra: self.id.name().to_owned(),
            scheme: scheme.to_owned(),
            kind: kind.to_owned(),
            detail,
        }
    }
}

/// Runs the full conformance sweep on one instance: every registered
/// algebra, every admissible scheme, plane compilation, and (when the
/// instance carries a heal edge) the fault/repair drill.
pub fn check_instance(inst: &Instance) -> Report {
    let mut report = Report::default();
    for id in ALL_ALGEBRAS {
        crate::with_algebra!(id, alg => check_algebra(inst, id, &alg, &mut report));
    }
    report
}

fn check_algebra<A>(inst: &Instance, id: AlgebraId, alg: &A, report: &mut Report)
where
    A: ConformAlgebra,
    A::W: Send + Sync + Clone + fmt::Debug + PartialEq,
{
    let graph = inst.graph();
    let weights = alg.weights_from_atoms(&graph, &inst.atoms);
    let props = check_all_properties(alg, &alg.sample()).holding();
    let prune = props.contains(Property::Monotone);
    let oracle = exhaustive_preferred_all(&graph, &weights, alg, prune);
    let ctx = Ctx {
        inst,
        id,
        alg,
        graph: &graph,
        weights: &weights,
        oracle: &oracle,
    };

    // Destination tables: admissible iff the empirical properties are
    // regular (Proposition 2). Dijkstra and the oracle may break weight
    // ties differently, so agreement is weight-level, not path-level.
    if props.is_regular() {
        let scheme = DestTable::build(&graph, &weights, alg);
        run_scheme(&ctx, &scheme, "dest-table", TABLE_STRETCH, false, report);
    } else {
        report
            .skips
            .push(format!("{}/dest-table: not regular", id.name()));
    }

    // Generalized Cowen: Theorem 3 needs a delimited regular algebra.
    // Landmark sampling is re-seeded from the instance seed so replays
    // rebuild the identical scheme.
    if props.is_regular() && props.contains(Property::Delimited) {
        let mut rng = StdRng::seed_from_u64(inst.seed ^ 0x636f_7765_6e00);
        let scheme = CowenScheme::build(
            &graph,
            &weights,
            alg,
            LandmarkStrategy::TzRandom { attempts: 4 },
            &mut rng,
        );
        run_scheme(&ctx, &scheme, "cowen", COWEN_STRETCH, false, report);
    } else {
        report
            .skips
            .push(format!("{}/cowen: not delimited regular", id.name()));
    }

    // Source–destination pair tables (§3.1 fallback) and label swapping:
    // provisioned directly from the oracle, admissible for any algebra,
    // and expected to reproduce the provisioned paths *exactly*.
    let pair_tables = SrcDestTable::build(&graph, &alg.name(), |s| {
        graph
            .nodes()
            .map(|t| oracle[s].path_to(t).map(<[_]>::to_vec))
            .collect()
    });
    run_scheme(
        &ctx,
        &pair_tables,
        "src-dest-table",
        TABLE_STRETCH,
        true,
        report,
    );

    let label_swapping = LabelSwapping::provision(&graph, &alg.name(), |s, t| {
        oracle[s].path_to(t).map(<[_]>::to_vec)
    });
    run_scheme(
        &ctx,
        &label_swapping,
        "label-swapping",
        TABLE_STRETCH,
        true,
        report,
    );

    // The SW-specific bottleneck-class tables ride only the
    // shortest-widest arm (their carrier is the SW weight).
    if id == AlgebraId::ShortestWidest {
        let sw = policies::shortest_widest();
        let sw_weights = sw.weights_from_atoms(&graph, &inst.atoms);
        let scheme = SwClassTable::build(&graph, &sw_weights);
        run_scheme(
            &ctx,
            &scheme,
            "sw-class-table",
            TABLE_STRETCH,
            false,
            report,
        );
    }

    // Fault → repair drill over the destination tables.
    if props.is_regular() {
        if inst.heal_edge.is_some() {
            heal_drill(&ctx, prune, report);
        } else {
            report
                .skips
                .push(format!("{}/heal: no removable edge", id.name()));
        }
    }
}

/// Differentially checks one scheme: per-pair routability agreement and
/// stretch certification against the oracle, then hop-for-hop plane
/// conformance via compile + validate.
fn run_scheme<A, S>(
    ctx: &Ctx<'_, A>,
    scheme: &S,
    kind: &'static str,
    k: u32,
    exact: bool,
    report: &mut Report,
) where
    A: ConformAlgebra,
    A::W: Send + Sync + Clone + fmt::Debug + PartialEq,
    S: RoutingScheme + Sync,
    S::Header: Send,
{
    let name = scheme.name();
    let n = ctx.graph.node_count();
    for s in 0..n {
        for t in 0..n {
            if s == t {
                continue;
            }
            report.pairs_checked += 1;
            let preferred = ctx.oracle[s].weight(t);
            match route(scheme, ctx.graph, s, t) {
                Err(RouteError::Unroutable { .. }) if preferred.is_infinite() => {}
                Err(e) => report.violations.push(ctx.violation(
                    &name,
                    "route-error",
                    format!("{s}→{t}: {e} (oracle: {preferred:?})"),
                )),
                Ok(path) => {
                    if preferred.is_infinite() {
                        report.violations.push(ctx.violation(
                            &name,
                            "phantom-route",
                            format!("{s}→{t}: delivered {path:?} but no traversable path exists"),
                        ));
                        continue;
                    }
                    if path.first() != Some(&s) || path.last() != Some(&t) {
                        report.violations.push(ctx.violation(
                            &name,
                            "misdelivery",
                            format!("{s}→{t}: delivered along {path:?}"),
                        ));
                        continue;
                    }
                    let actual = ctx.weights.path_weight(ctx.alg, ctx.graph, &path);
                    if check_stretch(ctx.alg, &actual, preferred, k) == StretchVerdict::Exceeded {
                        report.violations.push(ctx.violation(
                            &name,
                            "stretch-exceeded",
                            format!(
                                "{s}→{t}: path {path:?} weighs {actual:?}, exceeding the \
                                 stretch-{k} bound over preferred {preferred:?}"
                            ),
                        ));
                    }
                    if exact && Some(path.as_slice()) != ctx.oracle[s].path_to(t) {
                        report.violations.push(ctx.violation(
                            &name,
                            "path-divergence",
                            format!(
                                "{s}→{t}: routed {path:?}, provisioned {:?}",
                                ctx.oracle[s].path_to(t)
                            ),
                        ));
                    }
                }
            }
        }
    }

    match cpr_plane::compile(scheme, ctx.graph) {
        Ok(plane) => {
            if let Err(d) = cpr_plane::validate(&plane, scheme, ctx.graph) {
                report
                    .violations
                    .push(ctx.violation(&name, "plane-divergence", format!("{d:?}")));
            }
        }
        Err(e) => report
            .violations
            .push(ctx.violation(&name, "plane-compile", e.to_string())),
    }
    report.coverage.insert(format!("{}:{kind}", ctx.id.name()));
    report.schemes_run += 1;
}

/// The fault → repair drill: compile a self-healing plane over the
/// intact topology, remove the instance's heal edge, repair against a
/// freshly built scheme on the degraded topology, then demand
/// hop-for-hop agreement with the live scheme and re-certify stretch
/// against the degraded oracle.
fn heal_drill<A>(ctx: &Ctx<'_, A>, prune: bool, report: &mut Report)
where
    A: ConformAlgebra,
    A::W: Send + Sync + Clone + fmt::Debug + PartialEq,
{
    let scheme = DestTable::build(ctx.graph, ctx.weights, ctx.alg);
    let name = format!("{}+heal", scheme.name());
    let mut plane = match SelfHealingPlane::new(&scheme, ctx.graph) {
        Ok(p) => p,
        Err(e) => {
            report
                .violations
                .push(ctx.violation(&name, "heal-compile", e.to_string()));
            return;
        }
    };

    let graph2 = ctx.inst.degraded_graph();
    let atoms2 = ctx.inst.atoms_without_heal_edge();
    let weights2 = ctx.alg.weights_from_atoms(&graph2, &atoms2);
    let scheme2 = DestTable::build(&graph2, &weights2, ctx.alg);
    // `repair` re-observes the degraded topology first.
    if let Err(e) = plane.repair(&scheme2, &graph2) {
        report
            .violations
            .push(ctx.violation(&name, "heal-repair", e.to_string()));
        return;
    }
    if !plane.is_fresh_for(&graph2) {
        report.violations.push(ctx.violation(
            &name,
            "heal-stale",
            format!("{} pairs still dirty after repair", plane.dirty_pairs()),
        ));
    }

    let oracle2 = exhaustive_preferred_all(&graph2, &weights2, ctx.alg, prune);
    let n = graph2.node_count();
    for s in 0..n {
        for t in 0..n {
            if s == t {
                continue;
            }
            report.pairs_checked += 1;
            let healed = plane.route(&scheme2, &graph2, s, t);
            let live = route(&scheme2, &graph2, s, t);
            let preferred = oracle2[s].weight(t);
            match (healed, live) {
                (Ok((hp, _served)), Ok(lp)) => {
                    if hp != lp {
                        report.violations.push(ctx.violation(
                            &name,
                            "heal-divergence",
                            format!("{s}→{t}: healed {hp:?} vs live {lp:?}"),
                        ));
                        continue;
                    }
                    let actual = weights2.path_weight(ctx.alg, &graph2, &hp);
                    if check_stretch(ctx.alg, &actual, preferred, TABLE_STRETCH)
                        == StretchVerdict::Exceeded
                    {
                        report.violations.push(ctx.violation(
                            &name,
                            "stretch-exceeded",
                            format!(
                                "{s}→{t}: post-repair path {hp:?} weighs {actual:?}, exceeding \
                                 the stretch-{TABLE_STRETCH} bound over preferred {preferred:?}"
                            ),
                        ));
                    }
                }
                (Err(_), Err(_)) => {
                    if !preferred.is_infinite() {
                        report.violations.push(ctx.violation(
                            &name,
                            "heal-unroutable",
                            format!(
                                "{s}→{t}: both planes refuse but the degraded oracle routes \
                                 at {preferred:?}"
                            ),
                        ));
                    }
                }
                (h, l) => report.violations.push(ctx.violation(
                    &name,
                    "heal-divergence",
                    format!("{s}→{t}: healed {h:?} vs live {l:?}"),
                )),
            }
        }
    }
    report.coverage.insert(format!("{}:heal", ctx.id.name()));
    report.schemes_run += 1;
}

/// Classifier conformance over the mutant catalogue: every mutant must
/// be *detected* (counterexamples for exactly its designed-broken
/// properties, intact ones surviving) and *rejected* by a gate its
/// well-behaved baseline algebra passes.
pub fn check_mutants() -> Vec<Violation> {
    let mutant_violation = |scheme: &str, kind: &str, detail: String| Violation {
        instance: "-".to_owned(),
        algebra: "mutants".to_owned(),
        scheme: scheme.to_owned(),
        kind: kind.to_owned(),
        detail,
    };
    let mut out = Vec::new();

    for id in ALL_MUTANTS {
        for error in classify_mutant(id) {
            out.push(mutant_violation(id.name(), "mutant-classifier", error));
        }
    }

    // Detour (¬M) and Penalty (¬I) lose regularity: the table/Cowen gate
    // their baseline (shortest path) passes must refuse them.
    assert!(
        check_all_properties(&policies::ShortestPath, &policies::ShortestPath.sample())
            .is_regular(),
        "baseline shortest path must pass the regularity gate"
    );
    for (label, regular) in [
        (
            "mutant-detour",
            check_all_properties(&Detour, &Detour.sample()).is_regular(),
        ),
        (
            "mutant-penalty",
            check_all_properties(&Penalty, &Penalty.sample()).is_regular(),
        ),
    ] {
        if regular {
            out.push(mutant_violation(
                label,
                "mutant-not-rejected",
                "passes the regularity gate its mutation should break".to_owned(),
            ));
        }
    }

    // Plateau (¬SM): Theorem 2's lower bound rides on the Lemma 2
    // embedding of (N, +, ≤), which strict monotonicity drives. The
    // baseline generator embeds; the idempotent mutant must not.
    if !embeds_shortest_path(&policies::ShortestPath, &3u64, 16) {
        out.push(mutant_violation(
            "mutant-plateau",
            "mutant-gate-baseline",
            "baseline shortest path no longer embeds (N, +, ≤)".to_owned(),
        ));
    }
    if embeds_shortest_path(&Plateau, &20u64, 16) {
        out.push(mutant_violation(
            "mutant-plateau",
            "mutant-not-rejected",
            "idempotent mutant still embeds (N, +, ≤), so the Theorem 2 gate accepts it".to_owned(),
        ));
    }

    // NarrowSelf (¬S): Theorem 1's Θ(log n) tree compression gates on
    // selective + monotone; the widest-path baseline qualifies.
    let thm1 = |props: cpr_algebra::PropertySet| {
        props.contains(Property::Selective) && props.contains(Property::Monotone)
    };
    if !thm1(check_all_properties(&policies::WidestPath, &policies::WidestPath.sample()).holding())
    {
        out.push(mutant_violation(
            "mutant-narrow-self",
            "mutant-gate-baseline",
            "baseline widest path no longer passes the Theorem 1 gate".to_owned(),
        ));
    }
    if thm1(check_all_properties(&NarrowSelf, &NarrowSelf.sample()).holding()) {
        out.push(mutant_violation(
            "mutant-narrow-self",
            "mutant-not-rejected",
            "selectivity-breaking mutant still passes the Theorem 1 gate".to_owned(),
        ));
    }

    out
}

/// Cap on recorded violations per scale-scheme sweep: at 10⁴ nodes a
/// systematic bug would otherwise push 10⁸ violation strings.
const SCALE_VIOLATION_CAP: usize = 100;

/// Conformance at Internet scale. The exhaustive simple-path oracle is
/// exponential in the instance size, so this arm replaces it with
/// parallel-BFS hop optima ([`cpr_paths::HopMatrix`]) — exact ground
/// truth for the shortest-path algebra under unit weights — and sweeps
/// one `n`-node scale-free instance:
///
/// * **Digest determinism** — the streaming shard compiler must produce
///   byte-identical planes at 1 and 2 workers, for both schemes.
/// * **Plane conformance** — [`cpr_plane::validate`] replays every pair
///   hop-for-hop against the live scheme.
/// * **Routability + stretch certification** — every ordered pair is
///   walked through the zero-alloc batched lookup core: exactly the
///   BFS-reachable pairs must deliver, destination tables must be
///   hop-optimal (stretch 1), and Cowen must stay within Theorem 3's
///   multiplicative-3 bound — per pair, not on average.
///
/// Violations are capped at [`SCALE_VIOLATION_CAP`] per scheme (with a
/// final summary entry carrying the overflow count); `pairs_checked`
/// always reflects the full sweep.
pub fn check_scale_instance(n: usize, seed: u64) -> Report {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = cpr_graph::generators::barabasi_albert(n, 2, &mut rng);
    let weights = EdgeWeights::uniform(&graph, 1u64);
    let optima = cpr_paths::HopMatrix::compute(&graph);
    let tag = format!("scale-free/{n}@{seed:#x}");

    let mut report = Report::default();
    let dest = DestTable::build(&graph, &weights, &policies::ShortestPath);
    check_scale_scheme(
        &mut report,
        &graph,
        &optima,
        &dest,
        "dest-table",
        TABLE_STRETCH,
        &tag,
    );
    let mut cowen_rng = StdRng::seed_from_u64(seed ^ 0x636f_7765_6e00);
    let cowen = CowenScheme::build(
        &graph,
        &weights,
        &policies::ShortestPath,
        LandmarkStrategy::TzRandom { attempts: 4 },
        &mut cowen_rng,
    );
    check_scale_scheme(
        &mut report,
        &graph,
        &optima,
        &cowen,
        "cowen",
        COWEN_STRETCH,
        &tag,
    );
    report
}

fn check_scale_scheme<S: RoutingScheme + Sync>(
    report: &mut Report,
    graph: &Graph,
    optima: &cpr_paths::HopMatrix,
    scheme: &S,
    kind: &'static str,
    k: u32,
    tag: &str,
) where
    S::Header: Send,
{
    let violation = |scheme_name: &str, vkind: &str, detail: String| Violation {
        instance: tag.to_owned(),
        algebra: "shortest-path".to_owned(),
        scheme: scheme_name.to_owned(),
        kind: vkind.to_owned(),
        detail,
    };
    let name = scheme.name();

    let plane = cpr_plane::compile_with_threads(scheme, graph, 1).expect("scheme compiles");
    let two = cpr_plane::compile_with_threads(scheme, graph, 2).expect("scheme compiles");
    if two.digest() != plane.digest() {
        report.violations.push(violation(
            &name,
            "digest-divergence",
            format!(
                "2-worker compile digest {:016x} != serial {:016x}",
                two.digest(),
                plane.digest()
            ),
        ));
    }
    if let Err(d) = cpr_plane::validate(&plane, scheme, graph) {
        report
            .violations
            .push(violation(&name, "plane-divergence", d.to_string()));
    }

    let n = graph.node_count();
    let core = plane.lookup_core();
    let mut scratch = cpr_plane::BatchScratch::new();
    let mut batch = Vec::with_capacity(n);
    let mut dropped = 0usize;
    for s in 0..n {
        batch.clear();
        batch.extend((0..n).filter(|&t| t != s).map(|t| (s, t)));
        core.lookup_batch(&batch, &mut scratch);
        let mut outcomes = scratch.results();
        for &(s, t) in &batch {
            let outcome = outcomes.next().expect("one outcome per query");
            report.pairs_checked += 1;
            let mut push = |vkind: &str, detail: String| {
                if report.violations.len() < SCALE_VIOLATION_CAP {
                    report.violations.push(violation(&name, vkind, detail));
                } else {
                    dropped += 1;
                }
            };
            match (outcome, optima.hops(s, t)) {
                (Some(hops), Some(opt)) => {
                    if hops > opt.saturating_mul(k) {
                        push(
                            "stretch-exceeded",
                            format!("{s} → {t}: {hops} hops, optimum {opt}, bound ×{k}"),
                        );
                    } else if hops < opt {
                        push(
                            "better-than-optimal",
                            format!("{s} → {t}: {hops} hops beats BFS optimum {opt}"),
                        );
                    }
                }
                (None, None) => {}
                (Some(hops), None) => push(
                    "routability",
                    format!("{s} → {t}: delivered in {hops} hops but BFS says unreachable"),
                ),
                (None, Some(opt)) => push(
                    "routability",
                    format!("{s} → {t}: failed but BFS reaches it in {opt} hops"),
                ),
            }
        }
    }
    if dropped > 0 {
        report.violations.push(violation(
            &name,
            "violations-capped",
            format!("{dropped} further violations suppressed"),
        ));
    }
    report.schemes_run += 1;
    report
        .coverage
        .insert(format!("shortest-path:{kind}@scale"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;

    #[test]
    fn mutant_conformance_is_clean() {
        let violations = check_mutants();
        assert!(
            violations.is_empty(),
            "{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn a_small_instance_sweep_is_clean() {
        for seed in 0..4 {
            let inst = generate(seed);
            let report = check_instance(&inst);
            assert!(report.is_clean(), "{}", report.render());
            assert!(report.schemes_run >= 3, "{}", report.render());
        }
    }

    #[test]
    fn a_planted_stretch_violation_is_caught() {
        // A scheme that routes 0→2 the long way round a triangle with a
        // heavy detour edge must trip the k = 1 certification.
        let inst = Instance {
            seed: 0,
            family: "manual".into(),
            n: 3,
            edges: vec![(0, 1), (1, 2), (0, 2)],
            atoms: vec![(99, 0), (99, 0), (0, 0)],
            heal_edge: None,
            note: String::new(),
        };
        let graph = inst.graph();
        let alg = policies::ShortestPath;
        let weights = alg.weights_from_atoms(&graph, &inst.atoms);
        let oracle = exhaustive_preferred_all(&graph, &weights, &alg, true);
        let ctx = Ctx {
            inst: &inst,
            id: AlgebraId::ShortestPath,
            alg: &alg,
            graph: &graph,
            weights: &weights,
            oracle: &oracle,
        };
        // Provision pair tables with deliberately bad paths: every pair
        // routes over the two heavy edges when a light direct edge exists.
        let bad = SrcDestTable::build(&graph, "planted", |s| {
            (0..3)
                .map(|t: usize| match (s, t) {
                    (s, t) if s == t => Some(vec![s]),
                    (0, 2) => Some(vec![0, 1, 2]),
                    (2, 0) => Some(vec![2, 1, 0]),
                    (a, b) => Some(vec![a, b]),
                })
                .collect()
        });
        let mut report = Report::default();
        run_scheme(
            &ctx,
            &bad,
            "src-dest-table",
            TABLE_STRETCH,
            false,
            &mut report,
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.kind == "stretch-exceeded"),
            "planted stretch violation must be caught:\n{}",
            report.render()
        );
    }

    #[test]
    fn reports_render_deterministically() {
        let inst = generate(7);
        let a = check_instance(&inst).render();
        let b = check_instance(&inst).render();
        assert_eq!(a, b);
    }
}
