//! The algebra registry: every Table 1 algebra the differential engine
//! sweeps, with seed-serializable edge weights.
//!
//! Repro files must be self-contained and byte-stable, so edge weights
//! are stored as *atoms* — pairs of `u64` — and each algebra interprets
//! an atom into its own carrier deterministically
//! ([`ConformAlgebra::weight_from_atom`]). The same atom array therefore
//! reproduces the same instance for every algebra, and shrinking an atom
//! shrinks the weight in every interpretation at once.

use cpr_algebra::policies::{
    self, BoundedShortestPath, Capacity, HopCount, MostReliablePath, ShortestPath, ShortestWidest,
    Usable, UsablePath, WidestPath, WidestShortest,
};
use cpr_algebra::{Ratio, RoutingAlgebra, SampleWeights};
use cpr_graph::{EdgeWeights, Graph};

/// The cost budget of the non-delimited [`BoundedShortestPath`] entry:
/// large enough that most pairs stay routable on the small conformance
/// graphs, small enough that long detours genuinely hit `φ`.
pub const BOUNDED_BUDGET: u64 = 120;

/// All registered algebras, in sweep order.
pub const ALL_ALGEBRAS: [AlgebraId; 8] = [
    AlgebraId::ShortestPath,
    AlgebraId::HopCount,
    AlgebraId::WidestPath,
    AlgebraId::UsablePath,
    AlgebraId::MostReliablePath,
    AlgebraId::WidestShortest,
    AlgebraId::ShortestWidest,
    AlgebraId::BoundedShortestPath,
];

/// Identifies one of the eight Table 1 algebras in the registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // Variants mirror the `policies` types one-to-one.
pub enum AlgebraId {
    ShortestPath,
    HopCount,
    WidestPath,
    UsablePath,
    MostReliablePath,
    WidestShortest,
    ShortestWidest,
    BoundedShortestPath,
}

impl AlgebraId {
    /// Stable name used in reports and repro files.
    pub fn name(self) -> &'static str {
        match self {
            AlgebraId::ShortestPath => "shortest-path",
            AlgebraId::HopCount => "hop-count",
            AlgebraId::WidestPath => "widest-path",
            AlgebraId::UsablePath => "usable-path",
            AlgebraId::MostReliablePath => "most-reliable-path",
            AlgebraId::WidestShortest => "widest-shortest",
            AlgebraId::ShortestWidest => "shortest-widest",
            AlgebraId::BoundedShortestPath => "bounded-shortest-path",
        }
    }

    /// Parses [`name`](Self::name) back; used by repro replay.
    pub fn from_name(s: &str) -> Option<AlgebraId> {
        ALL_ALGEBRAS.into_iter().find(|a| a.name() == s)
    }
}

/// A registry algebra: a [`RoutingAlgebra`] whose edge weights can be
/// materialized from serialized atoms.
///
/// Implementing this trait (plus listing the algebra in the engine's
/// dispatch) is all it takes to put a new algebra under the conformance
/// microscope.
pub trait ConformAlgebra: RoutingAlgebra + SampleWeights + Sync
where
    Self::W: Send + Sync,
{
    /// Deterministically interprets one serialized atom `(a, b)` as an
    /// edge weight of this algebra.
    fn weight_from_atom(&self, atom: (u64, u64)) -> Self::W;

    /// Materializes per-edge weights from the instance's atom array
    /// (`atoms[e]` belongs to edge `e` in graph edge order).
    fn weights_from_atoms(&self, graph: &Graph, atoms: &[(u64, u64)]) -> EdgeWeights<Self::W> {
        assert_eq!(atoms.len(), graph.edge_count(), "one atom per edge");
        let mut i = 0;
        EdgeWeights::from_fn(graph, |_| {
            let w = self.weight_from_atom(atoms[i]);
            i += 1;
            w
        })
    }
}

impl ConformAlgebra for ShortestPath {
    fn weight_from_atom(&self, atom: (u64, u64)) -> u64 {
        1 + atom.0 % 100
    }
}

impl ConformAlgebra for HopCount {
    fn weight_from_atom(&self, _atom: (u64, u64)) -> u64 {
        1
    }
}

impl ConformAlgebra for WidestPath {
    fn weight_from_atom(&self, atom: (u64, u64)) -> Capacity {
        // Coarse capacities: ties are common, which is exactly where
        // selective algebras get interesting (and where the
        // bottleneck-class tables stay small).
        Capacity::new(1 + atom.1 % 8).expect("non-zero")
    }
}

impl ConformAlgebra for UsablePath {
    fn weight_from_atom(&self, _atom: (u64, u64)) -> Usable {
        Usable
    }
}

impl ConformAlgebra for MostReliablePath {
    fn weight_from_atom(&self, atom: (u64, u64)) -> Ratio {
        Ratio::new(50 + atom.0 % 50, 100).expect("in (0, 1]")
    }
}

impl ConformAlgebra for WidestShortest {
    fn weight_from_atom(&self, atom: (u64, u64)) -> (u64, Capacity) {
        (
            ShortestPath.weight_from_atom(atom),
            WidestPath.weight_from_atom(atom),
        )
    }
}

impl ConformAlgebra for ShortestWidest {
    fn weight_from_atom(&self, atom: (u64, u64)) -> (Capacity, u64) {
        (
            WidestPath.weight_from_atom(atom),
            ShortestPath.weight_from_atom(atom),
        )
    }
}

impl ConformAlgebra for BoundedShortestPath {
    fn weight_from_atom(&self, atom: (u64, u64)) -> u64 {
        1 + atom.0 % 40
    }
}

/// Runs `f` with the concrete algebra value behind an [`AlgebraId`].
///
/// This is the monomorphization point: the engine is generic over
/// [`ConformAlgebra`] and this macro stamps it out once per registered
/// algebra. New algebras are added here and in [`ALL_ALGEBRAS`].
#[macro_export]
macro_rules! with_algebra {
    ($id:expr, $alg:ident => $body:expr) => {
        match $id {
            $crate::AlgebraId::ShortestPath => {
                let $alg = cpr_algebra::policies::ShortestPath;
                $body
            }
            $crate::AlgebraId::HopCount => {
                let $alg = cpr_algebra::policies::HopCount;
                $body
            }
            $crate::AlgebraId::WidestPath => {
                let $alg = cpr_algebra::policies::WidestPath;
                $body
            }
            $crate::AlgebraId::UsablePath => {
                let $alg = cpr_algebra::policies::UsablePath;
                $body
            }
            $crate::AlgebraId::MostReliablePath => {
                let $alg = cpr_algebra::policies::MostReliablePath;
                $body
            }
            $crate::AlgebraId::WidestShortest => {
                let $alg = cpr_algebra::policies::widest_shortest();
                $body
            }
            $crate::AlgebraId::ShortestWidest => {
                let $alg = cpr_algebra::policies::shortest_widest();
                $body
            }
            $crate::AlgebraId::BoundedShortestPath => {
                let $alg = cpr_algebra::policies::BoundedShortestPath::new($crate::BOUNDED_BUDGET);
                $body
            }
        }
    };
}

/// The empirically checked property set of a registry algebra, used by
/// the engine's admissibility gate. For the eight registry algebras this
/// agrees with the paper's Table 1 (pinned by a test below); the gate
/// still re-derives it empirically so that a regression in an algebra
/// implementation is caught as a conformance failure, not silently
/// trusted from its declaration.
pub fn empirical_properties(id: AlgebraId) -> cpr_algebra::PropertySet {
    with_algebra!(id, alg => {
        cpr_algebra::check_all_properties(&alg, &alg.sample()).holding()
    })
}

/// Convenience constructor for the registered bounded algebra.
pub fn bounded() -> BoundedShortestPath {
    BoundedShortestPath::new(BOUNDED_BUDGET)
}

/// Convenience constructor matching [`AlgebraId::WidestShortest`].
pub fn widest_shortest() -> WidestShortest {
    policies::widest_shortest()
}

/// Convenience constructor matching [`AlgebraId::ShortestWidest`].
pub fn shortest_widest() -> ShortestWidest {
    policies::shortest_widest()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_algebra::Property;

    #[test]
    fn names_round_trip() {
        for id in ALL_ALGEBRAS {
            assert_eq!(AlgebraId::from_name(id.name()), Some(id));
        }
        assert_eq!(AlgebraId::from_name("bogus"), None);
    }

    #[test]
    fn empirical_properties_match_table1() {
        // The gate inputs the engine actually uses, pinned to the paper.
        assert!(empirical_properties(AlgebraId::ShortestPath).is_regular());
        assert!(empirical_properties(AlgebraId::WidestPath).contains(Property::Selective));
        assert!(empirical_properties(AlgebraId::UsablePath).is_regular());
        assert!(empirical_properties(AlgebraId::MostReliablePath).is_regular());
        assert!(empirical_properties(AlgebraId::WidestShortest).is_regular());
        let sw = empirical_properties(AlgebraId::ShortestWidest);
        assert!(sw.contains(Property::StrictlyMonotone));
        assert!(!sw.contains(Property::Isotone), "SW must not look isotone");
        let bounded = empirical_properties(AlgebraId::BoundedShortestPath);
        assert!(bounded.is_regular());
        assert!(
            !bounded.contains(Property::Delimited),
            "the bounded algebra must not look delimited"
        );
    }

    #[test]
    fn atoms_materialize_deterministically() {
        let g = cpr_graph::generators::path(3);
        let atoms = [(7, 3), (12, 9)];
        let w1 = ShortestPath.weights_from_atoms(&g, &atoms);
        let w2 = ShortestPath.weights_from_atoms(&g, &atoms);
        for (e, w) in w1.iter() {
            assert_eq!(w, w2.weight(e));
        }
        // Every algebra accepts the same atom array.
        for id in ALL_ALGEBRAS {
            with_algebra!(id, alg => {
                assert_eq!(alg.weights_from_atoms(&g, &atoms).len(), 2);
            });
        }
    }
}
