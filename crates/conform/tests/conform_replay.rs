//! Corpus replay: every repro under `conform/corpus/` re-runs in CI
//! forever.
//!
//! Files land here two ways: checked-in seed instances (regression
//! anchors for the differential engine) and shrunk repros emitted by the
//! fuzzer on a past failure. Either way the contract is the same — the
//! instance must replay *clean* (the bug it witnessed stays fixed) and
//! byte-deterministically under `CPR_THREADS ∈ {1, 2, 8}`.

use std::path::PathBuf;
use std::sync::Mutex;

use cpr_conform::{check_instance, from_json, to_json};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap();
    let previous = std::env::var("CPR_THREADS").ok();
    std::env::set_var("CPR_THREADS", threads.to_string());
    let out = f();
    match previous {
        Some(v) => std::env::set_var("CPR_THREADS", v),
        None => std::env::remove_var("CPR_THREADS"),
    }
    out
}

/// The checked-in corpus directory at the workspace root.
fn corpus_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../conform/corpus"))
}

/// Every `*.json` file in the corpus, sorted for deterministic order.
fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("conform/corpus must exist and be readable")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_present_and_parses() {
    let files = corpus_files();
    assert!(!files.is_empty(), "conform/corpus has no repro files");
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap();
        let inst =
            from_json(&text).unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        // Round-trip is byte-stable: what we would re-emit is exactly
        // what is checked in, so repro files never churn in diffs.
        assert_eq!(
            to_json(&inst),
            text,
            "{} is not in canonical serialized form",
            path.display()
        );
    }
}

#[test]
fn corpus_replays_clean_across_thread_counts() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let inst = from_json(&text).unwrap();
        let reference = with_threads(1, || check_instance(&inst));
        assert!(
            reference.is_clean(),
            "{} replays dirty:\n{}",
            path.display(),
            reference.render()
        );
        for threads in THREAD_COUNTS {
            let report = with_threads(threads, || check_instance(&inst));
            assert_eq!(
                report.render(),
                reference.render(),
                "{} replay diverged at CPR_THREADS={threads}",
                path.display()
            );
        }
    }
}
