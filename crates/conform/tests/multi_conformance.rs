//! Multi-algebra serving conformance: every class of the standard
//! [`cpr_conform::standard_builder`] registry — all eight Table 1
//! algebras plus BGP `B1`–`B4` — differentially certified against its
//! own exhaustive oracle, fresh and after shared-dirty-set repair, over
//! every generator family. The classes × families matrix is proven from
//! the merged report's coverage set, not asserted by counting.
//!
//! The CI-sized arm runs the polynomial differential sweep at a node
//! count the fuzzer never reaches:
//!
//! ```text
//! CPR_MULTI_N=192 cargo test --release -p cpr-conform --test multi_conformance
//! ```

use cpr_conform::{check_multi_instance, check_multi_scale, generate, standard_classes, Report};

/// `generate` cycles families with the seed, so eight consecutive seeds
/// visit all eight graph families exactly once.
const FAMILY_SEEDS: std::ops::Range<u64> = 0..8;

#[test]
fn every_class_conforms_on_every_family_fresh_and_after_repair() {
    let mut merged = Report::default();
    let mut families = Vec::new();
    for seed in FAMILY_SEEDS {
        let inst = generate(seed);
        families.push(inst.family.clone());
        merged.merge(check_multi_instance(&inst));
    }
    assert!(
        merged.violations.is_empty(),
        "multi-plane conformance violations:\n{}",
        merged.render()
    );
    assert!(merged.pairs_checked > 0);

    // The coverage matrix: all 12 served classes × all 8 generator
    // families, read back from the report itself.
    families.sort();
    families.dedup();
    assert_eq!(families.len(), 8, "eight seeds must span eight families");
    for spec in standard_classes() {
        for family in &families {
            let entry = format!("multi:{}:{family}", spec.name);
            assert!(
                merged.coverage.contains(&entry),
                "coverage matrix is missing {entry}; have {:?}",
                merged.coverage
            );
        }
    }
}

#[test]
fn repair_phases_actually_ran_for_cyclic_families() {
    // Acyclic families carry no heal edge and skip the repair phases;
    // the cyclic ones must not — otherwise "post-repair conformance"
    // would silently test nothing.
    let mut repaired_any = false;
    for seed in FAMILY_SEEDS {
        let inst = generate(seed);
        let report = check_multi_instance(&inst);
        assert!(report.violations.is_empty(), "{}", report.render());
        let skipped = report.skips.iter().any(|s| s.starts_with("multi/repair"));
        if inst.heal_edge.is_some() {
            assert!(
                !skipped,
                "{}: heal edge present but repair skipped",
                inst.tag()
            );
            repaired_any = true;
        } else {
            assert!(skipped, "{}: no heal edge but no skip recorded", inst.tag());
        }
    }
    assert!(repaired_any, "some family must exercise the repair phases");
}

/// The CI gate: hop-for-hop differential conformance of the whole
/// registry at `CPR_MULTI_N` nodes, across fresh / repaired / restored.
#[test]
fn multi_scale_gate() {
    let Ok(raw) = std::env::var("CPR_MULTI_N") else {
        eprintln!("skipped: set CPR_MULTI_N=<nodes> to run the multi-plane scale gate");
        return;
    };
    let n: usize = raw.parse().expect("CPR_MULTI_N must be a node count");
    let report = check_multi_scale(n, 0xC0_2011);
    assert!(
        report.violations.is_empty(),
        "multi-plane scale violations:\n{}",
        report.render()
    );
    for spec in standard_classes() {
        for phase in ["fresh", "repaired", "restored"] {
            assert!(report
                .coverage
                .contains(&format!("multi-scale:{}:{phase}", spec.name)));
        }
    }
    let n64 = n as u64;
    assert_eq!(
        report.pairs_checked,
        12 * 3 * n64 * (n64 - 1),
        "every ordered pair, every class, every phase"
    );
}
