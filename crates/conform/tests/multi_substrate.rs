//! Pins the multi-plane's *shared substrate* claims:
//!
//! * total compiled bytes of the twelve-class [`MultiPlane`] are
//!   strictly below the sum of twelve independently compiled planes
//!   (the `HopMatrix`, adjacency and deduped header tables are paid for
//!   once, not per class) — ungated at `n = 96`, and at the issue's
//!   `n = 512` under `CPR_SLOW_TESTS=1`;
//! * every class's digest inside the multi-plane is byte-identical to a
//!   single-plane compile of the same scheme at 1, 2 and 8 workers —
//!   sharing the substrate must not perturb any class's compiled
//!   output, at any parallelism.

use cpr_conform::{
    as_graph_for, standard_builder, standard_classes, topology_weights, with_algebra, AlgebraId,
    TABLE1_FAMILY,
};
use cpr_graph::generators::barabasi_albert;
use cpr_graph::Graph;
use cpr_plane::{compile_with_threads, MultiPlane};
use cpr_routing::{DestTable, SwClassTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0x05EE_D512;
const THREADS: [usize; 3] = [1, 2, 8];

fn scale_free(n: usize) -> Graph {
    barabasi_albert(n, 2, &mut StdRng::seed_from_u64(SEED))
}

/// Digests of a standalone single-plane compile of `name`'s scheme on
/// `graph`, one per worker count in [`THREADS`].
fn standalone_digests(name: &str, graph: &Graph) -> Vec<u64> {
    if let Some(id) = AlgebraId::from_name(name) {
        if id == AlgebraId::ShortestWidest {
            let alg = cpr_algebra::policies::shortest_widest();
            let scheme = SwClassTable::build(graph, &topology_weights(&alg, graph));
            return THREADS
                .iter()
                .map(|&t| compile_with_threads(&scheme, graph, t).unwrap().digest())
                .collect();
        }
        return with_algebra!(id, alg => {
            let scheme = DestTable::build(graph, &topology_weights(&alg, graph), &alg);
            THREADS
                .iter()
                .map(|&t| compile_with_threads(&scheme, graph, t).unwrap().digest())
                .collect()
        });
    }
    let asg = as_graph_for(graph);
    let scheme = match name {
        "bgp-b1" => cpr_bgp::BgpStateTable::build(&asg, &cpr_bgp::ProviderCustomer),
        "bgp-b2" => cpr_bgp::BgpStateTable::build(&asg, &cpr_bgp::ValleyFree),
        _ => cpr_bgp::BgpStateTable::build(&asg, &cpr_bgp::PreferCustomer),
    };
    THREADS
        .iter()
        .map(|&t| compile_with_threads(&scheme, graph, t).unwrap().digest())
        .collect()
}

fn assert_substrate_shared(n: usize) {
    let graph = scale_free(n);
    let multi = MultiPlane::build(&graph, standard_builder()).unwrap();
    let mem = multi.memory();
    assert_eq!(mem.classes, standard_classes().len());
    assert_eq!(mem.nodes, n);
    assert!(
        mem.multi_total_bits < mem.independent_total_bits,
        "n = {n}: multi plane must be strictly smaller than {} independent \
         planes ({} vs {} bits)",
        mem.classes,
        mem.multi_total_bits,
        mem.independent_total_bits
    );
    // The adjacency tables are a pure function of the graph, so content
    // dedup must collapse them across classes.
    assert!(
        mem.distinct_adjacency_tables < mem.classes,
        "no adjacency sharing: {} distinct tables for {} classes",
        mem.distinct_adjacency_tables,
        mem.classes
    );
    assert!(mem.hop_matrix_bits > 0);
    assert!(mem.savings_fraction() > 0.0);
    eprintln!(
        "n = {n}: {:.1} B/node multi vs {:.1} B/node independent ({:.1}% saved)",
        mem.multi_bytes_per_node(),
        mem.independent_bytes_per_node(),
        100.0 * mem.savings_fraction()
    );
}

#[test]
fn multi_plane_is_smaller_than_independent_planes() {
    assert_substrate_shared(96);
}

/// The issue's headline size; release-mode territory, so gated.
#[test]
fn multi_plane_is_smaller_than_independent_planes_at_512() {
    if std::env::var("CPR_SLOW_TESTS").ok().as_deref() != Some("1") {
        eprintln!("skipped: set CPR_SLOW_TESTS=1 to run the n=512 substrate check");
        return;
    }
    assert_substrate_shared(512);
}

#[test]
fn class_digests_match_single_plane_compiles_across_thread_counts() {
    let graph = scale_free(96);
    let multi = MultiPlane::build(&graph, standard_builder()).unwrap();
    let specs = standard_classes();
    for (class, spec) in multi.classes().zip(&specs) {
        assert_eq!(class.class_name(), spec.name);
        let inside = class.digest();
        for (digest, threads) in standalone_digests(spec.name, &graph)
            .into_iter()
            .zip(THREADS)
        {
            assert_eq!(
                inside, digest,
                "{}: multi-plane digest diverges from a single-plane compile \
                 at {threads} workers",
                spec.name
            );
        }
    }
    // B3 and B4 serve through the same state table by design (the route
    // engine's hop tie-break *is* B4's shortest-AS-path refinement), so
    // their compiled digests must agree too.
    let digests: Vec<u64> = multi.classes().map(|c| c.digest()).collect();
    let b3 = specs.iter().position(|s| s.name == "bgp-b3").unwrap();
    let b4 = specs.iter().position(|s| s.name == "bgp-b4").unwrap();
    assert_eq!(digests[b3], digests[b4]);
    // ... and every Table 1 class compiles to a genuinely distinct plane.
    let table1: Vec<u64> = specs
        .iter()
        .zip(&digests)
        .filter(|(s, _)| s.family == TABLE1_FAMILY)
        .map(|(_, &d)| d)
        .collect();
    let mut deduped = table1.clone();
    deduped.sort_unstable();
    deduped.dedup();
    assert_eq!(deduped.len(), table1.len(), "table1 digests must differ");
}
