//! Dynamic-tenancy conformance: algebra expressions registered at
//! runtime through the wire's gate-and-compile path
//! ([`cpr_conform::check_multi_dynamic`]), each certified against its
//! own exhaustive oracle fresh, after shared-dirty-set repair, and
//! after restore, over every generator family — then the
//! deregistration tombstone discipline. The dynamic-class × family ×
//! phase matrix is proven from the merged report's coverage set.
//!
//! This is the conformance half of the CI `tenant-smoke` job:
//!
//! ```text
//! cargo test --release -p cpr-conform --test tenant_conformance
//! ```

use cpr_conform::{check_multi_dynamic, dynamic_classes, generate, Report};

/// `generate` cycles families with the seed, so eight consecutive seeds
/// visit all eight graph families exactly once.
const FAMILY_SEEDS: std::ops::Range<u64> = 0..8;

#[test]
fn every_dynamic_class_conforms_on_every_family() {
    let mut merged = Report::default();
    let mut families = Vec::new();
    let mut churned = Vec::new();
    for seed in FAMILY_SEEDS {
        let inst = generate(seed);
        families.push(inst.family.clone());
        if inst.heal_edge.is_some() {
            churned.push(inst.family.clone());
        }
        merged.merge(check_multi_dynamic(&inst));
    }
    assert!(
        merged.violations.is_empty(),
        "dynamic-tenancy conformance violations:\n{}",
        merged.render()
    );
    assert!(merged.pairs_checked > 0);

    families.sort();
    families.dedup();
    assert_eq!(families.len(), 8, "eight seeds must span eight families");
    assert!(
        !churned.is_empty(),
        "some family must exercise the repair phases"
    );

    // The coverage matrix, read back from the report itself: every
    // dynamic class × every family fresh (plus the epilogue's slot
    // reuse), and × the churn phases on every family with a heal edge.
    for spec in dynamic_classes() {
        for family in &families {
            let entry = format!("multi-dynamic:{}:{family}:fresh", spec.name);
            assert!(
                merged.coverage.contains(&entry),
                "coverage matrix is missing {entry}; have {:?}",
                merged.coverage
            );
        }
        for family in &churned {
            for phase in ["repaired", "restored"] {
                let entry = format!("multi-dynamic:{}:{family}:{phase}", spec.name);
                assert!(
                    merged.coverage.contains(&entry),
                    "coverage matrix is missing {entry}"
                );
            }
        }
    }
    for family in &families {
        assert!(
            merged
                .coverage
                .contains(&format!("multi-dynamic:tenant-hop-count:{family}:reused")),
            "deregistration epilogue did not run on {family}"
        );
    }
}
