//! The Internet-scale conformance run, gated behind `CPR_SLOW_TESTS=1`.
//!
//! One 10⁴-node scale-free instance through
//! [`cpr_conform::check_scale_instance`]: compile-digest determinism
//! across worker counts, hop-for-hop plane validation, and per-pair
//! routability + stretch certification against BFS hop optima — 2·10⁸
//! ordered pairs in total. Run it in release mode:
//!
//! ```text
//! CPR_SLOW_TESTS=1 cargo test --release -p cpr-conform --test scale_conformance
//! ```

/// Matches the default `scale_bench` instance size.
const SCALE_N: usize = 10_000;
const SCALE_SEED: u64 = 0xC0_2011;

#[test]
fn ten_thousand_node_scale_free_instance_conforms() {
    if std::env::var("CPR_SLOW_TESTS").ok().as_deref() != Some("1") {
        eprintln!("skipped: set CPR_SLOW_TESTS=1 to run the 10k-node conformance sweep");
        return;
    }
    let report = cpr_conform::check_scale_instance(SCALE_N, SCALE_SEED);
    assert!(
        report.violations.is_empty(),
        "scale conformance violations:\n{}",
        report.render()
    );
    assert_eq!(report.schemes_run, 2, "dest-table and cowen must both run");
    let expected_pairs = 2 * (SCALE_N as u64) * (SCALE_N as u64 - 1);
    assert_eq!(
        report.pairs_checked, expected_pairs,
        "the sweep must cover every ordered pair for both schemes"
    );
}

/// The same sweep at a CI-friendly size, so the scale arm itself is
/// covered by default test runs (the 10k version only changes `n`).
#[test]
fn scale_conformance_arm_works_at_small_n() {
    let report = cpr_conform::check_scale_instance(192, SCALE_SEED);
    assert!(
        report.violations.is_empty(),
        "scale conformance violations:\n{}",
        report.render()
    );
    assert_eq!(report.schemes_run, 2);
    assert_eq!(report.pairs_checked, 2 * 192 * 191);
}
