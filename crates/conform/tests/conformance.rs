//! The headline conformance sweep.
//!
//! Runs the differential engine over a contiguous seed range (default 16
//! instances, override with `CPR_CONFORM_ITERS`) and then *proves* the
//! coverage claim from the report's own records: every scheme kind, all
//! eight Table 1 algebras, at least six generator families, and all four
//! mutant rejections. The rendered report must be byte-identical under
//! `CPR_THREADS ∈ {1, 2, 8}` — the whole point of a deterministic
//! harness is that CI failures replay anywhere.
//!
//! Tests that touch `CPR_THREADS` serialize behind one mutex: the
//! variable is process-global and Rust runs tests concurrently.

use std::collections::BTreeSet;
use std::sync::Mutex;

use cpr_conform::{check_instance, check_mutants, generate, Report, ALL_ALGEBRAS, ALL_MUTANTS};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with `CPR_THREADS` set to `threads`, restoring the previous
/// value afterwards; callers serialize on [`ENV_LOCK`].
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap();
    let previous = std::env::var("CPR_THREADS").ok();
    std::env::set_var("CPR_THREADS", threads.to_string());
    let out = f();
    match previous {
        Some(v) => std::env::set_var("CPR_THREADS", v),
        None => std::env::remove_var("CPR_THREADS"),
    }
    out
}

/// Seeds swept by this test. The family rotates with `seed % 8`, so 16
/// seeds visit every generator family twice.
fn sweep_seeds() -> u64 {
    std::env::var("CPR_CONFORM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
        .max(8)
}

/// One full sweep at the current thread count, returning the merged
/// report and the set of families actually generated.
fn sweep(iters: u64) -> (Report, BTreeSet<String>) {
    let mut merged = Report::default();
    let mut families = BTreeSet::new();
    for seed in 0..iters {
        let inst = generate(seed);
        families.insert(inst.family.clone());
        let report = check_instance(&inst);
        assert!(
            report.is_clean(),
            "seed {seed} ({}) violated conformance:\n{}",
            inst.tag(),
            report.render()
        );
        merged.merge(report);
    }
    (merged, families)
}

#[test]
fn differential_sweep_is_clean_and_covers_the_matrix() {
    let iters = sweep_seeds();
    let (report, families) = with_threads(1, || sweep(iters));

    // Five live schemes plus the compiled plane (validated inside every
    // scheme kind) plus the heal drill.
    let kinds = report.scheme_kinds();
    for kind in [
        "dest-table",
        "cowen",
        "src-dest-table",
        "label-swapping",
        "sw-class-table",
        "heal",
    ] {
        assert!(
            kinds.contains(kind),
            "scheme kind {kind} never ran: {kinds:?}"
        );
    }

    // All eight Table 1 algebras appear in the exercised coverage.
    let algebras: BTreeSet<&str> = report
        .coverage
        .iter()
        .filter_map(|c| c.split(':').next())
        .collect();
    for id in ALL_ALGEBRAS {
        assert!(
            algebras.contains(id.name()),
            "algebra {} never exercised: {algebras:?}",
            id.name()
        );
    }

    // At least six distinct generator families were swept.
    assert!(
        families.len() >= 6,
        "only {} families swept: {families:?}",
        families.len()
    );

    assert!(report.pairs_checked > 0);
    assert!(report.schemes_run > 0);
}

#[test]
fn mutant_algebras_are_rejected() {
    assert!(ALL_MUTANTS.len() >= 4);
    let violations = check_mutants();
    assert!(
        violations.is_empty(),
        "mutant conformance failed:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn reports_are_byte_identical_across_thread_counts() {
    let iters = sweep_seeds().min(8);
    let reference = with_threads(1, || sweep(iters).0.render());
    for threads in THREAD_COUNTS {
        let rendered = with_threads(threads, || sweep(iters).0.render());
        assert_eq!(
            rendered, reference,
            "conformance report diverged at CPR_THREADS={threads}"
        );
    }
}
