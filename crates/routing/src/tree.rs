//! Rooted trees over a host graph, with heavy-light DFS numbering.
//!
//! Tree-routing schemes (Fraigniaud–Gavoille, Thorup–Zwick) route on a
//! spanning tree of the network. [`RootedTree`] captures the tree structure
//! plus everything those schemes need: host-graph ports for each tree edge,
//! a preorder DFS numbering that visits the *heavy* child (largest subtree)
//! first, and subtree intervals.

use cpr_graph::{EdgeId, Graph, NodeId, Port};

/// Error returned by [`RootedTree::from_edges`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// The edge set does not span every node from the root.
    NotSpanning {
        /// A node the edge set does not reach.
        unreached: NodeId,
    },
    /// The edge set contains a cycle (more edges than a forest allows).
    HasCycle,
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::NotSpanning { unreached } => {
                write!(f, "tree does not reach node {unreached}")
            }
            TreeError::HasCycle => write!(f, "edge set contains a cycle"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A spanning tree of a host graph, rooted, DFS-numbered heavy-first.
///
/// # Examples
///
/// ```
/// use cpr_graph::generators;
/// use cpr_routing::RootedTree;
///
/// let g = generators::star(4); // centre 0
/// let edges: Vec<_> = g.edges().map(|(e, _)| e).collect();
/// let tree = RootedTree::from_edges(&g, &edges, 0).unwrap();
/// assert_eq!(tree.root(), 0);
/// assert_eq!(tree.dfs(0), 0);
/// assert!(tree.in_subtree(0, tree.dfs(3)));
/// ```
#[derive(Clone, Debug)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    parent_port: Vec<Option<Port>>,
    children: Vec<Vec<(NodeId, Port)>>,
    dfs: Vec<u32>,
    subtree_end: Vec<u32>,
    by_dfs: Vec<NodeId>,
    depth: Vec<u32>,
}

impl RootedTree {
    /// Builds a rooted tree from `edges` of `graph`, rooted at `root`.
    /// Children are ordered heavy-first (largest subtree first), which
    /// bounds the light edges on any root path by `log₂ n`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError`] if the edges do not form a spanning tree of
    /// the graph's nodes.
    ///
    /// # Panics
    ///
    /// Panics if `root` or an edge id is out of bounds.
    pub fn from_edges(graph: &Graph, edges: &[EdgeId], root: NodeId) -> Result<Self, TreeError> {
        let members: Vec<NodeId> = graph.nodes().collect();
        Self::spanning_nodes(graph, edges, root, &members)
    }

    /// Builds a rooted tree over a *subset* of the graph's nodes: `edges`
    /// must form a tree on exactly `members` (which must contain `root`).
    /// Used for per-component trees (e.g. the SVFC provider trees of the
    /// inter-domain schemes); queries for non-member nodes return
    /// placeholder values and must not be made.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError`] if the edges do not form a tree spanning the
    /// member set.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of bounds or not a member.
    pub fn spanning_nodes(
        graph: &Graph,
        edges: &[EdgeId],
        root: NodeId,
        members: &[NodeId],
    ) -> Result<Self, TreeError> {
        let n = graph.node_count();
        assert!(root < n, "root out of bounds");
        assert!(members.contains(&root), "root must be a member");
        if edges.len() + 1 > members.len() {
            return Err(TreeError::HasCycle);
        }
        // Tree adjacency.
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &e in edges {
            let (u, v) = graph.endpoints(e);
            adj[u].push(v);
            adj[v].push(u);
        }
        // Orient away from the root (iterative DFS), computing sizes.
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        seen[root] = true;
        let mut stack = vec![root];
        while let Some(u) = stack.pop() {
            order.push(u);
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = Some(u);
                    stack.push(v);
                }
            }
        }
        if order.len() != members.len() {
            let unreached = members
                .iter()
                .copied()
                .find(|&v| !seen[v])
                .expect("some member unreached");
            return Err(TreeError::NotSpanning { unreached });
        }
        if edges.len() != members.len() - 1 {
            return Err(TreeError::HasCycle);
        }
        let mut size = vec![1u32; n];
        for &u in order.iter().rev() {
            if let Some(p) = parent[u] {
                size[p] += size[u];
            }
        }
        // Children lists, heavy-first, with host ports.
        let mut children: Vec<Vec<(NodeId, Port)>> = vec![Vec::new(); n];
        for v in 0..n {
            if let Some(p) = parent[v] {
                let port = graph
                    .port_towards(p, v)
                    .expect("tree edge exists in host graph");
                children[p].push((v, port));
            }
        }
        for list in &mut children {
            list.sort_by_key(|&(c, _)| std::cmp::Reverse(size[c]));
        }
        let parent_port: Vec<Option<Port>> = (0..n)
            .map(|v| {
                parent[v].map(|p| {
                    graph
                        .port_towards(v, p)
                        .expect("tree edge exists in host graph")
                })
            })
            .collect();
        // Heavy-first preorder DFS numbering.
        let mut dfs = vec![0u32; n];
        let mut subtree_end = vec![0u32; n];
        let mut by_dfs = vec![0usize; n];
        let mut depth = vec![0u32; n];
        let mut counter = 0u32;
        // Iterative preorder with post-visit bookkeeping.
        enum Frame {
            Enter(NodeId, u32),
            Exit(NodeId),
        }
        let mut stack = vec![Frame::Enter(root, 0)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(u, d) => {
                    dfs[u] = counter;
                    by_dfs[counter as usize] = u;
                    depth[u] = d;
                    counter += 1;
                    stack.push(Frame::Exit(u));
                    // Push children reversed so the heavy child is
                    // processed (numbered) first.
                    for &(c, _) in children[u].iter().rev() {
                        stack.push(Frame::Enter(c, d + 1));
                    }
                }
                Frame::Exit(u) => {
                    subtree_end[u] = counter;
                }
            }
        }
        Ok(RootedTree {
            root,
            parent,
            parent_port,
            children,
            dfs,
            subtree_end,
            by_dfs,
            depth,
        })
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.dfs.len()
    }

    /// `true` only for an empty tree (never constructed by `from_edges`).
    pub fn is_empty(&self) -> bool {
        self.dfs.is_empty()
    }

    /// The tree parent of `v` (`None` for the root).
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v]
    }

    /// `v`'s host-graph port towards its parent.
    pub fn parent_port(&self, v: NodeId) -> Option<Port> {
        self.parent_port[v]
    }

    /// `v`'s children with their host-graph ports at `v`, heavy-first.
    pub fn children(&self, v: NodeId) -> &[(NodeId, Port)] {
        &self.children[v]
    }

    /// The heavy child (largest subtree) of `v`, with its port.
    pub fn heavy_child(&self, v: NodeId) -> Option<(NodeId, Port)> {
        self.children[v].first().copied()
    }

    /// The DFS (preorder) number of `v`.
    pub fn dfs(&self, v: NodeId) -> u32 {
        self.dfs[v]
    }

    /// `v`'s subtree is exactly the DFS interval
    /// `[dfs(v), subtree_end(v))`.
    pub fn subtree_end(&self, v: NodeId) -> u32 {
        self.subtree_end[v]
    }

    /// `true` when the node with DFS number `d` lies in `v`'s subtree.
    pub fn in_subtree(&self, v: NodeId, d: u32) -> bool {
        (self.dfs[v]..self.subtree_end[v]).contains(&d)
    }

    /// The node with DFS number `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn node_at_dfs(&self, d: u32) -> NodeId {
        self.by_dfs[d as usize]
    }

    /// Depth of `v` (root = 0).
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v]
    }

    /// The path root → `v` as (node, is_light_edge_to_next) is internal;
    /// instead expose the light edges on the root → `v` path: pairs
    /// `(u, port)` where the tree edge `u → child` towards `v` is *light*
    /// (the child is not `u`'s heavy child). At most `⌊log₂ n⌋` entries.
    pub fn light_edges_to(&self, v: NodeId) -> Vec<(NodeId, Port)> {
        let mut out = Vec::new();
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            let heavy = self.heavy_child(p).map(|(c, _)| c);
            if heavy != Some(cur) {
                let port = self.children[p]
                    .iter()
                    .find(|&&(c, _)| c == cur)
                    .map(|&(_, port)| port)
                    .expect("cur is a child of p");
                out.push((p, port));
            }
            cur = p;
        }
        out.reverse();
        out
    }

    /// The tree path from `u` to `v` (node sequence, both inclusive).
    pub fn tree_path(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        // Climb both ends to the common ancestor.
        let (mut a, mut b) = (u, v);
        let mut left = vec![a];
        let mut right = vec![b];
        while a != b {
            if self.depth[a] >= self.depth[b] {
                a = self.parent[a].expect("non-root has parent");
                left.push(a);
            } else {
                b = self.parent[b].expect("non-root has parent");
                right.push(b);
            }
        }
        right.pop(); // drop duplicate ancestor
        left.extend(right.into_iter().rev());
        left
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_graph::generators;

    fn tree_of(graph: &Graph, root: NodeId) -> RootedTree {
        let edges: Vec<_> = graph.edges().map(|(e, _)| e).collect();
        RootedTree::from_edges(graph, &edges, root).unwrap()
    }

    #[test]
    fn dfs_intervals_nest() {
        let g = generators::balanced_tree(2, 3);
        let t = tree_of(&g, 0);
        for v in g.nodes() {
            for &(c, _) in t.children(v) {
                assert!(t.dfs(c) > t.dfs(v));
                assert!(t.subtree_end(c) <= t.subtree_end(v));
                assert!(t.in_subtree(v, t.dfs(c)));
            }
        }
        assert_eq!(t.subtree_end(0), g.node_count() as u32);
    }

    #[test]
    fn heavy_child_is_first_and_largest() {
        // Root 0 with a path of 3 below child 1 and a single leaf child 2.
        let g = Graph::from_edges(6, [(0, 1), (1, 3), (3, 4), (0, 2), (4, 5)]).unwrap();
        let t = tree_of(&g, 0);
        assert_eq!(t.heavy_child(0).map(|(c, _)| c), Some(1));
    }

    #[test]
    fn light_edges_bounded_by_log() {
        let g = generators::balanced_tree(2, 6); // 127 nodes
        let t = tree_of(&g, 0);
        for v in g.nodes() {
            let light = t.light_edges_to(v);
            assert!(light.len() <= 7, "node {v} has {} light edges", light.len());
        }
    }

    #[test]
    fn tree_path_endpoints_and_continuity() {
        let g = generators::balanced_tree(3, 3);
        let t = tree_of(&g, 0);
        let p = t.tree_path(5, 11);
        assert_eq!(*p.first().unwrap(), 5);
        assert_eq!(*p.last().unwrap(), 11);
        for hop in p.windows(2) {
            assert!(
                t.parent(hop[0]) == Some(hop[1]) || t.parent(hop[1]) == Some(hop[0]),
                "non-tree hop {hop:?}"
            );
        }
        // Trivial path.
        assert_eq!(t.tree_path(4, 4), vec![4]);
    }

    #[test]
    fn rejects_non_spanning_and_cyclic() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        // Missing node 3:
        let err = RootedTree::from_edges(&g, &[0, 1], 0).unwrap_err();
        assert_eq!(err, TreeError::NotSpanning { unreached: 3 });
        // Cycle:
        let err = RootedTree::from_edges(&g, &[0, 1, 2, 3], 0).unwrap_err();
        assert_eq!(err, TreeError::HasCycle);
        // Proper spanning tree:
        assert!(RootedTree::from_edges(&g, &[0, 1, 3], 0).is_ok());
    }

    #[test]
    fn parent_ports_lead_home() {
        let g = generators::star(5);
        let t = tree_of(&g, 2); // root at a leaf
        assert_eq!(t.parent(0), Some(2));
        assert_eq!(t.parent(4), Some(0));
        let port = t.parent_port(4).unwrap();
        assert_eq!(g.neighbor_at(4, port).unwrap().0, 0);
        assert_eq!(t.parent_port(2), None);
    }

    use cpr_graph::Graph;
}

#[cfg(test)]
mod subset_tests {
    use super::*;
    use cpr_graph::Graph;

    #[test]
    fn spanning_nodes_covers_a_component_only() {
        // Two components: tree over {0,1,2} only.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5), (0, 2)]).unwrap();
        let members = vec![0, 1, 2];
        let tree = RootedTree::spanning_nodes(&g, &[0, 1], 0, &members).unwrap();
        assert_eq!(tree.root(), 0);
        assert_eq!(tree.parent(1), Some(0));
        assert_eq!(tree.parent(2), Some(1));
        assert_eq!(tree.subtree_end(0), 3);
        // Tree paths within the member set work.
        assert_eq!(tree.tree_path(2, 0), vec![2, 1, 0]);
        // Light-edge lists stay within the component.
        assert!(tree.light_edges_to(2).len() <= 1);
    }

    #[test]
    fn spanning_nodes_rejects_short_and_cyclic_edge_sets() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let members = vec![0, 1, 2];
        // Too few edges: not spanning.
        assert!(matches!(
            RootedTree::spanning_nodes(&g, &[0], 0, &members),
            Err(TreeError::NotSpanning { .. })
        ));
        // A cycle: too many edges for the member count.
        assert!(matches!(
            RootedTree::spanning_nodes(&g, &[0, 1, 2], 0, &members),
            Err(TreeError::HasCycle)
        ));
    }

    #[test]
    #[should_panic(expected = "member")]
    fn spanning_nodes_requires_member_root() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let _ = RootedTree::spanning_nodes(&g, &[0], 2, &[0, 1]);
    }
}
