//! Bit accounting for routing schemes.
//!
//! Definition 2 measures a routing scheme by the number of bits needed to
//! encode each node's local routing function. These helpers give honest —
//! neither optimistic nor padded — sizes for the encodings the schemes use.

/// `⌈log₂ x⌉` with the conventions `ceil_log2(0) = 0` and
/// `ceil_log2(1) = 0` (one distinguishable value needs no bits).
///
/// # Examples
///
/// ```
/// use cpr_routing::bits::ceil_log2;
///
/// assert_eq!(ceil_log2(1), 0);
/// assert_eq!(ceil_log2(2), 1);
/// assert_eq!(ceil_log2(5), 3);
/// assert_eq!(ceil_log2(1024), 10);
/// ```
pub fn ceil_log2(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

/// Bits to name one node in an `n`-node network, at least 1 (a header must
/// still distinguish "deliver here" on a one-node network).
pub fn node_id_bits(n: usize) -> u64 {
    ceil_log2(n as u64).max(1) as u64
}

/// Bits to name one local port at a node of the given degree (0 for
/// degree ≤ 1: a single port needs no bits).
pub fn port_bits(degree: usize) -> u64 {
    ceil_log2(degree as u64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_table() {
        let expect = [
            (0u64, 0u32),
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (u64::MAX, 64),
        ];
        for (x, want) in expect {
            assert_eq!(ceil_log2(x), want, "x = {x}");
        }
    }

    #[test]
    fn node_id_bits_minimum_one() {
        assert_eq!(node_id_bits(1), 1);
        assert_eq!(node_id_bits(2), 1);
        assert_eq!(node_id_bits(1000), 10);
    }

    #[test]
    fn port_bits_zero_for_leaf() {
        assert_eq!(port_bits(0), 0);
        assert_eq!(port_bits(1), 0);
        assert_eq!(port_bits(2), 1);
        assert_eq!(port_bits(5), 3);
    }
}
