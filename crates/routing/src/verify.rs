//! End-to-end scheme verification: route every pair, weigh the routed
//! path, and check it against ground truth and the algebraic stretch
//! bound (Definition 3).

use std::cmp::Ordering;

use cpr_algebra::{check_stretch, measured_stretch, PathWeight, RoutingAlgebra, StretchVerdict};
use cpr_graph::{EdgeWeights, Graph, NodeId};

use crate::scheme::{route, RoutingScheme};

/// Aggregate outcome of routing all pairs through a scheme.
#[derive(Clone, Debug)]
pub struct StretchReport {
    /// Scheme name.
    pub scheme: String,
    /// Ordered pairs attempted (`s ≠ t`, both directions).
    pub pairs: usize,
    /// Pairs delivered on a *preferred* path (stretch 1).
    pub optimal: usize,
    /// Pairs delivered within the checked stretch bound.
    pub within_bound: usize,
    /// Pairs where the stretch bound degenerated to `φ`
    /// (non-delimited algebras only; see
    /// [`StretchVerdict::DegenerateBound`]).
    pub degenerate: usize,
    /// Pairs that exceeded the bound (must be 0 for a correct scheme).
    pub exceeded: Vec<(NodeId, NodeId)>,
    /// Pairs that failed to route at all (loop / bad port / unroutable).
    pub failed: Vec<(NodeId, NodeId)>,
    /// The largest *measured* algebraic stretch over all delivered pairs
    /// (`None` when nothing was delivered or a measured stretch exceeded
    /// the probe horizon).
    pub max_measured_stretch: Option<u32>,
    /// The stretch bound that was checked.
    pub checked_bound: u32,
}

impl StretchReport {
    /// `true` when every pair routed and met the bound.
    pub fn all_within_bound(&self) -> bool {
        self.failed.is_empty() && self.exceeded.is_empty()
    }

    /// Fraction of delivered pairs routed on exactly preferred paths.
    pub fn optimal_fraction(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.optimal as f64 / self.pairs as f64
        }
    }
}

impl std::fmt::Display for StretchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}/{} pairs within stretch-{} ({} optimal, {} degenerate, {} exceeded, {} failed), max measured stretch {:?}",
            self.scheme,
            self.within_bound,
            self.pairs,
            self.checked_bound,
            self.optimal,
            self.degenerate,
            self.exceeded.len(),
            self.failed.len(),
            self.max_measured_stretch
        )
    }
}

/// Routes every ordered pair through `scheme`, weighs the traversed path
/// under `alg`, and checks Definition 3 against `preferred` ground truth
/// with the given stretch bound `k`.
///
/// `preferred(s, t)` must return the preferred `s → t` weight (`φ` when
/// unreachable); unreachable pairs are skipped (a correct scheme has
/// nothing to deliver).
pub fn verify_scheme<A, S>(
    graph: &Graph,
    weights: &EdgeWeights<A::W>,
    alg: &A,
    scheme: &S,
    k: u32,
    preferred: impl Fn(NodeId, NodeId) -> PathWeight<A::W>,
) -> StretchReport
where
    A: RoutingAlgebra,
    S: RoutingScheme,
{
    let mut report = StretchReport {
        scheme: scheme.name(),
        pairs: 0,
        optimal: 0,
        within_bound: 0,
        degenerate: 0,
        exceeded: Vec::new(),
        failed: Vec::new(),
        max_measured_stretch: None,
        checked_bound: k,
    };
    for s in graph.nodes() {
        for t in graph.nodes() {
            if s == t {
                continue;
            }
            let truth = preferred(s, t);
            if truth.is_infinite() {
                continue;
            }
            report.pairs += 1;
            let path = match route(scheme, graph, s, t) {
                Ok(p) => p,
                Err(_) => {
                    report.failed.push((s, t));
                    continue;
                }
            };
            let got = weights.path_weight(alg, graph, &path);
            if alg.compare_pw(&got, &truth) == Ordering::Equal {
                report.optimal += 1;
            }
            match check_stretch(alg, &got, &truth, k) {
                StretchVerdict::Within => report.within_bound += 1,
                StretchVerdict::DegenerateBound => {
                    report.degenerate += 1;
                    report.within_bound += 1;
                }
                StretchVerdict::Exceeded => report.exceeded.push((s, t)),
                StretchVerdict::Unreachable => unreachable!("truth checked finite"),
            }
            if let Some(m) = measured_stretch(alg, &got, &truth, 4 * k) {
                report.max_measured_stretch = Some(report.max_measured_stretch.unwrap_or(0).max(m));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::dest_table::DestTable;
    use crate::{CowenScheme, LandmarkStrategy};
    use cpr_algebra::policies::ShortestPath;

    use cpr_graph::generators;
    use cpr_paths::AllPairs;
    use rand::SeedableRng;

    #[test]
    fn dest_table_is_stretch_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(700);
        let g = generators::gnp_connected(25, 0.15, &mut rng);
        let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
        let ap = AllPairs::compute(&g, &w, &ShortestPath);
        let scheme = DestTable::build(&g, &w, &ShortestPath);
        let report = verify_scheme(&g, &w, &ShortestPath, &scheme, 1, |s, t| *ap.weight(s, t));
        assert!(report.all_within_bound(), "{report}");
        assert_eq!(report.optimal, report.pairs);
        assert_eq!(report.optimal_fraction(), 1.0);
        assert_eq!(report.max_measured_stretch, Some(1));
    }

    #[test]
    fn cowen_report_within_three() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(701);
        let g = generators::barabasi_albert(30, 2, &mut rng);
        let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
        let ap = AllPairs::compute(&g, &w, &ShortestPath);
        let scheme = CowenScheme::build(
            &g,
            &w,
            &ShortestPath,
            LandmarkStrategy::TzRandom { attempts: 4 },
            &mut rng,
        );
        let report = verify_scheme(&g, &w, &ShortestPath, &scheme, 3, |s, t| *ap.weight(s, t));
        assert!(report.all_within_bound(), "{report}");
        assert!(report.max_measured_stretch.unwrap() <= 3);
        assert!(report.to_string().contains("within stretch-3"));
    }

    #[test]
    fn skips_unreachable_pairs() {
        let g = cpr_graph::Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let w = EdgeWeights::uniform(&g, 1u64);
        let ap = AllPairs::compute(&g, &w, &ShortestPath);
        let scheme = DestTable::build(&g, &w, &ShortestPath);
        let report = verify_scheme(&g, &w, &ShortestPath, &scheme, 1, |s, t| *ap.weight(s, t));
        // Only the 2 + 2 intra-component ordered pairs count.
        assert_eq!(report.pairs, 4);
        assert!(report.all_within_bound());
    }
}
