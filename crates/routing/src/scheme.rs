//! The routing-function model (paper §2.3): headers, labels, local routing
//! functions and their simulation.

use std::fmt;

use cpr_graph::{Graph, NodeId, Port};

/// One forwarding decision of a local routing function `R_u(h)`.
#[derive(Clone, Debug, PartialEq)]
pub enum RouteAction<H> {
    /// The packet has reached its destination.
    Deliver,
    /// Send the packet out of local `port` with a (possibly rewritten)
    /// header.
    Forward {
        /// The local port at the current node.
        port: Port,
        /// The header the packet carries to the next hop.
        header: H,
    },
}

/// Why a simulated routing attempt failed. Any of these at a reachable
/// pair is a bug in the scheme under test — the simulator surfaces rather
/// than masks them.
#[derive(Clone, Debug, PartialEq)]
pub enum RouteError {
    /// The local function named a port the node does not have.
    BadPort {
        /// Node that made the decision.
        at: NodeId,
        /// The invalid port.
        port: Port,
    },
    /// The packet exceeded the hop budget (a forwarding loop).
    HopBudgetExhausted {
        /// Nodes visited, in order.
        visited: Vec<NodeId>,
    },
    /// The scheme declared the pair unroutable (e.g. disconnected).
    Unroutable {
        /// Source of the attempted route.
        source: NodeId,
        /// Target of the attempted route.
        target: NodeId,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::BadPort { at, port } => {
                write!(f, "node {at} forwarded on nonexistent port {port}")
            }
            RouteError::HopBudgetExhausted { visited } => {
                write!(f, "forwarding loop after {} hops", visited.len())
            }
            RouteError::Unroutable { source, target } => {
                write!(f, "scheme declared {source} → {target} unroutable")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A compact routing scheme: node labels, headers, local routing functions
/// and honest bit accounting (paper §2.3 and Definition 2).
///
/// The packet's route is produced by iterating [`step`](Self::step):
/// starting from [`initial_header`](Self::initial_header), the node the
/// packet currently sits at evaluates its local function on the header and
/// either delivers or forwards on a local port with a rewritten header.
/// Nothing but the header and the local state may influence the decision —
/// this is the oblivious-routing model of Fraigniaud–Gavoille.
pub trait RoutingScheme {
    /// The packet header type. Encodable on
    /// [`header_bits`](Self::header_bits) bits.
    ///
    /// `Eq + Hash` is required so header states can be *interned*: the
    /// `cpr-plane` forwarding-plane compiler enumerates the reachable
    /// `(node, header)` states of a scheme and flattens them into packed
    /// transition arrays, which needs headers as map keys.
    type Header: Clone + fmt::Debug + Eq + std::hash::Hash;

    /// Human-readable scheme name for reports.
    fn name(&self) -> String;

    /// Number of nodes the scheme was built for.
    fn node_count(&self) -> usize;

    /// The header a source attaches to a packet for `target`. The source
    /// knows only the target's *label* (address), mirroring how a host
    /// addresses a packet; schemes whose labels carry routing data encode
    /// that data here.
    ///
    /// Returns `None` when the scheme knows the pair to be unroutable.
    fn initial_header(&self, source: NodeId, target: NodeId) -> Option<Self::Header>;

    /// The local routing function `R_u(h)`.
    fn step(&self, at: NodeId, header: &Self::Header) -> RouteAction<Self::Header>;

    /// Honest encoding size of node `v`'s local routing function, in bits
    /// (Definition 2's `M_A(R, u)`).
    fn local_memory_bits(&self, v: NodeId) -> u64;

    /// Size of node `v`'s label (address) in bits. The model requires
    /// `O(log n)` labels.
    fn label_bits(&self, v: NodeId) -> u64;

    /// Maximum header size in bits.
    fn header_bits(&self) -> u64;
}

/// Statistics of a scheme's memory footprint across all nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct MemoryReport {
    /// Scheme name.
    pub scheme: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Definition 2's `max_u M(R, u)`: the worst node's local memory.
    pub max_local_bits: u64,
    /// Total bits across all nodes.
    pub total_bits: u64,
    /// Largest node label.
    pub max_label_bits: u64,
    /// Maximum header size.
    pub header_bits: u64,
}

impl MemoryReport {
    /// Measures `scheme`.
    pub fn measure<S: RoutingScheme>(scheme: &S) -> Self {
        let nodes = scheme.node_count();
        let mut max_local = 0;
        let mut total = 0;
        let mut max_label = 0;
        for v in 0..nodes {
            let bits = scheme.local_memory_bits(v);
            max_local = max_local.max(bits);
            total += bits;
            max_label = max_label.max(scheme.label_bits(v));
        }
        MemoryReport {
            scheme: scheme.name(),
            nodes,
            max_local_bits: max_local,
            total_bits: total,
            max_label_bits: max_label,
            header_bits: scheme.header_bits(),
        }
    }

    /// Average local memory per node.
    pub fn avg_local_bits(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.total_bits as f64 / self.nodes as f64
        }
    }
}

impl fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={}, max {} bits/node, avg {:.1} bits/node, labels ≤ {} bits, headers ≤ {} bits",
            self.scheme,
            self.nodes,
            self.max_local_bits,
            self.avg_local_bits(),
            self.max_label_bits,
            self.header_bits
        )
    }
}

/// Simulates routing one packet from `source` to `target` and returns the
/// node sequence it traversed (`[source, …, target]`).
///
/// The hop budget is `4·n`: any correct compact scheme in this workspace
/// routes within `3 × diameter + O(1)` hops, so exceeding the budget means
/// a forwarding loop.
///
/// # Errors
///
/// Returns a [`RouteError`] if the scheme misroutes (bad port, loop) or
/// declares the pair unroutable.
pub fn route<S: RoutingScheme>(
    scheme: &S,
    graph: &Graph,
    source: NodeId,
    target: NodeId,
) -> Result<Vec<NodeId>, RouteError> {
    let mut header = match scheme.initial_header(source, target) {
        Some(h) => h,
        None => return Err(RouteError::Unroutable { source, target }),
    };
    let mut at = source;
    let budget = 4 * graph.node_count() + 4;
    // Routes are short — O(diameter), which is O(log n) on the random
    // graphs this workspace studies — so reserve a few multiples of
    // log₂ n instead of paying repeated doublings or a full `budget`
    // allocation per query.
    let guess = 4 * (usize::BITS - graph.node_count().leading_zeros()) as usize + 8;
    let mut visited = Vec::with_capacity(guess.min(budget + 1));
    visited.push(source);
    loop {
        match scheme.step(at, &header) {
            RouteAction::Deliver => return Ok(visited),
            RouteAction::Forward { port, header: h } => {
                let (next, _) = graph
                    .neighbor_at(at, port)
                    .ok_or(RouteError::BadPort { at, port })?;
                at = next;
                header = h;
                visited.push(at);
                if visited.len() > budget {
                    return Err(RouteError::HopBudgetExhausted { visited });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy scheme for exercising the simulator: headers are bare target
    /// ids, every node forwards on port 0 until the target is reached.
    /// Correct only on a path graph labelled left to right.
    struct AlwaysPortZero {
        n: usize,
    }

    impl RoutingScheme for AlwaysPortZero {
        type Header = NodeId;

        fn name(&self) -> String {
            "always-port-zero".into()
        }

        fn node_count(&self) -> usize {
            self.n
        }

        fn initial_header(&self, _s: NodeId, t: NodeId) -> Option<NodeId> {
            Some(t)
        }

        fn step(&self, at: NodeId, header: &NodeId) -> RouteAction<NodeId> {
            if at == *header {
                RouteAction::Deliver
            } else {
                RouteAction::Forward {
                    port: if at == 0 { 0 } else { 1 },
                    header: *header,
                }
            }
        }

        fn local_memory_bits(&self, _v: NodeId) -> u64 {
            1
        }

        fn label_bits(&self, _v: NodeId) -> u64 {
            crate::bits::node_id_bits(self.n)
        }

        fn header_bits(&self) -> u64 {
            crate::bits::node_id_bits(self.n)
        }
    }

    #[test]
    fn simulator_follows_ports() {
        let g = cpr_graph::generators::path(4);
        let s = AlwaysPortZero { n: 4 };
        // Port 1 of an interior path node leads right.
        assert_eq!(route(&s, &g, 0, 3).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(route(&s, &g, 2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn simulator_detects_loops() {
        let g = cpr_graph::generators::cycle(4);
        let s = AlwaysPortZero { n: 4 };
        // On a cycle the fixed-port walker, aimed at an unreachable pseudo
        // target id, loops.
        let err = route(&s, &g, 0, 99).unwrap_err();
        assert!(matches!(err, RouteError::HopBudgetExhausted { .. }));
        assert!(err.to_string().contains("loop"));
    }

    #[test]
    fn simulator_detects_bad_ports() {
        let g = cpr_graph::generators::path(2);
        struct BadPort;
        impl RoutingScheme for BadPort {
            type Header = ();
            fn name(&self) -> String {
                "bad".into()
            }
            fn node_count(&self) -> usize {
                2
            }
            fn initial_header(&self, _: NodeId, _: NodeId) -> Option<()> {
                Some(())
            }
            fn step(&self, _: NodeId, _: &()) -> RouteAction<()> {
                RouteAction::Forward {
                    port: 7,
                    header: (),
                }
            }
            fn local_memory_bits(&self, _: NodeId) -> u64 {
                0
            }
            fn label_bits(&self, _: NodeId) -> u64 {
                1
            }
            fn header_bits(&self) -> u64 {
                0
            }
        }
        let err = route(&BadPort, &g, 0, 1).unwrap_err();
        assert_eq!(err, RouteError::BadPort { at: 0, port: 7 },);
    }

    #[test]
    fn memory_report_aggregates() {
        let s = AlwaysPortZero { n: 4 };
        let r = MemoryReport::measure(&s);
        assert_eq!(r.max_local_bits, 1);
        assert_eq!(r.total_bits, 4);
        assert_eq!(r.avg_local_bits(), 1.0);
        assert!(r.to_string().contains("always-port-zero"));
    }
}
