//! Destination-based routing tables (paper Observation 1).
//!
//! The trivial routing function `R̂` for a regular algebra: each node keeps
//! one entry — a local port — per destination, `O(n log d)` bits. By
//! Proposition 2 this is *correct exactly for regular algebras*: the
//! preferred paths from each node form a tree, and by monotonicity +
//! isotonicity the next hop's own preferred path continues the route.

use cpr_algebra::RoutingAlgebra;
use cpr_graph::{EdgeWeights, Graph, NodeId, Port};
use cpr_paths::dijkstra;

use crate::bits::{node_id_bits, port_bits};
use crate::scheme::{RouteAction, RoutingScheme};

/// Destination-indexed routing tables: `table[u][t]` is the local port at
/// `u` of the first edge along the preferred `u → t` path.
///
/// # Examples
///
/// ```
/// use cpr_algebra::policies::ShortestPath;
/// use cpr_graph::{generators, EdgeWeights};
/// use cpr_routing::{route, DestTable};
///
/// let g = generators::cycle(5);
/// let w = EdgeWeights::uniform(&g, 1u64);
/// let scheme = DestTable::build(&g, &w, &ShortestPath);
/// assert_eq!(route(&scheme, &g, 0, 2).unwrap(), vec![0, 1, 2]);
/// ```
#[derive(Clone, Debug)]
pub struct DestTable {
    name: String,
    table: Vec<Vec<Option<Port>>>,
    degree: Vec<usize>,
}

impl DestTable {
    /// Builds the tables by running the generalized Dijkstra from every
    /// *destination* — in parallel across destinations (`CPR_THREADS`).
    /// The algebra must be regular for the result to implement the
    /// policy (Proposition 2).
    ///
    /// Every node's port towards `t` is its parent edge in the one
    /// in-tree rooted at `t`, never a hop of its own source tree. The
    /// distinction matters exactly when monotonicity is non-strict
    /// (widest-path, usable-path): equally-preferred cycles exist, and
    /// two source trees can break the tie in conflicting directions —
    /// node `u` preferring via `v` while `v` prefers via `u` — weaving
    /// a forwarding loop. Hops along one shared in-tree cannot cycle.
    /// Path weights are direction-independent here because every
    /// Table 1 carrier composes commutatively over undirected edges.
    pub fn build<A: RoutingAlgebra + Sync>(
        graph: &Graph,
        weights: &EdgeWeights<A::W>,
        alg: &A,
    ) -> Self
    where
        A::W: Send + Sync,
    {
        let n = graph.node_count();
        let per_target = cpr_core::par::par_map_indexed(n, |t| {
            let tree = dijkstra(graph, weights, alg, t);
            graph
                .nodes()
                .map(|u| {
                    tree.parent(u).map(|(parent, _)| {
                        graph
                            .port_towards(u, parent)
                            .expect("tree edge must exist in the graph")
                    })
                })
                .collect::<Vec<Option<Port>>>()
        });
        let table = (0..n)
            .map(|u| (0..n).map(|t| per_target[t][u]).collect())
            .collect();
        DestTable {
            name: format!("dest-table[{}]", alg.name()),
            table,
            degree: graph.nodes().map(|v| graph.degree(v)).collect(),
        }
    }

    /// Builds tables from precomputed first hops (`hops[u][t]`); used by
    /// schemes that compute paths with a non-Dijkstra solver.
    pub fn from_first_hops(name: String, hops: Vec<Vec<Option<Port>>>, degree: Vec<usize>) -> Self {
        assert_eq!(hops.len(), degree.len());
        DestTable {
            name,
            table: hops,
            degree,
        }
    }

    /// The port `u` uses towards `t`, if routable.
    pub fn port(&self, u: NodeId, t: NodeId) -> Option<Port> {
        self.table[u][t]
    }
}

impl RoutingScheme for DestTable {
    type Header = NodeId;

    fn name(&self) -> String {
        self.name.clone()
    }

    fn node_count(&self) -> usize {
        self.table.len()
    }

    fn initial_header(&self, source: NodeId, target: NodeId) -> Option<NodeId> {
        if source == target || self.table[source][target].is_some() {
            Some(target)
        } else {
            None
        }
    }

    fn step(&self, at: NodeId, header: &NodeId) -> RouteAction<NodeId> {
        let target = *header;
        if at == target {
            return RouteAction::Deliver;
        }
        match self.table[at][target] {
            Some(port) => RouteAction::Forward {
                port,
                header: target,
            },
            // A reachable pair always has an entry when the algebra is
            // regular; forwarding on port 0 here would mask scheme bugs,
            // so misroute loudly instead.
            None => RouteAction::Forward {
                port: usize::MAX,
                header: target,
            },
        }
    }

    fn local_memory_bits(&self, v: NodeId) -> u64 {
        // One port per *other* destination, stored as a dense array
        // indexed by destination id (so no keys are stored), plus one
        // reachability bit per destination.
        let entries = (self.table.len() - 1) as u64;
        entries * (port_bits(self.degree[v]) + 1)
    }

    fn label_bits(&self, _v: NodeId) -> u64 {
        node_id_bits(self.table.len())
    }

    fn header_bits(&self) -> u64 {
        node_id_bits(self.table.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{route, MemoryReport};
    use cpr_algebra::policies::{Capacity, ShortestPath, WidestPath};
    use cpr_algebra::{PathWeight, RoutingAlgebra};
    use cpr_graph::generators;
    use rand::SeedableRng;

    #[test]
    fn routes_all_pairs_on_random_graph_optimally() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(100);
        let g = generators::gnp_connected(30, 0.15, &mut rng);
        let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
        let scheme = DestTable::build(&g, &w, &ShortestPath);
        let ap = cpr_paths::AllPairs::compute(&g, &w, &ShortestPath);
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let path = route(&scheme, &g, s, t).unwrap();
                let got = w.path_weight(&ShortestPath, &g, &path);
                assert_eq!(
                    ShortestPath.compare_pw(&got, ap.weight(s, t)),
                    std::cmp::Ordering::Equal,
                    "suboptimal route {s} → {t}"
                );
            }
        }
    }

    #[test]
    fn routes_widest_paths() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        let g = generators::barabasi_albert(25, 2, &mut rng);
        let w = EdgeWeights::random(&g, &WidestPath, &mut rng);
        let scheme = DestTable::build(&g, &w, &WidestPath);
        let ap = cpr_paths::AllPairs::compute(&g, &w, &WidestPath);
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let path = route(&scheme, &g, s, t).unwrap();
                let got = w.path_weight(&WidestPath, &g, &path);
                assert_eq!(
                    WidestPath.compare_pw(&got, ap.weight(s, t)),
                    std::cmp::Ordering::Equal
                );
            }
        }
    }

    #[test]
    fn widest_path_tie_cycles_cannot_loop() {
        // Capacities drawn from a tiny range force equal-width ties all
        // over the graph. Widest-path is only non-strictly monotone, so
        // per-source trees can break such ties in conflicting
        // directions (u via v, v via u) and weave a forwarding loop —
        // the per-destination in-tree construction cannot. Every pair
        // must route without exhausting the hop budget, at the
        // preferred width.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x71E_100B);
        let g = generators::barabasi_albert(192, 2, &mut rng);
        let w = EdgeWeights::from_fn(&g, |e| {
            let (u, v) = g.endpoints(e);
            Capacity::new((u as u64 * 31 + v as u64) % 4 + 1).unwrap()
        });
        let scheme = DestTable::build(&g, &w, &WidestPath);
        let ap = cpr_paths::AllPairs::compute(&g, &w, &WidestPath);
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let path = route(&scheme, &g, s, t)
                    .unwrap_or_else(|e| panic!("{s} → {t} failed to route: {e:?}"));
                let got = w.path_weight(&WidestPath, &g, &path);
                assert_eq!(
                    WidestPath.compare_pw(&got, ap.weight(s, t)),
                    std::cmp::Ordering::Equal,
                    "{s} → {t}: delivered width diverges from preferred"
                );
            }
        }
    }

    #[test]
    fn unroutable_pairs_rejected_at_source() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let w = EdgeWeights::uniform(&g, 1u64);
        let scheme = DestTable::build(&g, &w, &ShortestPath);
        assert!(scheme.initial_header(0, 2).is_none());
        assert!(route(&scheme, &g, 0, 2).is_err());
    }

    #[test]
    fn memory_grows_linearly_in_n() {
        // Observation 1: Θ(n log d) — doubling n roughly doubles memory.
        let mut rng = rand::rngs::StdRng::seed_from_u64(102);
        let mut prev = 0u64;
        for n in [32usize, 64, 128] {
            let g = generators::gnp_connected(n, 0.1, &mut rng);
            let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
            let scheme = DestTable::build(&g, &w, &ShortestPath);
            let report = MemoryReport::measure(&scheme);
            assert!(report.max_local_bits > prev, "memory must grow with n");
            prev = report.max_local_bits;
        }
    }

    #[test]
    fn self_delivery() {
        let g = generators::path(3);
        let w = EdgeWeights::uniform(&g, 1u64);
        let scheme = DestTable::build(&g, &w, &ShortestPath);
        assert_eq!(route(&scheme, &g, 1, 1).unwrap(), vec![1]);
    }

    #[test]
    fn weight_of_unreachable_is_phi_sanity() {
        // Sanity-check the test helper itself.
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let w = EdgeWeights::uniform(&g, 1u64);
        assert_eq!(
            w.path_weight(&ShortestPath, &g, &[0, 2]),
            PathWeight::Infinite
        );
    }

    use cpr_graph::Graph;
}
