//! Bottleneck-class tables for shortest-widest path: an `O(n·(k + log k))`
//! upper bound for the paper's open question.
//!
//! §3.1 leaves open whether the `Ω(n)` bound for the non-isotone
//! `SW = W × S` is tight: "the only trivial routing function for `SW`
//! stores a separate routing table entry for each source-destination
//! pair, which needs `O(n² log d)` bits per router". This scheme improves
//! that trivial upper bound by exploiting the *decomposition* that also
//! powers the exact solver: an `SW`-preferred path is a cost-shortest
//! path inside the subgraph of edges with capacity at least the pair's
//! maximum bottleneck.
//!
//! Forwarding is therefore destination-based *per bottleneck class*: the
//! header carries `(target, class)` where `class` indexes the pair's
//! bottleneck among the `k ≤ m` distinct edge capacities; each node keeps
//! one destination table per class (cost-shortest on the filtered
//! subgraph — a regular computation, so hop-by-hop forwarding is sound
//! within a class), plus its own per-destination class index to
//! initialize headers. Local memory: `O(k·n·log d + n·log k)` bits —
//! sublinear in `n²` whenever the capacity diversity `k` is `o(n)`, which
//! answers the open question's *practical* face: the quadratic trivial
//! bound is not tight when capacities are coarse-grained (e.g. standard
//! link rates).

use cpr_algebra::policies::{Capacity, ShortestPath};
use cpr_graph::{EdgeWeights, Graph, NodeId, Port};
use cpr_paths::{dijkstra, SwWeight};

use crate::bits::{ceil_log2, node_id_bits, port_bits};
use crate::scheme::{RouteAction, RoutingScheme};

/// The header: the destination and its bottleneck-class index (an index
/// into the sorted list of distinct edge capacities).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SwHeader {
    /// The destination node.
    pub target: NodeId,
    /// Index of the pair's maximum bottleneck capacity.
    pub class: usize,
}

/// Destination-based-per-class routing tables for shortest-widest path.
/// See module docs.
///
/// # Examples
///
/// ```
/// use cpr_algebra::policies::Capacity;
/// use cpr_graph::{generators, EdgeWeights};
/// use cpr_routing::{route, SwClassTable};
///
/// let g = generators::cycle(5);
/// let w = EdgeWeights::from_fn(&g, |e| (Capacity::new(e as u64 + 1).unwrap(), 1));
/// let scheme = SwClassTable::build(&g, &w);
/// assert_eq!(route(&scheme, &g, 0, 3).unwrap().last(), Some(&3));
/// ```
#[derive(Clone, Debug)]
pub struct SwClassTable {
    n: usize,
    /// The distinct capacities, ascending; `classes[i]` is class `i`.
    classes: Vec<Capacity>,
    /// `tables[class][u][t]`: port at `u` towards `t` on the cost-shortest
    /// path within the class-`class` subgraph.
    tables: Vec<Vec<Vec<Option<Port>>>>,
    /// `class_of[s][t]`: the bottleneck class of the pair, stored at `s`.
    class_of: Vec<Vec<Option<usize>>>,
    degree: Vec<usize>,
}

impl SwClassTable {
    /// Builds the scheme: one widest-path Dijkstra per source for the
    /// class indices, one cost-Dijkstra per (class, source) for the
    /// tables.
    ///
    /// # Panics
    ///
    /// Panics if the weighting does not match the graph.
    pub fn build(graph: &Graph, weights: &EdgeWeights<SwWeight>) -> Self {
        let n = graph.node_count();
        assert_eq!(weights.len(), graph.edge_count(), "weighting mismatch");

        let mut classes: Vec<Capacity> = (0..graph.edge_count())
            .map(|e| weights.weight(e).0)
            .collect();
        classes.sort_unstable();
        classes.dedup();

        // Per-class filtered subgraphs and their destination tables.
        let mut tables = Vec::with_capacity(classes.len());
        for &b in &classes {
            // The subgraph shares node ids but NOT port numbers with the
            // host graph; first hops are mapped back through the host.
            let (sub, origin) = graph.filter_edges(|e, _| weights.weight(e).0 >= b);
            let sub_w =
                EdgeWeights::from_vec(&sub, origin.iter().map(|&e| weights.weight(e).1).collect());
            let per_source: Vec<Vec<Option<Port>>> = cpr_core::par::par_map_indexed(n, |s| {
                let tree = dijkstra(&sub, &sub_w, &ShortestPath, s);
                (0..n)
                    .map(|t| {
                        tree.first_hop(&sub, t).map(|(next, _)| {
                            graph
                                .port_towards(s, next)
                                .expect("subgraph edge exists in host")
                        })
                    })
                    .collect()
            });
            tables.push(per_source);
        }

        // Per-pair bottleneck classes from widest-path trees.
        let caps = EdgeWeights::from_vec(
            graph,
            (0..graph.edge_count())
                .map(|e| weights.weight(e).0)
                .collect(),
        );
        let class_of: Vec<Vec<Option<usize>>> = cpr_core::par::par_map_indexed(n, |s| {
            let widest = dijkstra(graph, &caps, &cpr_algebra::policies::WidestPath, s);
            (0..n)
                .map(|t| {
                    widest.weight(t).finite().map(|b| {
                        classes
                            .binary_search(b)
                            .expect("bottleneck is a distinct edge capacity")
                    })
                })
                .collect()
        });

        SwClassTable {
            n,
            classes,
            tables,
            class_of,
            degree: graph.nodes().map(|v| graph.degree(v)).collect(),
        }
    }

    /// Number of distinct capacity classes `k`.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

impl RoutingScheme for SwClassTable {
    type Header = SwHeader;

    fn name(&self) -> String {
        format!("sw-class-table[k={}]", self.classes.len())
    }

    fn node_count(&self) -> usize {
        self.n
    }

    fn initial_header(&self, source: NodeId, target: NodeId) -> Option<SwHeader> {
        if source == target {
            return Some(SwHeader { target, class: 0 });
        }
        self.class_of[source][target].map(|class| SwHeader { target, class })
    }

    fn step(&self, at: NodeId, header: &SwHeader) -> RouteAction<SwHeader> {
        if at == header.target {
            return RouteAction::Deliver;
        }
        match self.tables[header.class][at][header.target] {
            Some(port) => RouteAction::Forward {
                port,
                header: *header,
            },
            None => RouteAction::Forward {
                port: usize::MAX, // misroute loudly
                header: *header,
            },
        }
    }

    fn local_memory_bits(&self, v: NodeId) -> u64 {
        let k = self.classes.len() as u64;
        let per_class_entry = port_bits(self.degree[v]) + 1;
        let class_index = ceil_log2(k).max(1) as u64 + 1;
        // k per-class destination tables + the per-destination class map.
        k * (self.n as u64 - 1) * per_class_entry + (self.n as u64 - 1) * class_index
    }

    fn label_bits(&self, _v: NodeId) -> u64 {
        node_id_bits(self.n)
    }

    fn header_bits(&self) -> u64 {
        node_id_bits(self.n) + ceil_log2(self.classes.len() as u64).max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{route, MemoryReport};
    use crate::SrcDestTable;
    use cpr_algebra::{policies, RoutingAlgebra};
    use cpr_graph::generators;
    use cpr_paths::shortest_widest_exact;
    use rand::SeedableRng;

    #[test]
    fn routes_are_exactly_shortest_widest() {
        let sw = policies::shortest_widest();
        let mut rng = rand::rngs::StdRng::seed_from_u64(800);
        for trial in 0..4 {
            let g = generators::gnp_connected(18, 0.25, &mut rng);
            let w = EdgeWeights::random(&g, &sw, &mut rng);
            let scheme = SwClassTable::build(&g, &w);
            for s in g.nodes() {
                let truth = shortest_widest_exact(&g, &w, s);
                for t in g.nodes() {
                    if s == t {
                        continue;
                    }
                    let path = route(&scheme, &g, s, t)
                        .unwrap_or_else(|e| panic!("trial {trial} {s}→{t}: {e}"));
                    let got = w.path_weight(&sw, &g, &path);
                    assert_eq!(
                        sw.compare_pw(&got, truth.weight(t)),
                        std::cmp::Ordering::Equal,
                        "trial {trial}: {s} → {t} suboptimal"
                    );
                }
            }
        }
    }

    #[test]
    fn beats_pair_tables_when_capacities_are_coarse() {
        // Few distinct capacities (k = 3) on a moderately large graph:
        // the class tables are far below the Õ(n²) pair tables.
        let sw = policies::shortest_widest();
        let mut rng = rand::rngs::StdRng::seed_from_u64(801);
        let g = generators::gnp_connected(48, 0.12, &mut rng);
        let w = EdgeWeights::from_fn(&g, |e| {
            (
                policies::Capacity::new([10, 100, 1000][e % 3]).unwrap(),
                (e as u64 % 7) + 1,
            )
        });
        let class_scheme = SwClassTable::build(&g, &w);
        assert_eq!(class_scheme.class_count(), 3);
        let pair_scheme = SrcDestTable::build(&g, &sw.name(), |s| {
            let r = shortest_widest_exact(&g, &w, s);
            g.nodes().map(|t| r.path_to(t).map(<[_]>::to_vec)).collect()
        });
        let class_mem = MemoryReport::measure(&class_scheme);
        let pair_mem = MemoryReport::measure(&pair_scheme);
        assert!(
            class_mem.max_local_bits * 3 < pair_mem.max_local_bits,
            "class tables ({}) should be far below pair tables ({})",
            class_mem.max_local_bits,
            pair_mem.max_local_bits
        );
    }

    #[test]
    fn class_routes_agree_with_pair_tables_on_weights() {
        let sw = policies::shortest_widest();
        let mut rng = rand::rngs::StdRng::seed_from_u64(802);
        let g = generators::barabasi_albert(20, 2, &mut rng);
        let w = EdgeWeights::random(&g, &sw, &mut rng);
        let class_scheme = SwClassTable::build(&g, &w);
        let pair_scheme = SrcDestTable::build(&g, &sw.name(), |s| {
            let r = shortest_widest_exact(&g, &w, s);
            g.nodes().map(|t| r.path_to(t).map(<[_]>::to_vec)).collect()
        });
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let a = route(&class_scheme, &g, s, t).unwrap();
                let b = route(&pair_scheme, &g, s, t).unwrap();
                assert_eq!(
                    sw.compare_pw(&w.path_weight(&sw, &g, &a), &w.path_weight(&sw, &g, &b)),
                    std::cmp::Ordering::Equal
                );
            }
        }
    }

    #[test]
    fn unreachable_pairs_rejected() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let w = EdgeWeights::from_vec(&g, vec![(Capacity::new(5).unwrap(), 2)]);
        let scheme = SwClassTable::build(&g, &w);
        assert!(scheme.initial_header(0, 2).is_none());
        assert!(route(&scheme, &g, 0, 2).is_err());
        assert_eq!(route(&scheme, &g, 0, 1).unwrap(), vec![0, 1]);
    }

    #[test]
    fn single_class_degenerates_to_shortest_path() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(803);
        let g = generators::gnp_connected(15, 0.3, &mut rng);
        let w = EdgeWeights::from_fn(&g, |e| (Capacity::new(7).unwrap(), (e as u64 % 5) + 1));
        let scheme = SwClassTable::build(&g, &w);
        assert_eq!(scheme.class_count(), 1);
        // With one capacity everywhere, SW = plain shortest path.
        let costs = EdgeWeights::from_fn(&g, |e| (e as u64 % 5) + 1);
        for s in g.nodes() {
            let tree = dijkstra(&g, &costs, &ShortestPath, s);
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let path = route(&scheme, &g, s, t).unwrap();
                let cost: u64 = path
                    .windows(2)
                    .map(|h| costs.weight(g.edge_between(h[0], h[1]).unwrap()))
                    .sum();
                assert_eq!(Some(&cost), tree.weight(t).finite());
            }
        }
    }
}
