//! The routing schemes: trivial tables, tree schemes, and the generalized
//! Cowen landmark scheme.

pub(crate) mod cowen;
pub(crate) mod dest_table;
pub(crate) mod interval_tree;
pub(crate) mod label_swapping;
pub(crate) mod spanning_tree;
pub(crate) mod src_dest_table;
pub(crate) mod sw_class_table;
pub(crate) mod tz_tree;
