//! The generalized Cowen stretch-3 compact routing scheme (paper §4.1,
//! Theorem 3).
//!
//! For a **delimited regular** algebra, Cowen's landmark scheme carries
//! over verbatim: pick a landmark set `L`, let every node `u` store routes
//! towards its *cluster* `C(u)` and all landmarks, and address node `v` by
//! the triple `(v, l_v, port at l_v towards v)`. In-cluster packets travel
//! preferred paths; everything else detours through the target's landmark,
//! and Lemma 4 bounds the detour by the algebraic stretch
//! `w(p) ⪯ (w(p*))³`.
//!
//! Balls use the paper's non-strict comparison,
//! `B(u) = {v : w(p*_{u,v}) ⪯ w(p*_{u,l_u})}` — which keeps the scheme
//! correct for *every* regular algebra (the suffix of a preferred path is
//! `⪯` the whole path by monotonicity, so clusters absorb the whole
//! landmark-to-target path). The flip side, faithfully reproduced here: in
//! a selective algebra, where all path weights tie, clusters can grow to
//! `Θ(n)` — the paper's remedy is that selective algebras should use tree
//! routing (Theorem 1) instead, with stretch 1.

use std::cmp::Ordering;

use cpr_algebra::{PathWeight, RoutingAlgebra};
use cpr_graph::{EdgeWeights, Graph, NodeId, Port};
use cpr_paths::{dijkstra, PreferredTree};
use rand::Rng;

use crate::bits::{node_id_bits, port_bits};
use crate::scheme::{RouteAction, RoutingScheme};

/// How the landmark set `L` is chosen.
#[derive(Clone, Debug)]
pub enum LandmarkStrategy {
    /// Use exactly this set.
    Custom(Vec<NodeId>),
    /// Thorup–Zwick random sampling: include each node with probability
    /// `√(ln n / n)`, retrying with a boosted probability while some
    /// cluster exceeds `4·√(n ln n)`; falls back to greedy augmentation
    /// after `attempts` tries. Expected memory `Õ(√n)`.
    TzRandom {
        /// Sampling rounds before falling back to greedy augmentation.
        attempts: u32,
    },
    /// Deterministic greedy: repeatedly promote the node with the largest
    /// cluster to a landmark until every cluster is at most the threshold
    /// (default `2·√(n ln n)`).
    GreedyCluster {
        /// Cluster-size target; `None` uses the default.
        threshold: Option<usize>,
    },
}

/// The Cowen label of a node: `(v, l_v, port at l_v towards v)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CowenLabel {
    /// The node itself.
    pub node: NodeId,
    /// Its landmark (itself, for landmarks).
    pub landmark: NodeId,
    /// The port at the landmark on the preferred path towards `node`
    /// (`None` for landmarks addressing themselves).
    pub landmark_port: Option<Port>,
}

/// The generalized Cowen scheme. See module docs.
///
/// # Examples
///
/// ```
/// use cpr_algebra::policies::ShortestPath;
/// use cpr_graph::{generators, EdgeWeights};
/// use cpr_routing::{route, CowenScheme, LandmarkStrategy};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let g = generators::gnp_connected(40, 0.12, &mut rng);
/// let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
/// let scheme = CowenScheme::build(
///     &g, &w, &ShortestPath,
///     LandmarkStrategy::TzRandom { attempts: 4 },
///     &mut rng,
/// );
/// assert_eq!(route(&scheme, &g, 0, 33).unwrap().last(), Some(&33));
/// ```
#[derive(Clone, Debug)]
pub struct CowenScheme {
    name: String,
    n: usize,
    landmarks: Vec<NodeId>,
    labels: Vec<CowenLabel>,
    /// Sorted `(destination, port)` entries per node: cluster ∪ landmarks.
    tables: Vec<Vec<(NodeId, Port)>>,
    degree: Vec<usize>,
    /// Whether each (implicitly connected) node can reach each other; kept
    /// per pair-free: unreachable targets are detected by a missing label
    /// port and missing table entries.
    reachable_from_landmark: Vec<bool>,
}

impl CowenScheme {
    /// Builds the scheme: all-pairs preferred trees, landmark selection,
    /// balls, clusters, tables and labels.
    ///
    /// The algebra must be delimited and regular for the Theorem 3
    /// guarantees; the scheme is still *constructed* otherwise so that
    /// experiments can observe exactly how the guarantees fail.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or a custom landmark set is empty or
    /// out of bounds.
    pub fn build<A: RoutingAlgebra + Sync, R: Rng + ?Sized>(
        graph: &Graph,
        weights: &EdgeWeights<A::W>,
        alg: &A,
        strategy: LandmarkStrategy,
        rng: &mut R,
    ) -> Self
    where
        A::W: Send + Sync,
    {
        let n = graph.node_count();
        assert!(n > 0, "graph must be non-empty");
        // The all-pairs trees dominate build time and are embarrassingly
        // parallel; landmark selection stays serial because it draws from
        // the caller's rng.
        let trees: Vec<PreferredTree<A::W>> =
            cpr_core::par::par_map_indexed(n, |s| dijkstra(graph, weights, alg, s));

        let landmarks = match strategy {
            LandmarkStrategy::Custom(set) => {
                assert!(!set.is_empty(), "landmark set must be non-empty");
                assert!(set.iter().all(|&l| l < n), "landmark out of bounds");
                let mut set = set;
                set.sort_unstable();
                set.dedup();
                set
            }
            LandmarkStrategy::TzRandom { attempts } => {
                select_tz_random(alg, &trees, n, attempts, rng)
            }
            LandmarkStrategy::GreedyCluster { threshold } => {
                let threshold = threshold.unwrap_or_else(|| default_threshold(n));
                select_greedy(alg, &trees, n, threshold)
            }
        };

        let (landmark_of, clusters) = clusters_for(alg, &trees, n, &landmarks);

        // Labels.
        let labels: Vec<CowenLabel> = (0..n)
            .map(|v| {
                let l = landmark_of[v].unwrap_or(v);
                let landmark_port = if l == v {
                    None
                } else {
                    trees[l].first_hop(graph, v).map(|(_, port)| port)
                };
                CowenLabel {
                    node: v,
                    landmark: l,
                    landmark_port,
                }
            })
            .collect();

        // Tables: cluster ∪ landmarks, first hop along own preferred path.
        let mut tables: Vec<Vec<(NodeId, Port)>> = Vec::with_capacity(n);
        for u in 0..n {
            let mut targets: Vec<NodeId> = clusters[u]
                .iter()
                .copied()
                .chain(landmarks.iter().copied())
                .filter(|&t| t != u)
                .collect();
            targets.sort_unstable();
            targets.dedup();
            let entries = targets
                .into_iter()
                .filter_map(|t| trees[u].first_hop(graph, t).map(|(_, port)| (t, port)))
                .collect();
            tables.push(entries);
        }

        let reachable_from_landmark = (0..n)
            .map(|v| labels[v].landmark == v || labels[v].landmark_port.is_some())
            .collect();

        CowenScheme {
            name: format!("cowen[{}]", alg.name()),
            n,
            landmarks,
            labels,
            tables,
            degree: graph.nodes().map(|v| graph.degree(v)).collect(),
            reachable_from_landmark,
        }
    }

    /// The selected landmark set (sorted).
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// The label of `v`.
    pub fn label(&self, v: NodeId) -> &CowenLabel {
        &self.labels[v]
    }

    /// Number of routing-table entries at `v` (cluster + landmarks).
    pub fn table_len(&self, v: NodeId) -> usize {
        self.tables[v].len()
    }

    fn lookup(&self, u: NodeId, t: NodeId) -> Option<Port> {
        self.tables[u]
            .binary_search_by_key(&t, |&(id, _)| id)
            .ok()
            .map(|ix| self.tables[u][ix].1)
    }
}

impl RoutingScheme for CowenScheme {
    type Header = CowenLabel;

    fn name(&self) -> String {
        self.name.clone()
    }

    fn node_count(&self) -> usize {
        self.n
    }

    fn initial_header(&self, source: NodeId, target: NodeId) -> Option<CowenLabel> {
        if source != target && !self.reachable_from_landmark[target] {
            // The landmark cannot reach the target: disconnected pair
            // (under global reachability this never triggers).
            self.lookup(source, target)?;
        }
        Some(self.labels[target].clone())
    }

    fn step(&self, at: NodeId, header: &CowenLabel) -> RouteAction<CowenLabel> {
        let t = header.node;
        if at == t {
            return RouteAction::Deliver;
        }
        if let Some(port) = self.lookup(at, t) {
            return RouteAction::Forward {
                port,
                header: header.clone(),
            };
        }
        if at == header.landmark {
            // The label carries the first hop from the landmark.
            let port = header.landmark_port.unwrap_or(usize::MAX);
            return RouteAction::Forward {
                port,
                header: header.clone(),
            };
        }
        // Head for the target's landmark (always in every table).
        let port = self.lookup(at, header.landmark).unwrap_or(usize::MAX);
        RouteAction::Forward {
            port,
            header: header.clone(),
        }
    }

    fn local_memory_bits(&self, v: NodeId) -> u64 {
        let entry = node_id_bits(self.n) + port_bits(self.degree[v]);
        self.tables[v].len() as u64 * entry
    }

    fn label_bits(&self, v: NodeId) -> u64 {
        // (v, l_v, port at l_v): the paper's 3 log n.
        let l = self.labels[v].landmark;
        2 * node_id_bits(self.n) + port_bits(self.degree[l].max(2))
    }

    fn header_bits(&self) -> u64 {
        (0..self.n).map(|v| self.label_bits(v)).max().unwrap_or(0)
    }
}

/// Default cluster-size target: `2·√(n ln n)`, the knee of the
/// table-size/landmark-count trade-off.
fn default_threshold(n: usize) -> usize {
    let nf = n as f64;
    (2.0 * (nf * nf.ln().max(1.0)).sqrt()).ceil() as usize
}

/// Computes, for the given landmark set, each node's preferred landmark
/// and each node's cluster `C(u) = {v : u ∈ B(v)}` with the paper's
/// non-strict balls `B(v) = {u : w(p*_{v,u}) ⪯ w(p*_{v,l_v})}`.
fn clusters_for<A: RoutingAlgebra>(
    alg: &A,
    trees: &[PreferredTree<A::W>],
    n: usize,
    landmarks: &[NodeId],
) -> (Vec<Option<NodeId>>, Vec<Vec<NodeId>>) {
    let mut landmark_of: Vec<Option<NodeId>> = vec![None; n];
    for v in 0..n {
        let mut best: Option<(NodeId, &PathWeight<A::W>)> = None;
        for &l in landmarks {
            if l == v {
                // Own landmark: the empty path beats everything; stop.
                landmark_of[v] = Some(v);
                break;
            }
            let w = trees[v].weight(l);
            if w.is_infinite() {
                continue;
            }
            best = match best {
                None => Some((l, w)),
                Some((bl, bw)) => {
                    if alg.compare_pw(w, bw) == Ordering::Less {
                        Some((l, w))
                    } else {
                        Some((bl, bw))
                    }
                }
            };
        }
        if landmark_of[v].is_none() {
            landmark_of[v] = best.map(|(l, _)| l);
        }
    }

    let mut clusters: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for v in 0..n {
        let Some(lv) = landmark_of[v] else { continue };
        if lv == v {
            // Landmarks have empty balls: nothing is preferred over the
            // trivial path to themselves.
            continue;
        }
        let dv = trees[v].weight(lv);
        for u in 0..n {
            if u == v {
                continue;
            }
            let w = trees[v].weight(u);
            if w.is_finite() && alg.compare_pw(w, dv) != Ordering::Greater {
                clusters[u].push(v); // u ∈ B(v) ⇒ v ∈ C(u)
            }
        }
    }
    (landmark_of, clusters)
}

fn max_cluster(clusters: &[Vec<NodeId>]) -> usize {
    clusters.iter().map(Vec::len).max().unwrap_or(0)
}

fn select_tz_random<A: RoutingAlgebra, R: Rng + ?Sized>(
    alg: &A,
    trees: &[PreferredTree<A::W>],
    n: usize,
    attempts: u32,
    rng: &mut R,
) -> Vec<NodeId> {
    let nf = n as f64;
    let mut p = (nf.ln().max(1.0) / nf).sqrt().min(1.0);
    let accept = 4.0 * (nf * nf.ln().max(1.0)).sqrt();
    for _ in 0..attempts.max(1) {
        let mut landmarks: Vec<NodeId> = (0..n).filter(|_| rng.gen_bool(p)).collect();
        if landmarks.is_empty() {
            landmarks.push(rng.gen_range(0..n));
        }
        let (_, clusters) = clusters_for(alg, trees, n, &landmarks);
        if (max_cluster(&clusters) as f64) <= accept {
            return landmarks;
        }
        p = (p * 1.5).min(1.0);
    }
    // Fall back to deterministic augmentation.
    select_greedy(alg, trees, n, default_threshold(n))
}

fn select_greedy<A: RoutingAlgebra>(
    alg: &A,
    trees: &[PreferredTree<A::W>],
    n: usize,
    threshold: usize,
) -> Vec<NodeId> {
    // Seed with node 0 (deterministic); grow until clusters are small.
    // A landmark's own cluster shrinks only indirectly (other nodes' balls
    // tighten as their landmark distance drops), so candidates are always
    // non-landmarks; if every node is promoted, stop regardless.
    let mut landmarks: Vec<NodeId> = vec![0];
    loop {
        let (_, clusters) = clusters_for(alg, trees, n, &landmarks);
        let worst = clusters
            .iter()
            .enumerate()
            .filter(|(u, _)| landmarks.binary_search(u).is_err())
            .map(|(u, c)| (u, c.len()))
            .max_by_key(|&(u, len)| (len, std::cmp::Reverse(u)));
        match worst {
            Some((u, size)) if size > threshold && landmarks.len() < n => {
                landmarks.push(u);
                landmarks.sort_unstable();
            }
            _ => return landmarks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{route, MemoryReport};
    use cpr_algebra::policies::{self, ShortestPath};
    use cpr_algebra::{check_stretch, StretchVerdict};
    use cpr_graph::generators;
    use cpr_paths::AllPairs;
    use rand::SeedableRng;

    fn verify_stretch3<A>(
        g: &Graph,
        w: &EdgeWeights<A::W>,
        alg: &A,
        scheme: &CowenScheme,
    ) -> (usize, usize)
    where
        A: RoutingAlgebra + Sync,
        A::W: Send + Sync,
    {
        let ap = AllPairs::compute(g, w, alg);
        let mut pairs = 0;
        let mut optimal = 0;
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let path = route(scheme, g, s, t).unwrap();
                let got = w.path_weight(alg, g, &path);
                let verdict = check_stretch(alg, &got, ap.weight(s, t), 3);
                assert_eq!(
                    verdict,
                    StretchVerdict::Within,
                    "stretch-3 violated {s} → {t}: got {got:?} vs {:?}",
                    ap.weight(s, t)
                );
                pairs += 1;
                if alg.compare_pw(&got, ap.weight(s, t)) == Ordering::Equal {
                    optimal += 1;
                }
            }
        }
        (pairs, optimal)
    }

    #[test]
    fn stretch3_for_shortest_path_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(600);
        for trial in 0..3 {
            let g = generators::gnp_connected(30, 0.12, &mut rng);
            let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
            let scheme = CowenScheme::build(
                &g,
                &w,
                &ShortestPath,
                LandmarkStrategy::TzRandom { attempts: 4 },
                &mut rng,
            );
            let (pairs, _) = verify_stretch3(&g, &w, &ShortestPath, &scheme);
            assert!(pairs > 0, "trial {trial} routed no pairs");
        }
    }

    #[test]
    fn stretch3_for_widest_shortest() {
        // WS is regular and delimited: Theorem 3 applies.
        let ws = policies::widest_shortest();
        let mut rng = rand::rngs::StdRng::seed_from_u64(601);
        let g = generators::barabasi_albert(25, 2, &mut rng);
        let w = EdgeWeights::random(&g, &ws, &mut rng);
        let scheme = CowenScheme::build(
            &g,
            &w,
            &ws,
            LandmarkStrategy::GreedyCluster { threshold: None },
            &mut rng,
        );
        verify_stretch3(&g, &w, &ws, &scheme);
    }

    #[test]
    fn stretch3_for_most_reliable_path() {
        let alg = policies::MostReliablePath;
        let mut rng = rand::rngs::StdRng::seed_from_u64(602);
        let g = generators::gnp_connected(20, 0.2, &mut rng);
        let w = EdgeWeights::random(&g, &alg, &mut rng);
        let scheme = CowenScheme::build(
            &g,
            &w,
            &alg,
            LandmarkStrategy::TzRandom { attempts: 4 },
            &mut rng,
        );
        verify_stretch3(&g, &w, &alg, &scheme);
    }

    #[test]
    fn custom_landmarks_respected() {
        let g = generators::cycle(8);
        let w = EdgeWeights::uniform(&g, 1u64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(603);
        let scheme = CowenScheme::build(
            &g,
            &w,
            &ShortestPath,
            LandmarkStrategy::Custom(vec![0, 4]),
            &mut rng,
        );
        assert_eq!(scheme.landmarks(), &[0, 4]);
        assert_eq!(scheme.label(4).landmark, 4);
        assert_eq!(scheme.label(4).landmark_port, None);
        verify_stretch3(&g, &w, &ShortestPath, &scheme);
    }

    #[test]
    fn landmark_labels_are_three_log_n() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(604);
        let g = generators::gnp_connected(64, 0.1, &mut rng);
        let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
        let scheme = CowenScheme::build(
            &g,
            &w,
            &ShortestPath,
            LandmarkStrategy::TzRandom { attempts: 4 },
            &mut rng,
        );
        let report = MemoryReport::measure(&scheme);
        // 3 log n = 3·6 = 18 bits; ports can add a few.
        assert!(report.max_label_bits <= 3 * 6 + 2);
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::with_nodes(1);
        let w = EdgeWeights::uniform(&g, 1u64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(605);
        let scheme = CowenScheme::build(
            &g,
            &w,
            &ShortestPath,
            LandmarkStrategy::GreedyCluster { threshold: None },
            &mut rng,
        );
        assert_eq!(route(&scheme, &g, 0, 0).unwrap(), vec![0]);
    }

    use cpr_graph::Graph;
}
