//! Label swapping (MPLS-style forwarding), the remaining entry of §2.3's
//! forwarding catalogue.
//!
//! The routing-function model explicitly covers "label swapping": a packet
//! carries a short opaque label; each node keeps a table mapping incoming
//! label → (outgoing port, outgoing label). Per-pair paths become
//! label-switched paths (LSPs), and the *header* shrinks from the
//! `(source, target)` pair (`2 log n` bits) to `log L` bits, where `L` is
//! the largest number of LSPs crossing any single node. The total state is
//! the same order as pair tables — labels trade header size for
//! provisioning, not memory, which is why the paper measures *local
//! memory* and not headers when classifying policies.

use cpr_graph::{Graph, NodeId, Port};

use crate::bits::{ceil_log2, node_id_bits};
use crate::scheme::{RouteAction, RoutingScheme};

/// One label-table entry: where to send the packet and which label it
/// carries next (`None`: deliver here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SwapEntry {
    port: Port,
    next_label: usize,
}

/// A label-swapping scheme provisioned from explicit per-pair paths.
///
/// # Examples
///
/// ```
/// use cpr_algebra::policies::ShortestPath;
/// use cpr_graph::{generators, EdgeWeights};
/// use cpr_paths::AllPairs;
/// use cpr_routing::{route, LabelSwapping};
///
/// let g = generators::cycle(5);
/// let w = EdgeWeights::uniform(&g, 1u64);
/// let ap = AllPairs::compute(&g, &w, &ShortestPath);
/// let scheme = LabelSwapping::provision(&g, "sp", |s, t| ap.path(s, t));
/// assert_eq!(route(&scheme, &g, 0, 3).unwrap(), vec![0, 4, 3]);
/// ```
#[derive(Clone, Debug)]
pub struct LabelSwapping {
    name: String,
    n: usize,
    /// `tables[v][label]`: the swap entry, or `None` for "deliver".
    tables: Vec<Vec<Option<SwapEntry>>>,
    /// The ingress label at the source for each `(s, t)` pair.
    ingress: Vec<Vec<Option<usize>>>,
}

impl LabelSwapping {
    /// Provisions one LSP per ordered pair from `path_of(s, t)` (must
    /// return the `[s, …, t]` node path, or `None` when unreachable).
    /// Labels are allocated per node, densely, in pair order —
    /// first-fit, exactly like an LDP-style allocator.
    ///
    /// # Panics
    ///
    /// Panics if a returned path is not a path of `graph` or has wrong
    /// endpoints.
    pub fn provision(
        graph: &Graph,
        policy_name: &str,
        path_of: impl Fn(NodeId, NodeId) -> Option<Vec<NodeId>> + Sync,
    ) -> Self {
        let n = graph.node_count();
        let mut tables: Vec<Vec<Option<SwapEntry>>> = vec![Vec::new(); n];
        let mut ingress = vec![vec![None; n]; n];
        // Path computation fans out per source; label allocation below is
        // first-fit in pair order and must stay serial to keep the exact
        // LDP-style label assignment.
        let paths: Vec<Vec<Option<Vec<NodeId>>>> =
            cpr_core::par::par_map_indexed(n, |s| (0..n).map(|t| path_of(s, t)).collect());
        for (s, row) in paths.into_iter().enumerate() {
            for (t, path) in row.into_iter().enumerate() {
                if s == t {
                    continue;
                }
                let Some(path) = path else { continue };
                assert_eq!(path.first(), Some(&s), "LSP must start at the source");
                assert_eq!(path.last(), Some(&t), "LSP must end at the target");
                // Allocate labels back to front: the egress node needs a
                // label whose entry says "deliver".
                let mut next_label = {
                    let label = tables[t].len();
                    tables[t].push(None); // deliver
                    label
                };
                for hop in path.windows(2).rev() {
                    let port = graph
                        .port_towards(hop[0], hop[1])
                        .expect("LSP hop must be an edge");
                    let label = tables[hop[0]].len();
                    tables[hop[0]].push(Some(SwapEntry { port, next_label }));
                    next_label = label;
                }
                ingress[s][t] = Some(next_label);
            }
        }
        LabelSwapping {
            name: format!("label-swapping[{policy_name}]"),
            n,
            tables,
            ingress,
        }
    }

    /// The largest label table at any node (= LSPs crossing it).
    pub fn max_table_len(&self) -> usize {
        self.tables.iter().map(Vec::len).max().unwrap_or(0)
    }
}

impl RoutingScheme for LabelSwapping {
    /// The current label.
    type Header = usize;

    fn name(&self) -> String {
        self.name.clone()
    }

    fn node_count(&self) -> usize {
        self.n
    }

    fn initial_header(&self, source: NodeId, target: NodeId) -> Option<usize> {
        if source == target {
            // The trivial LSP: deliver immediately; allocate no label.
            // Use a sentinel the step function understands.
            return Some(usize::MAX);
        }
        self.ingress[source][target]
    }

    fn step(&self, at: NodeId, header: &usize) -> RouteAction<usize> {
        if *header == usize::MAX {
            return RouteAction::Deliver;
        }
        match self.tables[at].get(*header) {
            Some(Some(entry)) => RouteAction::Forward {
                port: entry.port,
                header: entry.next_label,
            },
            Some(None) => RouteAction::Deliver,
            None => RouteAction::Forward {
                port: usize::MAX, // misroute loudly
                header: *header,
            },
        }
    }

    fn local_memory_bits(&self, v: NodeId) -> u64 {
        // Each entry: a port and a next label, plus one deliver flag; the
        // incoming label is the table index (not stored).
        let label_bits = ceil_log2(self.max_table_len() as u64).max(1) as u64;
        let port_bits = crate::bits::port_bits(self.n); // ports ≤ n − 1
        self.tables[v].len() as u64 * (1 + port_bits + label_bits)
    }

    fn label_bits(&self, _v: NodeId) -> u64 {
        node_id_bits(self.n)
    }

    fn header_bits(&self) -> u64 {
        ceil_log2(self.max_table_len() as u64).max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{route, MemoryReport};
    use crate::SrcDestTable;
    use cpr_algebra::policies::ShortestPath;

    use cpr_graph::{generators, EdgeWeights};
    use cpr_paths::AllPairs;
    use rand::SeedableRng;

    #[test]
    fn lsps_follow_the_provisioned_paths_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1400);
        let g = generators::gnp_connected(25, 0.18, &mut rng);
        let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
        let ap = AllPairs::compute(&g, &w, &ShortestPath);
        let scheme = LabelSwapping::provision(&g, "sp", |s, t| ap.path(s, t));
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    assert_eq!(route(&scheme, &g, s, t).unwrap(), vec![s]);
                    continue;
                }
                assert_eq!(
                    route(&scheme, &g, s, t).unwrap(),
                    ap.path(s, t).unwrap(),
                    "{s} → {t}"
                );
            }
        }
    }

    #[test]
    fn headers_are_labels_not_addresses() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1401);
        let g = generators::barabasi_albert(40, 2, &mut rng);
        let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
        let ap = AllPairs::compute(&g, &w, &ShortestPath);
        let ls = LabelSwapping::provision(&g, "sp", |s, t| ap.path(s, t));
        let pair_tables =
            SrcDestTable::build(&g, "sp", |s| g.nodes().map(|t| ap.path(s, t)).collect());
        let m_ls = MemoryReport::measure(&ls);
        let m_pair = MemoryReport::measure(&pair_tables);
        // The label header beats the (s, t) header…
        assert!(
            m_ls.header_bits < m_pair.header_bits,
            "labels ({}) must undercut address pairs ({})",
            m_ls.header_bits,
            m_pair.header_bits
        );
        // …while the state stays the same order (both are per-pair).
        assert!(m_ls.max_local_bits < 4 * m_pair.max_local_bits.max(1));
    }

    #[test]
    fn unreachable_pairs_have_no_lsp() {
        let g = cpr_graph::Graph::from_edges(3, [(0, 1)]).unwrap();
        let w = EdgeWeights::uniform(&g, 1u64);
        let ap = AllPairs::compute(&g, &w, &ShortestPath);
        let scheme = LabelSwapping::provision(&g, "sp", |s, t| ap.path(s, t));
        assert!(scheme.initial_header(0, 2).is_none());
        assert!(route(&scheme, &g, 0, 2).is_err());
        assert_eq!(route(&scheme, &g, 0, 1).unwrap(), vec![0, 1]);
    }

    #[test]
    fn label_density_matches_lsp_load() {
        // On a star, every LSP crosses the hub: hub table = n·(n−1) LSP
        // segments + its own terminations.
        let g = generators::star(6);
        let w = EdgeWeights::uniform(&g, 1u64);
        let ap = AllPairs::compute(&g, &w, &ShortestPath);
        let scheme = LabelSwapping::provision(&g, "sp", |s, t| ap.path(s, t));
        // Leaf pairs: 5·4 = 20 transit entries at the hub, plus 5 hub-
        // sourced LSPs and 5 deliveries (one per leaf sending to the hub).
        assert_eq!(scheme.max_table_len(), 30);
    }
}
