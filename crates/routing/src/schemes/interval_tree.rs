//! Classic interval routing on a spanning tree.
//!
//! Each node stores one DFS interval per tree port; addresses are DFS
//! numbers. Local memory is `O(deg_T(v) · log n)` bits — already sublinear
//! and the conceptual baseline for the `O(log n)` schemes of
//! Fraigniaud–Gavoille and Thorup–Zwick (see
//! [`TzTreeRouting`](crate::TzTreeRouting) for the latter).

use cpr_algebra::RoutingAlgebra;
use cpr_graph::{EdgeId, EdgeWeights, Graph, NodeId};

use crate::bits::{node_id_bits, port_bits};
use crate::scheme::{RouteAction, RoutingScheme};
use crate::schemes::spanning_tree::preferred_spanning_tree;
use crate::tree::RootedTree;

/// Interval tree routing: labels are DFS numbers, each node stores its own
/// interval, its parent port, and one `(interval, port)` entry per child.
///
/// Routes *on the tree only* — for a spanning tree of a selective monotone
/// algebra (Lemma 1), the tree path is a preferred path of the whole graph.
///
/// # Examples
///
/// ```
/// use cpr_algebra::policies::WidestPath;
/// use cpr_graph::{generators, EdgeWeights};
/// use cpr_routing::{route, IntervalTreeRouting};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let g = generators::gnp_connected(12, 0.3, &mut rng);
/// let w = EdgeWeights::random(&g, &WidestPath, &mut rng);
/// let scheme = IntervalTreeRouting::spanning(&g, &w, &WidestPath);
/// let path = route(&scheme, &g, 0, 7).unwrap();
/// assert_eq!(path.last(), Some(&7));
/// ```
#[derive(Clone, Debug)]
pub struct IntervalTreeRouting {
    name: String,
    tree: RootedTree,
    degree: Vec<usize>,
}

impl IntervalTreeRouting {
    /// Builds interval routing over an explicit spanning tree.
    ///
    /// # Panics
    ///
    /// Panics if `tree_edges` is not a spanning tree of `graph`.
    pub fn new(name: String, graph: &Graph, tree_edges: &[EdgeId], root: NodeId) -> Self {
        let tree = RootedTree::from_edges(graph, tree_edges, root)
            .expect("tree_edges must form a spanning tree");
        IntervalTreeRouting {
            name,
            tree,
            degree: graph.nodes().map(|v| graph.degree(v)).collect(),
        }
    }

    /// Builds interval routing over the Lemma 1 preferred spanning tree of
    /// the algebra — the Theorem 1 compressible implementation for
    /// selective monotone policies.
    ///
    /// # Panics
    ///
    /// Panics on disconnected graphs (the preferred spanning structure is
    /// then a forest, not a tree).
    pub fn spanning<A: RoutingAlgebra>(
        graph: &Graph,
        weights: &EdgeWeights<A::W>,
        alg: &A,
    ) -> Self {
        let tree_edges = preferred_spanning_tree(graph, weights, alg);
        Self::new(
            format!("interval-tree[{}]", alg.name()),
            graph,
            &tree_edges,
            0,
        )
    }

    /// The underlying rooted tree.
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }
}

impl RoutingScheme for IntervalTreeRouting {
    /// The target's DFS number.
    type Header = u32;

    fn name(&self) -> String {
        self.name.clone()
    }

    fn node_count(&self) -> usize {
        self.tree.len()
    }

    fn initial_header(&self, _source: NodeId, target: NodeId) -> Option<u32> {
        Some(self.tree.dfs(target))
    }

    fn step(&self, at: NodeId, header: &u32) -> RouteAction<u32> {
        let d = *header;
        if d == self.tree.dfs(at) {
            return RouteAction::Deliver;
        }
        if self.tree.in_subtree(at, d) {
            for &(c, port) in self.tree.children(at) {
                if self.tree.in_subtree(c, d) {
                    return RouteAction::Forward { port, header: d };
                }
            }
            unreachable!("descendant must be in some child's subtree");
        }
        RouteAction::Forward {
            port: self
                .tree
                .parent_port(at)
                .expect("non-root node has a parent"),
            header: d,
        }
    }

    fn local_memory_bits(&self, v: NodeId) -> u64 {
        let id = node_id_bits(self.tree.len());
        let port = port_bits(self.degree[v]);
        // Own interval + parent port + per-child (interval, port).
        let children = self.tree.children(v).len() as u64;
        2 * id + port + children * (2 * id + port)
    }

    fn label_bits(&self, _v: NodeId) -> u64 {
        node_id_bits(self.tree.len())
    }

    fn header_bits(&self) -> u64 {
        node_id_bits(self.tree.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{route, MemoryReport};
    use cpr_algebra::policies::{UsablePath, WidestPath};
    use cpr_algebra::RoutingAlgebra;
    use cpr_graph::generators;
    use cpr_paths::AllPairs;
    use rand::SeedableRng;

    #[test]
    fn routes_along_tree_paths() {
        let g = generators::balanced_tree(2, 4);
        let edges: Vec<_> = g.edges().map(|(e, _)| e).collect();
        let scheme = IntervalTreeRouting::new("t".into(), &g, &edges, 0);
        for s in g.nodes() {
            for t in g.nodes() {
                let path = route(&scheme, &g, s, t).unwrap();
                assert_eq!(path, scheme.tree().tree_path(s, t), "{s} → {t}");
            }
        }
    }

    #[test]
    fn widest_path_routes_are_preferred() {
        // Theorem 1 end-to-end: spanning-tree interval routing implements
        // the widest-path policy exactly.
        let mut rng = rand::rngs::StdRng::seed_from_u64(400);
        let g = generators::gnp_connected(25, 0.2, &mut rng);
        let w = EdgeWeights::random(&g, &WidestPath, &mut rng);
        let scheme = IntervalTreeRouting::spanning(&g, &w, &WidestPath);
        let ap = AllPairs::compute(&g, &w, &WidestPath);
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let path = route(&scheme, &g, s, t).unwrap();
                let got = w.path_weight(&WidestPath, &g, &path);
                assert_eq!(
                    WidestPath.compare_pw(&got, ap.weight(s, t)),
                    std::cmp::Ordering::Equal,
                    "{s} → {t}: tree route not preferred"
                );
            }
        }
    }

    #[test]
    fn memory_is_logarithmic_per_tree_degree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(401);
        let g = generators::gnp_connected(200, 0.05, &mut rng);
        let w = EdgeWeights::random(&g, &UsablePath, &mut rng);
        let scheme = IntervalTreeRouting::spanning(&g, &w, &UsablePath);
        let report = MemoryReport::measure(&scheme);
        let n = g.node_count();
        assert!(report.max_label_bits <= node_id_bits(n));
        // The honest bound: (deg_T(v) + 1) · (2 log n + log d) at every
        // node, and well below the Θ(n log d) of destination tables.
        let max_tree_deg = g
            .nodes()
            .map(|v| scheme.tree().children(v).len() + 1)
            .max()
            .unwrap() as u64;
        let id = node_id_bits(n);
        assert!(report.max_local_bits <= (max_tree_deg + 1) * (2 * id + 8));
        let dest_table_bits = (n as u64 - 1) * (port_bits(g.max_degree()) + 1);
        assert!(
            report.max_local_bits < dest_table_bits / 2,
            "interval routing ({}) should be well below tables ({dest_table_bits})",
            report.max_local_bits
        );
    }

    #[test]
    fn self_route_is_trivial() {
        let g = generators::path(5);
        let edges: Vec<_> = g.edges().map(|(e, _)| e).collect();
        let scheme = IntervalTreeRouting::new("t".into(), &g, &edges, 2);
        assert_eq!(route(&scheme, &g, 3, 3).unwrap(), vec![3]);
    }
}
