//! The preferred spanning tree of Lemma 1.
//!
//! For a *monotone and selective* algebra, taking edges in non-decreasing
//! weight order and adding each edge that closes no cycle (Kruskal's
//! procedure with the algebra's order) yields a spanning tree whose unique
//! in-tree path between any pair is a preferred path. That is the engine
//! behind Theorem 1: selective + monotone ⇒ compressible, because routing
//! on a tree needs only Θ(log n) bits.

use std::cmp::Ordering;

use cpr_algebra::{PathWeight, RoutingAlgebra};
use cpr_graph::{EdgeId, EdgeWeights, Graph, NodeId};

/// Union-find with path halving and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// The canonical representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `false` if already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }
}

/// Builds the Lemma 1 preferred spanning tree (or forest, when the graph
/// is disconnected): edges in non-decreasing `⪯` order, skipping those
/// that close cycles. Ties are broken by edge id, deterministically.
///
/// For monotone **selective** algebras the result's in-tree paths are
/// preferred paths for every pair (Lemma 1); for other algebras the tree
/// exists but [`verify_tree_optimality`] may find violating pairs — that
/// is exactly the paper's Fig. 1 demonstration.
///
/// # Examples
///
/// ```
/// use cpr_algebra::policies::{Capacity, WidestPath};
/// use cpr_graph::{generators, EdgeWeights};
/// use cpr_routing::preferred_spanning_tree;
///
/// let g = generators::complete(4);
/// let w = EdgeWeights::from_fn(&g, |e| Capacity::new(e as u64 + 1).unwrap());
/// let tree = preferred_spanning_tree(&g, &w, &WidestPath);
/// assert_eq!(tree.len(), 3);
/// ```
pub fn preferred_spanning_tree<A: RoutingAlgebra>(
    graph: &Graph,
    weights: &EdgeWeights<A::W>,
    alg: &A,
) -> Vec<EdgeId> {
    let mut edges: Vec<EdgeId> = (0..graph.edge_count()).collect();
    edges.sort_by(|&a, &b| {
        alg.compare(weights.weight(a), weights.weight(b))
            .then(a.cmp(&b))
    });
    let mut uf = UnionFind::new(graph.node_count());
    let mut tree = Vec::with_capacity(graph.node_count().saturating_sub(1));
    for e in edges {
        let (u, v) = graph.endpoints(e);
        if uf.union(u, v) {
            tree.push(e);
        }
    }
    tree
}

/// A pair whose in-tree path is not preferred, with both weights.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeViolation<W> {
    /// The source of the violating pair.
    pub s: NodeId,
    /// The target of the violating pair.
    pub t: NodeId,
    /// Weight of the unique in-tree `s–t` path.
    pub tree_weight: PathWeight<W>,
    /// The preferred `s–t` weight in the full graph.
    pub preferred_weight: PathWeight<W>,
}

/// Checks Lemma 1's guarantee: is the unique in-tree path between every
/// pair a preferred path of the *full* graph?
///
/// `preferred` supplies ground-truth preferred weights (e.g. from
/// [`cpr_paths::AllPairs`] for regular algebras, or the exhaustive solver).
/// Returns the first violation found, or `None` when the tree is optimal.
///
/// # Panics
///
/// Panics if `tree_edges` is not a spanning tree of `graph`.
pub fn verify_tree_optimality<A: RoutingAlgebra>(
    graph: &Graph,
    weights: &EdgeWeights<A::W>,
    alg: &A,
    tree_edges: &[EdgeId],
    preferred: impl Fn(NodeId, NodeId) -> PathWeight<A::W>,
) -> Option<TreeViolation<A::W>> {
    let tree = crate::tree::RootedTree::from_edges(graph, tree_edges, 0)
        .expect("tree_edges must form a spanning tree");
    for s in graph.nodes() {
        for t in graph.nodes() {
            if s == t {
                continue;
            }
            let path = tree.tree_path(s, t);
            let tree_weight = weights.path_weight(alg, graph, &path);
            let preferred_weight = preferred(s, t);
            if alg.compare_pw(&tree_weight, &preferred_weight) == Ordering::Greater {
                return Some(TreeViolation {
                    s,
                    t,
                    tree_weight,
                    preferred_weight,
                });
            }
        }
    }
    None
}

/// Enumerates *all* spanning trees of a small graph (by trying every
/// `(n−1)`-subset of edges). Exponential — intended for the paper's tiny
/// Fig. 1 counterexample graphs, where the claim is that *no* spanning
/// tree contains a preferred path for every pair.
///
/// # Panics
///
/// Panics if the graph has more than 24 edges (combinatorial safety rail).
pub fn all_spanning_trees(graph: &Graph) -> Vec<Vec<EdgeId>> {
    let m = graph.edge_count();
    let n = graph.node_count();
    assert!(m <= 24, "all_spanning_trees is for tiny graphs only");
    if n == 0 || m + 1 < n {
        return Vec::new();
    }
    let k = n - 1;
    let mut out = Vec::new();
    // Iterate subsets of size k via bitmask.
    for mask in 0u32..(1 << m) {
        if mask.count_ones() as usize != k {
            continue;
        }
        let subset: Vec<EdgeId> = (0..m).filter(|e| mask & (1 << e) != 0).collect();
        let mut uf = UnionFind::new(n);
        let mut acyclic = true;
        for &e in &subset {
            let (u, v) = graph.endpoints(e);
            if !uf.union(u, v) {
                acyclic = false;
                break;
            }
        }
        if acyclic {
            out.push(subset);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_algebra::policies::{Capacity, ShortestPath, UsablePath, WidestPath};

    use cpr_graph::generators;
    use cpr_paths::AllPairs;
    use rand::SeedableRng;

    #[test]
    fn union_find_merges() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert!(!uf.union(1, 2));
        assert_eq!(uf.find(0), uf.find(2));
    }

    #[test]
    fn widest_path_tree_is_optimal_on_random_graphs() {
        // Theorem 1 / Lemma 1: selective + monotone ⇒ maps to a tree.
        let mut rng = rand::rngs::StdRng::seed_from_u64(301);
        for trial in 0..5 {
            let g = generators::gnp_connected(20, 0.25, &mut rng);
            let w = EdgeWeights::random(&g, &WidestPath, &mut rng);
            let tree = preferred_spanning_tree(&g, &w, &WidestPath);
            assert_eq!(tree.len(), g.node_count() - 1);
            let ap = AllPairs::compute(&g, &w, &WidestPath);
            let violation =
                verify_tree_optimality(&g, &w, &WidestPath, &tree, |s, t| *ap.weight(s, t));
            assert!(violation.is_none(), "trial {trial}: {violation:?}");
        }
    }

    #[test]
    fn usable_path_any_spanning_tree_is_optimal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(302);
        let g = generators::gnp_connected(15, 0.3, &mut rng);
        let w = EdgeWeights::random(&g, &UsablePath, &mut rng);
        let tree = preferred_spanning_tree(&g, &w, &UsablePath);
        let ap = AllPairs::compute(&g, &w, &UsablePath);
        assert!(
            verify_tree_optimality(&g, &w, &UsablePath, &tree, |s, t| *ap.weight(s, t)).is_none()
        );
    }

    #[test]
    fn fig1a_no_spanning_tree_is_optimal_for_shortest_path() {
        // Lemma 1's converse: shortest path is not selective, and on the
        // uniform triangle no spanning tree carries only preferred paths.
        let ce = generators::fig1a();
        let w = EdgeWeights::from_vec(&ce.graph, ce.weights(&1u64, &1u64));
        let ap = AllPairs::compute(&ce.graph, &w, &ShortestPath);
        let trees = all_spanning_trees(&ce.graph);
        assert_eq!(trees.len(), 3);
        for tree in trees {
            let violation = verify_tree_optimality(&ce.graph, &w, &ShortestPath, &tree, |s, t| {
                *ap.weight(s, t)
            });
            assert!(violation.is_some(), "tree {tree:?} should violate");
        }
    }

    #[test]
    fn kruskal_picks_fattest_edges_for_widest_path() {
        // On a triangle with capacities 1, 5, 9, the widest tree keeps the
        // two fat edges.
        let g = cpr_graph::Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap();
        let w = EdgeWeights::from_vec(
            &g,
            [1u64, 5, 9]
                .into_iter()
                .map(|c| Capacity::new(c).unwrap())
                .collect(),
        );
        let tree = preferred_spanning_tree(&g, &w, &WidestPath);
        assert_eq!(tree, vec![2, 1]); // capacity 9 first, then 5
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let g = cpr_graph::Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let w = EdgeWeights::uniform(&g, Capacity::new(1).unwrap());
        let tree = preferred_spanning_tree(&g, &w, &WidestPath);
        assert_eq!(tree.len(), 2); // spanning forest
    }

    #[test]
    fn all_spanning_trees_of_cycle() {
        let g = generators::cycle(4);
        // A cycle of length 4 has exactly 4 spanning trees.
        assert_eq!(all_spanning_trees(&g).len(), 4);
    }
}
