//! Thorup–Zwick tree routing: `O(log n)`-bit local state,
//! `O(log² n)`-bit labels.
//!
//! The paper's Table 1 cites this scheme (Thorup & Zwick, SPAA'01) as the
//! `log² n`-bit implementation of selective policies: the routing *tables*
//! shrink to a constant number of words by moving the light-edge ports of
//! the root path into the *labels*. A node keeps only its DFS interval,
//! parent port and heavy-child data; when the target sits below a light
//! child, the needed port is read out of the target's own label — which
//! lists the `≤ log₂ n` light edges on its root path.

use cpr_algebra::RoutingAlgebra;
use cpr_graph::{EdgeId, EdgeWeights, Graph, NodeId, Port};

use crate::bits::{node_id_bits, port_bits};
use crate::scheme::{RouteAction, RoutingScheme};
use crate::schemes::spanning_tree::preferred_spanning_tree;
use crate::tree::RootedTree;

/// A Thorup–Zwick tree-routing label: the node's DFS number plus the light
/// edges `(dfs(u), port-at-u)` on its root path, in root-to-leaf order.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TzLabel {
    /// DFS number of the labelled node.
    pub dfs: u32,
    /// `(dfs(u), port)` for every light tree edge `u → child` on the root
    /// path; at most `⌊log₂ n⌋` entries.
    pub light: Vec<(u32, Port)>,
}

/// Thorup–Zwick tree routing over a spanning tree (see module docs).
///
/// # Examples
///
/// ```
/// use cpr_algebra::policies::WidestPath;
/// use cpr_graph::{generators, EdgeWeights};
/// use cpr_routing::{route, TzTreeRouting};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(6);
/// let g = generators::barabasi_albert(30, 2, &mut rng);
/// let w = EdgeWeights::random(&g, &WidestPath, &mut rng);
/// let scheme = TzTreeRouting::spanning(&g, &w, &WidestPath);
/// assert_eq!(route(&scheme, &g, 3, 17).unwrap().last(), Some(&17));
/// ```
#[derive(Clone, Debug)]
pub struct TzTreeRouting {
    name: String,
    tree: RootedTree,
    labels: Vec<TzLabel>,
    degree: Vec<usize>,
}

impl TzTreeRouting {
    /// Builds the scheme over an explicit spanning tree.
    ///
    /// # Panics
    ///
    /// Panics if `tree_edges` is not a spanning tree of `graph`.
    pub fn new(name: String, graph: &Graph, tree_edges: &[EdgeId], root: NodeId) -> Self {
        let tree = RootedTree::from_edges(graph, tree_edges, root)
            .expect("tree_edges must form a spanning tree");
        let labels = graph
            .nodes()
            .map(|v| TzLabel {
                dfs: tree.dfs(v),
                light: tree
                    .light_edges_to(v)
                    .into_iter()
                    .map(|(u, port)| (tree.dfs(u), port))
                    .collect(),
            })
            .collect();
        TzTreeRouting {
            name,
            tree,
            labels,
            degree: graph.nodes().map(|v| graph.degree(v)).collect(),
        }
    }

    /// Builds the scheme over the Lemma 1 preferred spanning tree — the
    /// `log² n` implementation of a selective monotone policy from
    /// Table 1.
    ///
    /// # Panics
    ///
    /// Panics on disconnected graphs (the preferred spanning structure is
    /// then a forest, not a tree).
    pub fn spanning<A: RoutingAlgebra>(
        graph: &Graph,
        weights: &EdgeWeights<A::W>,
        alg: &A,
    ) -> Self {
        let tree_edges = preferred_spanning_tree(graph, weights, alg);
        Self::new(format!("tz-tree[{}]", alg.name()), graph, &tree_edges, 0)
    }

    /// The label of `v`.
    pub fn label(&self, v: NodeId) -> &TzLabel {
        &self.labels[v]
    }

    /// The underlying rooted tree.
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }
}

impl RoutingScheme for TzTreeRouting {
    /// The target's full label travels in the header.
    type Header = TzLabel;

    fn name(&self) -> String {
        self.name.clone()
    }

    fn node_count(&self) -> usize {
        self.tree.len()
    }

    fn initial_header(&self, _source: NodeId, target: NodeId) -> Option<TzLabel> {
        Some(self.labels[target].clone())
    }

    fn step(&self, at: NodeId, header: &TzLabel) -> RouteAction<TzLabel> {
        let d = header.dfs;
        if d == self.tree.dfs(at) {
            return RouteAction::Deliver;
        }
        if !self.tree.in_subtree(at, d) {
            return RouteAction::Forward {
                port: self
                    .tree
                    .parent_port(at)
                    .expect("target outside subtree implies non-root"),
                header: header.clone(),
            };
        }
        // Target strictly below us: heavy child or a light edge listed in
        // the target's label.
        if let Some((heavy, port)) = self.tree.heavy_child(at) {
            if self.tree.in_subtree(heavy, d) {
                return RouteAction::Forward {
                    port,
                    header: header.clone(),
                };
            }
        }
        let my_dfs = self.tree.dfs(at);
        let port = header
            .light
            .iter()
            .find(|(u_dfs, _)| *u_dfs == my_dfs)
            .map(|&(_, port)| port)
            .expect("descendant below a light child appears in the label");
        RouteAction::Forward {
            port,
            header: header.clone(),
        }
    }

    fn local_memory_bits(&self, v: NodeId) -> u64 {
        let id = node_id_bits(self.tree.len());
        let port = port_bits(self.degree[v]);
        // Own interval (2 ids) + parent port + heavy child interval +
        // heavy child port: O(log n) regardless of degree.
        2 * id + port + 2 * id + port
    }

    fn label_bits(&self, v: NodeId) -> u64 {
        let id = node_id_bits(self.tree.len());
        let port = port_bits(self.degree[v].max(2));
        id + self.labels[v].light.len() as u64 * (id + port)
    }

    fn header_bits(&self) -> u64 {
        (0..self.tree.len())
            .map(|v| self.label_bits(v))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{route, MemoryReport};
    use crate::IntervalTreeRouting;
    use cpr_algebra::policies::{UsablePath, WidestPath};
    use cpr_algebra::RoutingAlgebra;
    use cpr_graph::generators;
    use cpr_paths::AllPairs;
    use rand::SeedableRng;

    #[test]
    fn routes_exactly_the_tree_paths() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(500);
        for trial in 0..3 {
            let g = generators::gnp_connected(40, 0.1, &mut rng);
            let w = EdgeWeights::random(&g, &UsablePath, &mut rng);
            let tz = TzTreeRouting::spanning(&g, &w, &UsablePath);
            for s in g.nodes() {
                for t in g.nodes() {
                    let path = route(&tz, &g, s, t).unwrap();
                    assert_eq!(path, tz.tree().tree_path(s, t), "trial {trial}: {s} → {t}");
                }
            }
        }
    }

    #[test]
    fn agrees_with_interval_routing() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(501);
        let g = generators::barabasi_albert(35, 2, &mut rng);
        let w = EdgeWeights::random(&g, &WidestPath, &mut rng);
        let tree = preferred_spanning_tree(&g, &w, &WidestPath);
        let tz = TzTreeRouting::new("tz".into(), &g, &tree, 0);
        let iv = IntervalTreeRouting::new("iv".into(), &g, &tree, 0);
        for s in g.nodes() {
            for t in g.nodes() {
                assert_eq!(route(&tz, &g, s, t).unwrap(), route(&iv, &g, s, t).unwrap());
            }
        }
    }

    #[test]
    fn implements_widest_path_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(502);
        let g = generators::gnp_connected(30, 0.15, &mut rng);
        let w = EdgeWeights::random(&g, &WidestPath, &mut rng);
        let tz = TzTreeRouting::spanning(&g, &w, &WidestPath);
        let ap = AllPairs::compute(&g, &w, &WidestPath);
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let path = route(&tz, &g, s, t).unwrap();
                let got = w.path_weight(&WidestPath, &g, &path);
                assert_eq!(
                    WidestPath.compare_pw(&got, ap.weight(s, t)),
                    std::cmp::Ordering::Equal
                );
            }
        }
    }

    #[test]
    fn local_memory_is_constant_words() {
        // The point of TZ: local memory independent of degree.
        let g = generators::star(512);
        let edges: Vec<_> = g.edges().map(|(e, _)| e).collect();
        let tz = TzTreeRouting::new("tz".into(), &g, &edges, 0);
        let report = MemoryReport::measure(&tz);
        // 4 ids + 2 ports ≤ 4·10 + 2·9 = 58 bits at the hub.
        assert!(
            report.max_local_bits <= 64,
            "got {} bits",
            report.max_local_bits
        );
        // Labels stay O(log² n).
        assert!(report.max_label_bits <= 200);
    }

    #[test]
    fn label_light_lists_are_logarithmic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(503);
        let g = generators::gnp_connected(256, 0.03, &mut rng);
        let w = EdgeWeights::random(&g, &UsablePath, &mut rng);
        let tz = TzTreeRouting::spanning(&g, &w, &UsablePath);
        for v in g.nodes() {
            assert!(
                tz.label(v).light.len() <= 8, // ⌊log₂ 256⌋
                "node {v} has {} light entries",
                tz.label(v).light.len()
            );
        }
    }
}
