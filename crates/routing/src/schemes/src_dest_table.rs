//! Source–destination routing tables: the trivial routing function for
//! *non-isotone* algebras (paper §3.1, the `S W` row of Table 1).
//!
//! When isotonicity fails, preferred paths from a node need not form a
//! tree: the preferred `s → t` path through `u` can leave `u` on a
//! different edge for different sources `s`. The fallback is to key the
//! forwarding decision on the *pair* `(s, t)`, which costs `O(n² log d)`
//! bits per node — the paper notes it is open whether the `Ω(n)` bound for
//! `S W` is tight, this scheme being the only trivial upper bound.

use cpr_graph::{Graph, NodeId, Port};

use crate::bits::{node_id_bits, port_bits};
use crate::scheme::{RouteAction, RoutingScheme};

/// Per-pair routing tables built from explicit per-source preferred paths.
///
/// # Examples
///
/// ```
/// use cpr_graph::{generators, EdgeWeights};
/// use cpr_algebra::policies::Capacity;
/// use cpr_paths::shortest_widest_exact;
/// use cpr_routing::{route, SrcDestTable};
///
/// let g = generators::cycle(4);
/// let w = EdgeWeights::from_fn(&g, |e| (Capacity::new(e as u64 + 1).unwrap(), 1));
/// let scheme = SrcDestTable::build(&g, "sw", |s| {
///     let r = shortest_widest_exact(&g, &w, s);
///     (0..g.node_count()).map(|t| r.path_to(t).map(<[_]>::to_vec)).collect()
/// });
/// let path = route(&scheme, &g, 0, 2).unwrap();
/// assert_eq!(path.first(), Some(&0));
/// assert_eq!(path.last(), Some(&2));
/// ```
#[derive(Clone, Debug)]
pub struct SrcDestTable {
    name: String,
    n: usize,
    /// `entries[v]` holds `((s, t), port)` for every pair whose preferred
    /// path traverses (or starts at) `v`.
    entries: Vec<Vec<((NodeId, NodeId), Port)>>,
    degree: Vec<usize>,
    routable: Vec<Vec<bool>>,
}

impl SrcDestTable {
    /// Builds the tables. `paths_from(s)[t]` must yield the preferred
    /// `s → t` path as a node sequence `[s, …, t]` (or `None` when
    /// unreachable); each node on it learns its forwarding port for the
    /// pair.
    ///
    /// # Panics
    ///
    /// Panics if a returned path is not a valid path of `graph` or does
    /// not start/end at the right nodes.
    pub fn build(
        graph: &Graph,
        policy_name: &str,
        paths_from: impl Fn(NodeId) -> Vec<Option<Vec<NodeId>>> + Sync,
    ) -> Self {
        let n = graph.node_count();
        let mut entries: Vec<Vec<((NodeId, NodeId), Port)>> = vec![Vec::new(); n];
        let mut routable = vec![vec![false; n]; n];
        // `paths_from` is the expensive part (typically a full preferred-path
        // solve per source); fan it out, then assemble the shared per-node
        // entry lists serially so their order stays the serial order.
        let all_paths = cpr_core::par::par_map_indexed(n, &paths_from);
        for (s, paths) in all_paths.into_iter().enumerate() {
            assert_eq!(paths.len(), n, "one (optional) path per destination");
            for (t, path) in paths.iter().enumerate() {
                let Some(path) = path else { continue };
                if t == s {
                    continue;
                }
                assert_eq!(path.first(), Some(&s), "path must start at the source");
                assert_eq!(path.last(), Some(&t), "path must end at the target");
                routable[s][t] = true;
                for hop in path.windows(2) {
                    let port = graph
                        .port_towards(hop[0], hop[1])
                        .expect("path edge must exist");
                    entries[hop[0]].push(((s, t), port));
                }
            }
        }
        SrcDestTable {
            name: format!("src-dest-table[{policy_name}]"),
            n,
            entries,
            degree: graph.nodes().map(|v| graph.degree(v)).collect(),
            routable,
        }
    }

    /// Number of `(s, t)` entries stored at `v`.
    pub fn entries_at(&self, v: NodeId) -> usize {
        self.entries[v].len()
    }
}

impl RoutingScheme for SrcDestTable {
    /// The header carries the pair `(source, target)`.
    type Header = (NodeId, NodeId);

    fn name(&self) -> String {
        self.name.clone()
    }

    fn node_count(&self) -> usize {
        self.n
    }

    fn initial_header(&self, source: NodeId, target: NodeId) -> Option<(NodeId, NodeId)> {
        if source == target || self.routable[source][target] {
            Some((source, target))
        } else {
            None
        }
    }

    fn step(&self, at: NodeId, header: &(NodeId, NodeId)) -> RouteAction<(NodeId, NodeId)> {
        let (_, target) = *header;
        if at == target {
            return RouteAction::Deliver;
        }
        match self.entries[at].iter().find(|(pair, _)| *pair == *header) {
            Some((_, port)) => RouteAction::Forward {
                port: *port,
                header: *header,
            },
            None => RouteAction::Forward {
                port: usize::MAX, // misroute loudly; see DestTable::step
                header: *header,
            },
        }
    }

    fn local_memory_bits(&self, v: NodeId) -> u64 {
        // Each entry stores its (s, t) key and a port.
        let key = 2 * node_id_bits(self.n);
        self.entries[v].len() as u64 * (key + port_bits(self.degree[v]))
    }

    fn label_bits(&self, _v: NodeId) -> u64 {
        node_id_bits(self.n)
    }

    fn header_bits(&self) -> u64 {
        2 * node_id_bits(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::route;
    use cpr_algebra::{policies, PathWeight, RoutingAlgebra};
    use cpr_graph::{generators, EdgeWeights};
    use cpr_paths::shortest_widest_exact;
    use rand::SeedableRng;

    #[test]
    fn routes_shortest_widest_exactly() {
        let sw = policies::shortest_widest();
        let mut rng = rand::rngs::StdRng::seed_from_u64(200);
        let g = generators::gnp_connected(16, 0.25, &mut rng);
        let w = EdgeWeights::random(&g, &sw, &mut rng);
        let scheme = SrcDestTable::build(&g, &sw.name(), |s| {
            let r = shortest_widest_exact(&g, &w, s);
            g.nodes().map(|t| r.path_to(t).map(<[_]>::to_vec)).collect()
        });
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let truth = shortest_widest_exact(&g, &w, s);
                let path = route(&scheme, &g, s, t).unwrap();
                let got = w.path_weight(&sw, &g, &path);
                assert_eq!(
                    sw.compare_pw(&got, truth.weight(t)),
                    std::cmp::Ordering::Equal,
                    "non-preferred SW route {s} → {t}"
                );
            }
        }
    }

    #[test]
    fn memory_is_quadratic_ish() {
        // Every pair's path has ≥ 1 on-path node storing it, so total
        // entries ≥ n(n−1) over the graph.
        let mut rng = rand::rngs::StdRng::seed_from_u64(201);
        let g = generators::gnp_connected(12, 0.3, &mut rng);
        let sw = policies::shortest_widest();
        let w = EdgeWeights::random(&g, &sw, &mut rng);
        let scheme = SrcDestTable::build(&g, "sw", |s| {
            let r = shortest_widest_exact(&g, &w, s);
            g.nodes().map(|t| r.path_to(t).map(<[_]>::to_vec)).collect()
        });
        let total: usize = g.nodes().map(|v| scheme.entries_at(v)).sum();
        let n = g.node_count();
        assert!(total >= n * (n - 1), "total entries {total}");
    }

    #[test]
    fn unreachable_pairs_rejected() {
        let g = cpr_graph::Graph::from_edges(3, [(0, 1)]).unwrap();
        let w = EdgeWeights::from_vec(&g, vec![(policies::Capacity::new(1).unwrap(), 1u64)]);
        let scheme = SrcDestTable::build(&g, "sw", |s| {
            let r = shortest_widest_exact(&g, &w, s);
            g.nodes().map(|t| r.path_to(t).map(<[_]>::to_vec)).collect()
        });
        assert!(scheme.initial_header(0, 2).is_none());
        assert!(scheme.initial_header(0, 1).is_some());
    }

    #[test]
    fn self_pairs_deliver_immediately() {
        let g = generators::path(3);
        let w = EdgeWeights::uniform(&g, (policies::Capacity::new(1).unwrap(), 1u64));
        let scheme = SrcDestTable::build(&g, "sw", |s| {
            let r = shortest_widest_exact(&g, &w, s);
            g.nodes().map(|t| r.path_to(t).map(<[_]>::to_vec)).collect()
        });
        assert_eq!(route(&scheme, &g, 2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn phi_weight_helper_consistency() {
        let g = generators::path(2);
        let sw = policies::shortest_widest();
        let w = EdgeWeights::uniform(&g, (policies::Capacity::new(3).unwrap(), 2u64));
        assert_eq!(
            w.path_weight(&sw, &g, &[0, 1]),
            PathWeight::Finite((policies::Capacity::new(3).unwrap(), 2))
        );
    }
}
