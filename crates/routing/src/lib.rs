//! # cpr-routing — compact routing schemes over routing algebras
//!
//! The core of the *Compact Policy Routing* reproduction: the
//! routing-function model of §2.3 (headers, port-labelled forwarding,
//! bit-accounted local routing functions) and every scheme the paper's
//! results invoke:
//!
//! | Scheme | Paper result | Memory |
//! |---|---|---|
//! | [`DestTable`] | Observation 1 / Proposition 2 | `O(n log d)` |
//! | [`SrcDestTable`] | §3.1 (non-isotone fallback) | `O(n² log d)` |
//! | [`preferred_spanning_tree`] + [`IntervalTreeRouting`] | Theorem 1 / Lemma 1 | `O(deg_T log n)` |
//! | [`TzTreeRouting`] | Theorem 1 (Thorup–Zwick variant) | `O(log n)` local, `O(log² n)` labels |
//! | [`CowenScheme`] | Theorem 3 (stretch-3 for delimited regular algebras) | `Õ(√n)` |
//!
//! Every scheme implements [`RoutingScheme`]; [`route`] simulates packet
//! forwarding hop by hop, [`MemoryReport`] aggregates Definition 2's
//! per-node bit counts, and [`verify_scheme`] checks delivered paths
//! against ground truth under the algebraic stretch of Definition 3.
//!
//! ```
//! use cpr_algebra::policies::ShortestPath;
//! use cpr_algebra::SampleWeights;
//! use cpr_graph::{generators, EdgeWeights};
//! use cpr_paths::AllPairs;
//! use cpr_routing::{verify_scheme, CowenScheme, LandmarkStrategy, MemoryReport};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let g = generators::gnp_connected(40, 0.1, &mut rng);
//! let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
//! let scheme = CowenScheme::build(
//!     &g, &w, &ShortestPath,
//!     LandmarkStrategy::TzRandom { attempts: 4 }, &mut rng,
//! );
//! let ap = AllPairs::compute(&g, &w, &ShortestPath);
//! let report = verify_scheme(&g, &w, &ShortestPath, &scheme, 3,
//!     |s, t| ap.weight(s, t).clone());
//! assert!(report.all_within_bound());
//! println!("{}", MemoryReport::measure(&scheme));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
mod scheme;
pub mod schemes;
mod tree;
mod verify;

pub use scheme::{route, MemoryReport, RouteAction, RouteError, RoutingScheme};
pub use schemes::cowen::{CowenLabel, CowenScheme, LandmarkStrategy};
pub use schemes::dest_table::DestTable;
pub use schemes::interval_tree::IntervalTreeRouting;
pub use schemes::label_swapping::LabelSwapping;
pub use schemes::spanning_tree::{
    all_spanning_trees, preferred_spanning_tree, verify_tree_optimality, TreeViolation, UnionFind,
};
pub use schemes::src_dest_table::SrcDestTable;
pub use schemes::sw_class_table::{SwClassTable, SwHeader};
pub use schemes::tz_tree::{TzLabel, TzTreeRouting};
pub use tree::{RootedTree, TreeError};
pub use verify::{verify_scheme, StretchReport};
