//! Contract tests applied uniformly to every routing scheme in the crate
//! through the [`RoutingScheme`] trait: delivered paths are genuine graph
//! paths with the right endpoints, self-routing is trivial, headers stay
//! within their declared bit budget, and memory accounting is internally
//! consistent.

use cpr_algebra::policies::{self, ShortestPath, WidestPath};
use cpr_graph::{generators, EdgeWeights, Graph};
use cpr_paths::{shortest_widest_exact, AllPairs};
use cpr_routing::{
    route, CowenScheme, DestTable, IntervalTreeRouting, LabelSwapping, LandmarkStrategy,
    MemoryReport, RoutingScheme, SrcDestTable, SwClassTable, TzTreeRouting,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// The generic contract every scheme must satisfy on a connected graph.
fn check_contract<S: RoutingScheme>(g: &Graph, scheme: &S) -> Result<(), TestCaseError> {
    prop_assert_eq!(scheme.node_count(), g.node_count());
    let report = MemoryReport::measure(scheme);
    prop_assert_eq!(report.nodes, g.node_count());
    prop_assert!(report.total_bits >= report.max_local_bits);
    prop_assert!(report.avg_local_bits() <= report.max_local_bits as f64 + 1e-9);

    for s in g.nodes() {
        // Self-routing is the trivial path.
        prop_assert_eq!(
            route(scheme, g, s, s).ok(),
            Some(vec![s]),
            "self-route at {} must be trivial",
            s
        );
        for t in g.nodes() {
            if s == t {
                continue;
            }
            let path = match route(scheme, g, s, t) {
                Ok(p) => p,
                Err(e) => return Err(TestCaseError::fail(format!("{s} → {t}: {e}"))),
            };
            prop_assert_eq!(*path.first().unwrap(), s);
            prop_assert_eq!(*path.last().unwrap(), t);
            for hop in path.windows(2) {
                prop_assert!(
                    g.contains_edge(hop[0], hop[1]),
                    "{} → {}: non-edge hop {:?}",
                    s,
                    t,
                    hop
                );
            }
            // The hop budget of `route` already guards against loops; a
            // delivered path of length > n would indicate one anyway.
            prop_assert!(path.len() <= g.node_count());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All seven schemes honour the contract on random connected graphs.
    #[test]
    fn all_schemes_satisfy_the_contract(n in 5usize..16, seed in any::<u64>()) {
        let g = generators::gnp_connected(n, 0.3, &mut rng(seed));
        let mut r = rng(seed ^ 0xC0117AC7);

        let sp = EdgeWeights::random(&g, &ShortestPath, &mut r);
        check_contract(&g, &DestTable::build(&g, &sp, &ShortestPath))?;

        let wp = EdgeWeights::random(&g, &WidestPath, &mut r);
        check_contract(&g, &IntervalTreeRouting::spanning(&g, &wp, &WidestPath))?;
        check_contract(&g, &TzTreeRouting::spanning(&g, &wp, &WidestPath))?;

        check_contract(
            &g,
            &CowenScheme::build(
                &g,
                &sp,
                &ShortestPath,
                LandmarkStrategy::TzRandom { attempts: 3 },
                &mut r,
            ),
        )?;

        let sw = policies::shortest_widest();
        let sww = EdgeWeights::random(&g, &sw, &mut r);
        check_contract(
            &g,
            &SrcDestTable::build(&g, "sw", |s| {
                let routes = shortest_widest_exact(&g, &sww, s);
                g.nodes().map(|t| routes.path_to(t).map(<[_]>::to_vec)).collect()
            }),
        )?;
        check_contract(&g, &SwClassTable::build(&g, &sww))?;

        let ap = AllPairs::compute(&g, &sp, &ShortestPath);
        check_contract(&g, &LabelSwapping::provision(&g, "sp", |s, t| ap.path(s, t)))?;
    }

    /// Header bit budgets: every scheme's headers stay within its declared
    /// `header_bits` (checked via the information content of the header
    /// space each scheme uses).
    #[test]
    fn declared_header_bits_are_honest(n in 8usize..32, seed in any::<u64>()) {
        let g = generators::barabasi_albert(n, 2, &mut rng(seed));
        let mut r = rng(seed ^ 0xBEEF);
        let sp = EdgeWeights::random(&g, &ShortestPath, &mut r);
        // Destination tables: the header is a node id.
        let tables = DestTable::build(&g, &sp, &ShortestPath);
        prop_assert!(tables.header_bits() as u32 >= (usize::BITS - (n - 1).leading_zeros()));
        // Label swapping: the header must cover the largest label table.
        let ap = AllPairs::compute(&g, &sp, &ShortestPath);
        let ls = LabelSwapping::provision(&g, "sp", |s, t| ap.path(s, t));
        prop_assert!(
            (1u64 << ls.header_bits().min(63)) as usize >= ls.max_table_len(),
            "label space 2^{} cannot address {} labels",
            ls.header_bits(),
            ls.max_table_len()
        );
    }
}

#[test]
fn schemes_report_distinct_names() {
    let g = generators::cycle(6);
    let mut r = rng(1);
    let sp = EdgeWeights::random(&g, &ShortestPath, &mut r);
    let wp = EdgeWeights::random(&g, &WidestPath, &mut r);
    let sw = policies::shortest_widest();
    let sww = EdgeWeights::random(&g, &sw, &mut r);
    let ap = AllPairs::compute(&g, &sp, &ShortestPath);
    let names = vec![
        DestTable::build(&g, &sp, &ShortestPath).name(),
        IntervalTreeRouting::spanning(&g, &wp, &WidestPath).name(),
        TzTreeRouting::spanning(&g, &wp, &WidestPath).name(),
        CowenScheme::build(
            &g,
            &sp,
            &ShortestPath,
            LandmarkStrategy::GreedyCluster { threshold: None },
            &mut r,
        )
        .name(),
        SrcDestTable::build(&g, "sw", |s| {
            let routes = shortest_widest_exact(&g, &sww, s);
            g.nodes()
                .map(|t| routes.path_to(t).map(<[_]>::to_vec))
                .collect()
        })
        .name(),
        SwClassTable::build(&g, &sww).name(),
        LabelSwapping::provision(&g, "sp", |s, t| ap.path(s, t)).name(),
    ];
    let mut unique = names.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), names.len(), "scheme names collide: {names:?}");
}
