//! Fault injection, recovery auditing and chaos schedules.
//!
//! The convergence theorems this workspace reproduces (§2.4, Theorems
//! 4–5) only mean something if they survive topology churn: a routing
//! protocol that converges on a static graph but blackholes traffic for
//! unbounded time after a link flap has not implemented the algebra
//! safely. This module turns both simulators into chaos subjects:
//!
//! * [`FaultEvent`] — the injectable faults: link failure/restore, node
//!   crash + restart (the node's RIB and Adj-RIB-Ins are flushed, like a
//!   BGP speaker rebooting), network partitions along a node cut, and —
//!   async simulator only — per-link message loss, duplication and extra
//!   delay ([`LinkChaos`]).
//! * [`FaultPlan`] / [`FaultSchedule`] — scripted event lists, or
//!   seeded-random fault storms ([`StormConfig`]) whose every draw is
//!   determined by the RNG seed and which can be asked to heal all
//!   failed links at the end so the surviving topology is the original.
//! * [`run_chaos_sync`] / [`run_chaos_async`] — drive a simulator
//!   through a schedule, settling between events, and return a
//!   [`RecoveryReport`] that audits the *transient* state right after
//!   each fault (blackholed pairs, forwarding loops found by walking
//!   next-hops against the current RIBs) and the state at quiescence.
//! * An oscillation detector: the synchronous runner fingerprints the
//!   global RIB state each round, so a dispute wheel (e.g.
//!   `cpr_bgp::bad_gadget`) is flagged as *oscillating* the moment a
//!   state repeats — typically within a handful of rounds — instead of
//!   spinning to the round budget. The asynchronous runner flags
//!   exhaustion of its event budget the same way.
//!
//! The audits never mask: a pair that is connected in the surviving
//! topology but has no usable next-hop chain is a blackhole; a next-hop
//! chain that revisits a node is a loop; both are counted per event and
//! at the end, and the chaos bench (`cpr-bench --bin chaos`) fails CI
//! when either survives quiescence.

use std::collections::HashSet;
use std::fmt;

use cpr_graph::{EdgeId, Graph, NodeId};
use rand::Rng;

/// Errors returned by the fault-injection APIs. The pre-chaos versions
/// of `fail_link`/`restore_link` panicked on a non-edge; chaos schedules
/// are data (often randomly generated), so malformed events must be
/// reportable, not fatal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The named pair is not an edge of the simulated graph.
    NotAnEdge {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// A node id at or beyond the node count.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotAnEdge { u, v } => write!(f, "{{{u}, {v}}} is not an edge"),
            SimError::NodeOutOfBounds { node } => write!(f, "node {node} out of bounds"),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-link message perturbation for the asynchronous simulator.
///
/// `loss` models a lossy link *under a reliable session* (BGP runs over
/// TCP): a lost transmission is retransmitted after a timeout, so each
/// loss adds one timeout to the delivery delay instead of silently
/// deleting the advertisement — deleting it would leave the protocol
/// permanently stale, which is a transport bug, not a routing one.
/// `duplicate` delivers a second, later copy of the message (idempotent
/// for a path-vector Adj-RIB-In, but it exercises the FIFO-channel
/// invariants). `extra_delay` widens the per-message delay distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkChaos {
    /// Per-transmission loss probability (clamped to `0.0..=0.95`); each
    /// loss costs one retransmission timeout of extra delay.
    pub loss: f64,
    /// Probability that a message is delivered twice (clamped to
    /// `0.0..=1.0`).
    pub duplicate: f64,
    /// Extra uniform delay (`0..=extra_delay`) added to every message.
    pub extra_delay: u64,
}

impl LinkChaos {
    /// No perturbation at all.
    pub fn calm() -> Self {
        LinkChaos {
            loss: 0.0,
            duplicate: 0.0,
            extra_delay: 0,
        }
    }
}

/// One injectable fault.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// Take the link `{u, v}` down.
    FailLink {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// Bring a previously failed link back up.
    RestoreLink {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// Crash and immediately restart a node: its RIB (and, in the async
    /// simulator, its Adj-RIB-Ins and in-flight messages) are flushed;
    /// neighbours drop their session state towards it and re-advertise.
    CrashNode {
        /// The rebooting node.
        node: NodeId,
    },
    /// Partition the network: fail every currently-up link with exactly
    /// one endpoint in `side`.
    Partition {
        /// One side of the cut.
        side: Vec<NodeId>,
    },
    /// Heal a partition: restore every currently-down link with exactly
    /// one endpoint in `side`.
    HealPartition {
        /// One side of the cut.
        side: Vec<NodeId>,
    },
    /// Apply [`LinkChaos`] to a link (asynchronous simulator only; the
    /// synchronous runner records it as a no-op, since lock-step rounds
    /// have no message channel to perturb).
    PerturbLink {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
        /// The perturbation to install.
        chaos: LinkChaos,
    },
    /// Remove any [`LinkChaos`] from a link.
    CalmLink {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::FailLink { u, v } => write!(f, "fail {{{u}, {v}}}"),
            FaultEvent::RestoreLink { u, v } => write!(f, "restore {{{u}, {v}}}"),
            FaultEvent::CrashNode { node } => write!(f, "crash {node}"),
            FaultEvent::Partition { side } => write!(f, "partition {side:?}"),
            FaultEvent::HealPartition { side } => write!(f, "heal-partition {side:?}"),
            FaultEvent::PerturbLink { u, v, chaos } => {
                write!(
                    f,
                    "perturb {{{u}, {v}}} loss={} dup={} delay+{}",
                    chaos.loss, chaos.duplicate, chaos.extra_delay
                )
            }
            FaultEvent::CalmLink { u, v } => write!(f, "calm {{{u}, {v}}}"),
        }
    }
}

/// Parameters of a seeded-random fault storm. Event kinds are drawn by
/// the listed weights among the kinds that are *valid* in the current
/// virtual topology state (a link can only fail while up, only restore
/// while down), so every generated schedule is applicable.
#[derive(Clone, Debug, PartialEq)]
pub struct StormConfig {
    /// Number of random events before any healing tail.
    pub events: usize,
    /// Relative weight of link failures.
    pub fail_weight: u32,
    /// Relative weight of link restores.
    pub restore_weight: u32,
    /// Relative weight of node crash/restarts.
    pub crash_weight: u32,
    /// Relative weight of partitions (a later draw heals them).
    pub partition_weight: u32,
    /// Append `RestoreLink` events for every link still down after the
    /// storm, so the surviving topology equals the original graph.
    pub heal_at_end: bool,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            events: 8,
            fail_weight: 5,
            restore_weight: 3,
            crash_weight: 2,
            partition_weight: 1,
            heal_at_end: true,
        }
    }
}

/// A fault plan: either a scripted event list or a storm to be drawn
/// from a seed. [`schedule`](Self::schedule) lowers both to a concrete
/// [`FaultSchedule`] for a given graph.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultPlan {
    /// Replay exactly these events.
    Scripted(Vec<FaultEvent>),
    /// Draw a seeded-random storm.
    Storm(StormConfig),
}

impl FaultPlan {
    /// Lowers the plan to a concrete schedule over `graph`. Scripted
    /// plans pass through unchanged; storms are drawn from `rng` (the
    /// schedule is a pure function of the seed and the graph).
    pub fn schedule<R: Rng + ?Sized>(&self, graph: &Graph, rng: &mut R) -> FaultSchedule {
        match self {
            FaultPlan::Scripted(events) => FaultSchedule {
                events: events.clone(),
            },
            FaultPlan::Storm(config) => storm_schedule(graph, config, rng),
        }
    }
}

/// A concrete, ordered list of fault events.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSchedule {
    /// The events, applied in order with a settle phase after each.
    pub events: Vec<FaultEvent>,
}

/// One entry of a [`topology_timeline`]: the fault event and the
/// link-level topology right after applying it.
#[derive(Clone, Debug, PartialEq)]
pub struct TopologyStep {
    /// The event that was applied.
    pub event: FaultEvent,
    /// The surviving topology: the original node set with every
    /// currently-down edge removed (edge ids are renumbered, node ids
    /// are stable).
    pub graph: Graph,
    /// Whether this event changed the edge set. Crash/restart and link
    /// perturbations leave the topology untouched (a crashed node
    /// restarts immediately; chaos perturbs messages, not links).
    pub changed: bool,
}

/// Lowers a [`FaultSchedule`] to the sequence of topologies it induces —
/// the *graph-level* view of a chaos run, for consumers that track
/// topology drift rather than protocol state (the `cpr-serve` hot-swap
/// path, the self-healing plane's observe/repair drills).
///
/// Each step's graph keeps every node of `graph` (node-set changes are a
/// rebuild, not a repair) and drops exactly the edges that are down
/// after the event. The output is a pure function of `(graph,
/// schedule)`, so a seeded storm yields a deterministic timeline.
///
/// # Errors
///
/// [`SimError`] when an event names a non-edge or an out-of-bounds node
/// — schedules are data, so malformed ones must be reportable.
pub fn topology_timeline(
    graph: &Graph,
    schedule: &FaultSchedule,
) -> Result<Vec<TopologyStep>, SimError> {
    let n = graph.node_count();
    let edge_of =
        |u: NodeId, v: NodeId| graph.edge_between(u, v).ok_or(SimError::NotAnEdge { u, v });
    let check_side = |side: &[NodeId]| match side.iter().find(|&&x| x >= n) {
        Some(&node) => Err(SimError::NodeOutOfBounds { node }),
        None => Ok(()),
    };
    let mut down = vec![false; graph.edge_count()];
    let mut steps = Vec::with_capacity(schedule.events.len());
    for event in &schedule.events {
        let changed = match event {
            FaultEvent::FailLink { u, v } => {
                let e = edge_of(*u, *v)?;
                let was = down[e];
                down[e] = true;
                !was
            }
            FaultEvent::RestoreLink { u, v } => {
                let e = edge_of(*u, *v)?;
                let was = down[e];
                down[e] = false;
                was
            }
            FaultEvent::CrashNode { node } => {
                if *node >= n {
                    return Err(SimError::NodeOutOfBounds { node: *node });
                }
                false
            }
            FaultEvent::Partition { side } => {
                check_side(side)?;
                let mut any = false;
                for (e, _, _) in crossing_edges(graph, side) {
                    any |= !down[e];
                    down[e] = true;
                }
                any
            }
            FaultEvent::HealPartition { side } => {
                check_side(side)?;
                let mut any = false;
                for (e, _, _) in crossing_edges(graph, side) {
                    any |= down[e];
                    down[e] = false;
                }
                any
            }
            FaultEvent::PerturbLink { u, v, .. } | FaultEvent::CalmLink { u, v } => {
                edge_of(*u, *v)?;
                false
            }
        };
        let (g, _) = graph.filter_edges(|e, _| !down[e]);
        steps.push(TopologyStep {
            event: event.clone(),
            graph: g,
            changed,
        });
    }
    Ok(steps)
}

fn crossing_edges(graph: &Graph, side: &[NodeId]) -> Vec<(EdgeId, NodeId, NodeId)> {
    let in_side: HashSet<NodeId> = side.iter().copied().collect();
    graph
        .edges()
        .filter(|&(_, (u, v))| in_side.contains(&u) != in_side.contains(&v))
        .map(|(e, (u, v))| (e, u, v))
        .collect()
}

fn storm_schedule<R: Rng + ?Sized>(
    graph: &Graph,
    config: &StormConfig,
    rng: &mut R,
) -> FaultSchedule {
    let n = graph.node_count();
    let m = graph.edge_count();
    let mut down: Vec<bool> = vec![false; m];
    let mut events = Vec::with_capacity(config.events + m);
    for _ in 0..config.events {
        // Only kinds that are valid right now participate in the draw.
        let up_edges: Vec<EdgeId> = (0..m).filter(|&e| !down[e]).collect();
        let down_edges: Vec<EdgeId> = (0..m).filter(|&e| down[e]).collect();
        let mut kinds: Vec<(u32, u8)> = Vec::new();
        if !up_edges.is_empty() {
            kinds.push((config.fail_weight, 0));
        }
        if !down_edges.is_empty() {
            kinds.push((config.restore_weight, 1));
        }
        if n > 0 {
            kinds.push((config.crash_weight, 2));
        }
        if n >= 2 && !up_edges.is_empty() {
            kinds.push((config.partition_weight, 3));
        }
        let total: u32 = kinds.iter().map(|&(w, _)| w).sum();
        if total == 0 {
            break;
        }
        let mut draw = rng.gen_range(0..total);
        let kind = kinds
            .iter()
            .find(|&&(w, _)| {
                if draw < w {
                    true
                } else {
                    draw -= w;
                    false
                }
            })
            .map(|&(_, k)| k)
            .expect("weights sum to total");
        match kind {
            0 => {
                let e = up_edges[rng.gen_range(0..up_edges.len())];
                let (u, v) = graph.edges().nth(e).map(|(_, uv)| uv).expect("edge id");
                down[e] = true;
                events.push(FaultEvent::FailLink { u, v });
            }
            1 => {
                let e = down_edges[rng.gen_range(0..down_edges.len())];
                let (u, v) = graph.edges().nth(e).map(|(_, uv)| uv).expect("edge id");
                down[e] = false;
                events.push(FaultEvent::RestoreLink { u, v });
            }
            2 => {
                events.push(FaultEvent::CrashNode {
                    node: rng.gen_range(0..n),
                });
            }
            _ => {
                // A random side of size 1..=n/2, then heal it two draws
                // later at the latest — here we emit the partition and
                // let the heal-at-end tail (or a restore draw) fix it.
                let size = rng.gen_range(1..=(n / 2).max(1));
                let mut side: Vec<NodeId> = (0..n).collect();
                for i in 0..size {
                    let j = rng.gen_range(i..n);
                    side.swap(i, j);
                }
                side.truncate(size);
                side.sort_unstable();
                for (e, _, _) in crossing_edges(graph, &side) {
                    down[e] = true;
                }
                events.push(FaultEvent::Partition { side });
            }
        }
    }
    if config.heal_at_end {
        for (e, (u, v)) in graph.edges() {
            if down[e] {
                events.push(FaultEvent::RestoreLink { u, v });
                down[e] = false;
            }
        }
    }
    FaultSchedule { events }
}

/// A read-only view of a simulator's forwarding state, shared by the
/// audits so the same blackhole/loop walker serves both simulators.
pub trait RibSnapshot {
    /// The simulated topology.
    fn graph(&self) -> &Graph;
    /// Whether edge `e` is currently up.
    fn edge_up(&self, e: EdgeId) -> bool;
    /// The node path of `u`'s selected route towards `t`, if any.
    fn route_path(&self, u: NodeId, t: NodeId) -> Option<&[NodeId]>;
}

/// The outcome of one forwarding audit: every ordered pair that is
/// connected in the surviving topology but undeliverable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Audit {
    /// Pairs `(u, t)` where hop-by-hop forwarding dead-ends (a node on
    /// the chain has no route, names an unusable next hop, or the next
    /// hop crosses a downed link).
    pub blackholed: Vec<(NodeId, NodeId)>,
    /// Pairs `(u, t)` whose next-hop chain revisits a node.
    pub looping: Vec<(NodeId, NodeId)>,
}

impl Audit {
    /// `true` when no pair is blackholed or looping.
    pub fn clean(&self) -> bool {
        self.blackholed.is_empty() && self.looping.is_empty()
    }
}

/// Walks every connected ordered pair hop-by-hop against the current
/// RIBs and reports blackholes and forwarding loops.
///
/// "Connected" is judged on the *surviving* topology (up edges only):
/// a pair the topology genuinely cannot serve is not a blackhole, it is
/// a partition — the audit never blames the protocol for physics.
pub fn audit_forwarding<V: RibSnapshot + ?Sized>(view: &V) -> Audit {
    let graph = view.graph();
    let n = graph.node_count();
    // Components of the up-subgraph.
    let mut comp = vec![usize::MAX; n];
    let mut next_comp = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = next_comp;
        while let Some(u) = stack.pop() {
            for (v, e) in graph.neighbors(u) {
                if view.edge_up(e) && comp[v] == usize::MAX {
                    comp[v] = next_comp;
                    stack.push(v);
                }
            }
        }
        next_comp += 1;
    }

    let mut audit = Audit::default();
    for u in 0..n {
        'pair: for t in 0..n {
            if u == t || comp[u] != comp[t] {
                continue;
            }
            let mut at = u;
            let mut hops = 0usize;
            while at != t {
                let Some(path) = view.route_path(at, t) else {
                    audit.blackholed.push((u, t));
                    continue 'pair;
                };
                let Some(&nh) = path.get(1) else {
                    audit.blackholed.push((u, t));
                    continue 'pair;
                };
                match graph.edge_between(at, nh) {
                    Some(e) if view.edge_up(e) => {}
                    _ => {
                        // Next hop over a missing or downed link: the
                        // packet is dropped on the floor.
                        audit.blackholed.push((u, t));
                        continue 'pair;
                    }
                }
                at = nh;
                hops += 1;
                if hops > n {
                    audit.looping.push((u, t));
                    continue 'pair;
                }
            }
        }
    }
    audit
}

/// Statistics of one settle phase (the protocol running until it
/// quiesces, oscillates, or exhausts its budget).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Settle {
    /// Synchronous rounds, or asynchronous message deliveries.
    pub steps: u64,
    /// Route advertisements sent.
    pub messages: u64,
    /// Whether a fixpoint was reached.
    pub quiesced: bool,
    /// Whether the run was cut off as non-quiescing: the synchronous
    /// runner saw a *repeated global RIB state while routes were still
    /// changing* (an exact oscillation witness — the simulator is
    /// deterministic, so a revisited state proves a cycle); the
    /// asynchronous runner exhausted its event budget.
    pub oscillating: bool,
}

/// Recovery record for one injected fault.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecovery {
    /// The injected event.
    pub event: FaultEvent,
    /// Blackholed pairs observed immediately after the event, before
    /// the protocol reacted — the transient exposure window.
    pub transient_blackholes: usize,
    /// Forwarding loops observed immediately after the event.
    pub transient_loops: usize,
    /// The settle phase that followed.
    pub settle: Settle,
    /// Blackholed pairs remaining at quiescence.
    pub blackholes: usize,
    /// Forwarding loops remaining at quiescence.
    pub loops: usize,
}

/// The full audit trail of a chaos run.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryReport {
    /// The settle phase before any event (cold-start convergence, or a
    /// no-op if the simulator was already converged).
    pub initial: Settle,
    /// One record per injected event, in order.
    pub events: Vec<EventRecovery>,
}

impl RecoveryReport {
    /// `true` when the initial run and every per-event settle quiesced.
    pub fn quiesced(&self) -> bool {
        self.initial.quiesced && self.events.iter().all(|e| e.settle.quiesced)
    }

    /// `true` when any settle phase was flagged as oscillating.
    pub fn oscillating(&self) -> bool {
        self.initial.oscillating || self.events.iter().any(|e| e.settle.oscillating)
    }

    /// Total messages across all settle phases.
    pub fn total_messages(&self) -> u64 {
        self.initial.messages + self.events.iter().map(|e| e.settle.messages).sum::<u64>()
    }

    /// Blackholes at the final quiescence (0 events: after the initial
    /// settle, which the runners audit into a synthetic count of 0 —
    /// callers with no events should audit the simulator directly).
    pub fn final_blackholes(&self) -> usize {
        self.events.last().map_or(0, |e| e.blackholes)
    }

    /// Forwarding loops at the final quiescence.
    pub fn final_loops(&self) -> usize {
        self.events.last().map_or(0, |e| e.loops)
    }

    /// Sum of transient blackholed pairs across events — the exposure
    /// the storm created before the protocol healed each wound.
    pub fn transient_blackhole_exposure(&self) -> usize {
        self.events.iter().map(|e| e.transient_blackholes).sum()
    }

    /// The per-event settle steps (reconvergence rounds or deliveries)
    /// as an exact [`cpr_obs::Histogram`] — the same histogram the
    /// obs-aware runners record under `chaos.settle_steps`, so report
    /// percentiles and registry percentiles can never drift.
    pub fn settle_steps_histogram(&self) -> cpr_obs::Histogram {
        let mut h = cpr_obs::Histogram::new();
        for e in &self.events {
            h.record(e.settle.steps);
        }
        h
    }

    /// The `p`-th percentile (0.0..=1.0) of per-event settle steps, by
    /// nearest-rank. (This used to sort inline; it now delegates to the
    /// shared histogram so there is exactly one percentile convention.)
    ///
    /// Panics on a report with no recovery events: a percentile of an
    /// empty run previously masqueraded as `0`, which let a harness
    /// that accidentally ran zero fault events look maximally healthy.
    pub fn settle_steps_percentile(&self, p: f64) -> u64 {
        self.settle_steps_histogram()
            .percentile(p)
            .expect("settle percentile requested for a report with no recovery events")
    }
}

/// Budgets for the settle phases of a chaos run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosOptions {
    /// Round budget per settle phase (synchronous runner). The
    /// oscillation detector normally cuts non-quiescing runs off far
    /// earlier; the budget is the backstop.
    pub round_budget: u32,
    /// Delivery budget per settle phase (asynchronous runner).
    pub event_budget: u64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            round_budget: 5_000,
            event_budget: 20_000_000,
        }
    }
}

/// FNV-1a accumulator for RIB fingerprints.
#[derive(Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    pub(crate) fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Runs `sim` through `schedule`: settle, then per event apply → audit
/// the transient state → settle (with exact oscillation detection) →
/// audit at quiescence.
///
/// # Errors
///
/// Returns the first [`SimError`] of a malformed event (non-edge, node
/// out of bounds); events before it have been applied.
pub fn run_chaos_sync<A, F>(
    sim: &mut crate::Simulator<'_, A, F>,
    schedule: &FaultSchedule,
    opts: &ChaosOptions,
) -> Result<RecoveryReport, SimError>
where
    A: cpr_algebra::RoutingAlgebra,
    F: Fn(NodeId, NodeId) -> Option<A::W>,
{
    run_chaos_sync_obs(sim, schedule, opts, &cpr_obs::Obs::disabled())
}

/// [`run_chaos_sync`], recording every recovery segment into `obs`:
/// per-event `chaos.settle_steps` / `chaos.settle_messages` histograms
/// (the registry-side twin of [`RecoveryReport::settle_steps_histogram`]),
/// transient blackhole/loop exposure counters, oscillation and
/// non-quiescence counters, and one trace span per injected fault.
///
/// # Errors
///
/// Returns the first [`SimError`] of a malformed event.
pub fn run_chaos_sync_obs<A, F>(
    sim: &mut crate::Simulator<'_, A, F>,
    schedule: &FaultSchedule,
    opts: &ChaosOptions,
    obs: &cpr_obs::Obs,
) -> Result<RecoveryReport, SimError>
where
    A: cpr_algebra::RoutingAlgebra,
    F: Fn(NodeId, NodeId) -> Option<A::W>,
{
    let initial = settle_sync(sim, opts.round_budget);
    record_initial_settle(obs, &initial);
    let mut events = Vec::with_capacity(schedule.events.len());
    for event in &schedule.events {
        let span = obs.span(
            "chaos.event",
            &[("event", cpr_obs::Json::str(event.to_string()))],
        );
        apply_sync(sim, event)?;
        let transient = audit_forwarding(sim);
        let settle = settle_sync(sim, opts.round_budget);
        let after = audit_forwarding(sim);
        drop(span);
        let rec = EventRecovery {
            event: event.clone(),
            transient_blackholes: transient.blackholed.len(),
            transient_loops: transient.looping.len(),
            settle,
            blackholes: after.blackholed.len(),
            loops: after.looping.len(),
        };
        record_event_recovery(obs, &rec);
        events.push(rec);
    }
    Ok(RecoveryReport { initial, events })
}

/// One event's recovery metrics into the registry.
fn record_event_recovery(obs: &cpr_obs::Obs, rec: &EventRecovery) {
    obs.incr("chaos.events");
    obs.record("chaos.settle_steps", rec.settle.steps);
    obs.record("chaos.settle_messages", rec.settle.messages);
    obs.add(
        "chaos.transient_blackholes",
        rec.transient_blackholes as u64,
    );
    obs.add("chaos.transient_loops", rec.transient_loops as u64);
    obs.add("chaos.residual_blackholes", rec.blackholes as u64);
    obs.add("chaos.residual_loops", rec.loops as u64);
    if rec.settle.oscillating {
        obs.incr("chaos.oscillations");
    }
    if !rec.settle.quiesced {
        obs.incr("chaos.non_quiescent_settles");
    }
}

/// The cold-start settle's metrics into the registry.
fn record_initial_settle(obs: &cpr_obs::Obs, initial: &Settle) {
    obs.record("chaos.initial_settle_steps", initial.steps);
    obs.add("chaos.initial_settle_messages", initial.messages);
    if initial.oscillating {
        obs.incr("chaos.oscillations");
    }
}

fn apply_sync<A, F>(
    sim: &mut crate::Simulator<'_, A, F>,
    event: &FaultEvent,
) -> Result<(), SimError>
where
    A: cpr_algebra::RoutingAlgebra,
    F: Fn(NodeId, NodeId) -> Option<A::W>,
{
    match event {
        FaultEvent::FailLink { u, v } => sim.fail_link(*u, *v),
        FaultEvent::RestoreLink { u, v } => sim.restore_link(*u, *v),
        FaultEvent::CrashNode { node } => sim.crash_node(*node),
        FaultEvent::Partition { side } => {
            check_side(sim.graph(), side)?;
            for (_, u, v) in crossing_edges(sim.graph(), side) {
                if sim.link_up(u, v)? {
                    sim.fail_link(u, v)?;
                }
            }
            Ok(())
        }
        FaultEvent::HealPartition { side } => {
            check_side(sim.graph(), side)?;
            for (_, u, v) in crossing_edges(sim.graph(), side) {
                if !sim.link_up(u, v)? {
                    sim.restore_link(u, v)?;
                }
            }
            Ok(())
        }
        // Lock-step rounds have no message channel to perturb.
        FaultEvent::PerturbLink { .. } | FaultEvent::CalmLink { .. } => Ok(()),
    }
}

fn settle_sync<A, F>(sim: &mut crate::Simulator<'_, A, F>, round_budget: u32) -> Settle
where
    A: cpr_algebra::RoutingAlgebra,
    F: Fn(NodeId, NodeId) -> Option<A::W>,
{
    let mut seen = HashSet::new();
    seen.insert(sim.rib_fingerprint());
    let mut settle = Settle::default();
    for _ in 0..round_budget {
        let delta = sim.step_round();
        settle.steps += 1;
        settle.messages += delta.messages;
        if delta.changed == 0 {
            settle.quiesced = true;
            break;
        }
        if !seen.insert(sim.rib_fingerprint()) {
            // The simulator is a deterministic function of the RIB
            // state: a revisited state while routes still change is a
            // proven cycle — stop now instead of spinning to budget.
            settle.oscillating = true;
            break;
        }
    }
    settle
}

fn check_side(graph: &Graph, side: &[NodeId]) -> Result<(), SimError> {
    let n = graph.node_count();
    match side.iter().find(|&&v| v >= n) {
        Some(&node) => Err(SimError::NodeOutOfBounds { node }),
        None => Ok(()),
    }
}

/// The asynchronous counterpart of [`run_chaos_sync`]. Message delays,
/// losses and duplications draw from `rng`; the whole run is a pure
/// function of the seed. Oscillation is flagged when a settle phase
/// exhausts its delivery budget (the event queue has no finite global
/// state to fingerprint).
///
/// # Errors
///
/// Returns the first [`SimError`] of a malformed event.
pub fn run_chaos_async<A, F, R>(
    sim: &mut crate::AsyncSimulator<'_, A, F>,
    schedule: &FaultSchedule,
    rng: &mut R,
    opts: &ChaosOptions,
) -> Result<RecoveryReport, SimError>
where
    A: cpr_algebra::RoutingAlgebra,
    F: Fn(NodeId, NodeId) -> Option<A::W>,
    R: Rng + ?Sized,
{
    run_chaos_async_obs(sim, schedule, rng, opts, &cpr_obs::Obs::disabled())
}

/// [`run_chaos_async`] with recovery metrics recorded into `obs` — the
/// asynchronous twin of [`run_chaos_sync_obs`] (settle steps here are
/// message deliveries, not rounds).
///
/// # Errors
///
/// Returns the first [`SimError`] of a malformed event.
pub fn run_chaos_async_obs<A, F, R>(
    sim: &mut crate::AsyncSimulator<'_, A, F>,
    schedule: &FaultSchedule,
    rng: &mut R,
    opts: &ChaosOptions,
    obs: &cpr_obs::Obs,
) -> Result<RecoveryReport, SimError>
where
    A: cpr_algebra::RoutingAlgebra,
    F: Fn(NodeId, NodeId) -> Option<A::W>,
    R: Rng + ?Sized,
{
    let initial = settle_async(sim, rng, opts.event_budget);
    record_initial_settle(obs, &initial);
    let mut events = Vec::with_capacity(schedule.events.len());
    for event in &schedule.events {
        let span = obs.span(
            "chaos.event",
            &[("event", cpr_obs::Json::str(event.to_string()))],
        );
        apply_async(sim, event, rng)?;
        let transient = audit_forwarding(sim);
        let settle = settle_async(sim, rng, opts.event_budget);
        let after = audit_forwarding(sim);
        drop(span);
        let rec = EventRecovery {
            event: event.clone(),
            transient_blackholes: transient.blackholed.len(),
            transient_loops: transient.looping.len(),
            settle,
            blackholes: after.blackholed.len(),
            loops: after.looping.len(),
        };
        record_event_recovery(obs, &rec);
        events.push(rec);
    }
    Ok(RecoveryReport { initial, events })
}

fn apply_async<A, F, R>(
    sim: &mut crate::AsyncSimulator<'_, A, F>,
    event: &FaultEvent,
    rng: &mut R,
) -> Result<(), SimError>
where
    A: cpr_algebra::RoutingAlgebra,
    F: Fn(NodeId, NodeId) -> Option<A::W>,
    R: Rng + ?Sized,
{
    match event {
        FaultEvent::FailLink { u, v } => sim.fail_link(*u, *v, rng),
        FaultEvent::RestoreLink { u, v } => sim.restore_link(*u, *v, rng),
        FaultEvent::CrashNode { node } => sim.crash_node(*node, rng),
        FaultEvent::Partition { side } => {
            check_side(sim.graph(), side)?;
            for (_, u, v) in crossing_edges(sim.graph(), side) {
                if sim.link_up(u, v)? {
                    sim.fail_link(u, v, rng)?;
                }
            }
            Ok(())
        }
        FaultEvent::HealPartition { side } => {
            check_side(sim.graph(), side)?;
            for (_, u, v) in crossing_edges(sim.graph(), side) {
                if !sim.link_up(u, v)? {
                    sim.restore_link(u, v, rng)?;
                }
            }
            Ok(())
        }
        FaultEvent::PerturbLink { u, v, chaos } => sim.set_link_chaos(*u, *v, *chaos),
        FaultEvent::CalmLink { u, v } => sim.clear_link_chaos(*u, *v),
    }
}

fn settle_async<A, F, R>(
    sim: &mut crate::AsyncSimulator<'_, A, F>,
    rng: &mut R,
    event_budget: u64,
) -> Settle
where
    A: cpr_algebra::RoutingAlgebra,
    F: Fn(NodeId, NodeId) -> Option<A::W>,
    R: Rng + ?Sized,
{
    let report = sim.run(rng, event_budget);
    Settle {
        steps: report.events,
        messages: report.events,
        quiesced: report.converged,
        oscillating: !report.converged,
    }
}
