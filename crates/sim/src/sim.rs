//! A synchronous path-vector protocol simulator.
//!
//! The paper grounds its algebra semantics in path-vector protocols: link
//! weights compose from the destination towards the source (§5), and
//! regular algebras are exactly the ones a distributed, destination-based
//! protocol can implement (§2.4). This simulator runs the protocol
//! directly: every node keeps a RIB with its selected route per
//! destination, advertises changes to its neighbours each round, extends
//! received routes with the incoming arc's weight (right-associatively),
//! discards routes whose AS-path already contains it (loop prevention),
//! and selects per destination by the algebra's preference.
//!
//! Arc weights come from a caller-supplied function, so the same engine
//! runs symmetric intra-domain weightings and asymmetric BGP-style arc
//! words; arcs may be absent in one direction (`None`).

use std::cmp::Ordering;

use cpr_algebra::{PathWeight, RoutingAlgebra};
use cpr_graph::{EdgeId, Graph, NodeId};

use crate::fault::{Fnv, RibSnapshot, SimError};

/// A selected route in a node's RIB.
#[derive(Clone, Debug, PartialEq)]
pub struct Route<W> {
    /// The route's weight under the protocol's algebra.
    pub weight: W,
    /// The full node path `[self, …, destination]` (path-vector loop
    /// prevention needs it, exactly like BGP's AS-path).
    pub path: Vec<NodeId>,
}

impl<W> Route<W> {
    /// The next hop (the second node on the path), or `None` for a
    /// degenerate single-node path — a self-route carries no hop, and
    /// indexing `path[1]` used to panic on it.
    pub fn next_hop(&self) -> Option<NodeId> {
        self.path.get(1).copied()
    }
}

/// What one synchronous round changed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundDelta {
    /// RIB entries that changed this round.
    pub changed: u64,
    /// RIB entries that were *withdrawn* this round (a selected route
    /// disappeared with no replacement — the `changed` subset that went
    /// from `Some` to `None`).
    pub withdrawn: u64,
    /// Route advertisements sent (changed routes × neighbours).
    pub messages: u64,
}

/// Statistics of a convergence run.
///
/// Marked `#[must_use]`: a run that hits the round cutoff is
/// indistinguishable from success unless the caller checks `converged`.
#[must_use = "check `converged` — hitting the round budget looks like success otherwise"]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// Rounds executed until no RIB changed (or the cutoff).
    pub rounds: u32,
    /// Total route advertisements sent (changed routes × neighbours).
    pub messages: u64,
    /// Whether a fixpoint was reached within the round budget.
    pub converged: bool,
}

/// The synchronous path-vector simulator. See module docs.
///
/// # Examples
///
/// ```
/// use cpr_algebra::policies::ShortestPath;
/// use cpr_graph::{generators, EdgeWeights};
/// use cpr_sim::Simulator;
///
/// let g = generators::cycle(6);
/// let w = EdgeWeights::uniform(&g, 1u64);
/// let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
/// let report = sim.run_to_convergence(100);
/// assert!(report.converged);
/// assert_eq!(sim.route(0, 3).unwrap().weight, 3);
/// ```
pub struct Simulator<'a, A: RoutingAlgebra, F> {
    graph: &'a Graph,
    alg: &'a A,
    arc_weight: F,
    /// `rib[u][t]`: `u`'s selected route to `t`.
    rib: Vec<Vec<Option<Route<A::W>>>>,
    /// Links administratively down (by edge id).
    down: Vec<bool>,
    total_messages: u64,
}

impl<'a, A, F> Simulator<'a, A, F>
where
    A: RoutingAlgebra,
    F: Fn(NodeId, NodeId) -> Option<A::W>,
{
    /// Creates a simulator with an explicit arc-weight function
    /// (`arc_weight(u, v)` is the weight of traversing `u → v`, `None`
    /// when that direction is not traversable).
    pub fn new(graph: &'a Graph, alg: &'a A, arc_weight: F) -> Self {
        let n = graph.node_count();
        Simulator {
            graph,
            alg,
            arc_weight,
            rib: vec![vec![None; n]; n],
            down: vec![false; graph.edge_count()],
            total_messages: 0,
        }
    }

    /// The selected route of `u` towards `t`, if any.
    pub fn route(&self, u: NodeId, t: NodeId) -> Option<&Route<A::W>> {
        self.rib[u][t].as_ref()
    }

    /// The weight of `u`'s route to `t` as a [`PathWeight`].
    pub fn weight(&self, u: NodeId, t: NodeId) -> PathWeight<A::W> {
        self.rib[u][t].as_ref().map(|r| r.weight.clone()).into()
    }

    /// Messages sent since construction.
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// The simulated topology.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Whether the link between `u` and `v` is currently up.
    ///
    /// # Errors
    ///
    /// [`SimError::NotAnEdge`] when `{u, v}` is not an edge.
    pub fn link_up(&self, u: NodeId, v: NodeId) -> Result<bool, SimError> {
        let e = self.edge(u, v)?;
        Ok(!self.down[e])
    }

    fn edge(&self, u: NodeId, v: NodeId) -> Result<EdgeId, SimError> {
        self.graph
            .edge_between(u, v)
            .ok_or(SimError::NotAnEdge { u, v })
    }

    /// Marks the link between `u` and `v` as failed and flushes every RIB
    /// route whose path used it; the next
    /// [`run_to_convergence`](Self::run_to_convergence) re-converges.
    ///
    /// # Errors
    ///
    /// [`SimError::NotAnEdge`] when `{u, v}` is not an edge (this used
    /// to panic — fault schedules are data, so it must be reportable).
    pub fn fail_link(&mut self, u: NodeId, v: NodeId) -> Result<(), SimError> {
        let e = self.edge(u, v)?;
        self.down[e] = true;
        for rib in &mut self.rib {
            for slot in rib.iter_mut() {
                let uses = slot.as_ref().is_some_and(|r| {
                    r.path
                        .windows(2)
                        .any(|h| (h[0] == u && h[1] == v) || (h[0] == v && h[1] == u))
                });
                if uses {
                    *slot = None;
                }
            }
        }
        Ok(())
    }

    /// Restores a previously failed link.
    ///
    /// # Errors
    ///
    /// [`SimError::NotAnEdge`] when `{u, v}` is not an edge.
    pub fn restore_link(&mut self, u: NodeId, v: NodeId) -> Result<(), SimError> {
        let e = self.edge(u, v)?;
        self.down[e] = false;
        Ok(())
    }

    /// Crashes and immediately restarts `node`: its RIB is flushed, as
    /// if the router rebooted and lost all protocol state. Neighbours
    /// still hold (now stale) routes through it — the audit right after
    /// sees those as transient blackholes, and the next rounds heal them
    /// because every node re-selects from scratch each round.
    ///
    /// # Errors
    ///
    /// [`SimError::NodeOutOfBounds`] when `node` is not in the graph.
    pub fn crash_node(&mut self, node: NodeId) -> Result<(), SimError> {
        if node >= self.graph.node_count() {
            return Err(SimError::NodeOutOfBounds { node });
        }
        for slot in self.rib[node].iter_mut() {
            *slot = None;
        }
        Ok(())
    }

    /// FNV-1a fingerprint of the global RIB state (all selected paths).
    /// Two equal fingerprints (modulo hashing) mean the same state; the
    /// simulator is deterministic, so a revisited state proves the run
    /// cycles — the chaos runner's oscillation detector builds on this.
    /// Paths suffice: given the fixed arc function, a route's weight is
    /// a function of its path.
    pub fn rib_fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for rib in &self.rib {
            for slot in rib {
                match slot {
                    None => h.word(u64::MAX),
                    Some(r) => {
                        h.word(r.path.len() as u64);
                        for &v in &r.path {
                            h.word(v as u64);
                        }
                    }
                }
            }
        }
        h.finish()
    }

    fn arc(&self, u: NodeId, v: NodeId) -> Option<A::W> {
        let e = self.graph.edge_between(u, v)?;
        if self.down[e] {
            return None;
        }
        (self.arc_weight)(u, v)
    }

    /// `true` when `cand` should replace `cur` (preference, then shorter
    /// path, then smaller next hop — deterministic).
    fn better(&self, cand: &Route<A::W>, cur: &Option<Route<A::W>>) -> bool {
        match cur {
            None => true,
            Some(cur) => match self.alg.compare(&cand.weight, &cur.weight) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => {
                    cand.path.len() < cur.path.len()
                        || (cand.path.len() == cur.path.len() && cand.path.get(1) < cur.path.get(1))
                }
            },
        }
    }

    /// Executes one synchronous round: every node re-selects each
    /// destination from its neighbours' *previous-round* routes (Jacobi
    /// iteration — the message-accurate model of simultaneous
    /// advertisement exchange). Returns what changed; `changed == 0`
    /// means the protocol is at a fixpoint.
    pub fn step_round(&mut self) -> RoundDelta {
        let n = self.graph.node_count();
        let mut next = self.rib.clone();
        let mut delta = RoundDelta::default();
        for u in 0..n {
            for t in 0..n {
                if t == u {
                    continue;
                }
                // Re-select from scratch among current advertisements.
                let mut best: Option<Route<A::W>> = None;
                for (v, _) in self.graph.neighbors(u) {
                    let Some(w_uv) = self.arc(u, v) else { continue };
                    let cand = if v == t {
                        Some(Route {
                            weight: w_uv,
                            path: vec![u, t],
                        })
                    } else {
                        self.rib[v][t].as_ref().and_then(|r| {
                            if r.path.contains(&u) {
                                return None; // loop prevention
                            }
                            match self.alg.combine(&w_uv, &r.weight) {
                                PathWeight::Finite(w) => {
                                    let mut path = Vec::with_capacity(r.path.len() + 1);
                                    path.push(u);
                                    path.extend_from_slice(&r.path);
                                    Some(Route { weight: w, path })
                                }
                                PathWeight::Infinite => None,
                            }
                        })
                    };
                    if let Some(cand) = cand {
                        if self.better(&cand, &best) {
                            best = Some(cand);
                        }
                    }
                }
                if next[u][t] != best {
                    delta.changed += 1;
                    if best.is_none() {
                        delta.withdrawn += 1;
                    }
                    // Each changed route is advertised to every neighbour.
                    delta.messages += self.graph.degree(u) as u64;
                    next[u][t] = best;
                }
            }
        }
        self.rib = next;
        self.total_messages += delta.messages;
        delta
    }

    /// Runs synchronous rounds until no RIB changes or `max_rounds` is
    /// hit. See [`step_round`](Self::step_round) for round semantics.
    pub fn run_to_convergence(&mut self, max_rounds: u32) -> ConvergenceReport {
        self.run_to_convergence_obs(max_rounds, &cpr_obs::Obs::disabled())
    }

    /// [`run_to_convergence`](Self::run_to_convergence), recording round
    /// metrics into `obs`: `sim.messages` / `sim.withdrawals` /
    /// `sim.rounds` counters, per-round `sim.rib_changes_per_round` and
    /// `sim.messages_per_round` histograms, and on a reached fixpoint
    /// the run's round count into the `sim.convergence_rounds`
    /// histogram (a budget cutoff increments `sim.convergence_timeouts`
    /// instead). All of these are logical quantities, safe for pinned
    /// registry snapshots.
    pub fn run_to_convergence_obs(
        &mut self,
        max_rounds: u32,
        obs: &cpr_obs::Obs,
    ) -> ConvergenceReport {
        let mut rounds = 0;
        let mut converged = false;
        let mut messages = 0u64;
        while rounds < max_rounds {
            rounds += 1;
            let delta = self.step_round();
            messages += delta.messages;
            obs.add("sim.messages", delta.messages);
            obs.add("sim.withdrawals", delta.withdrawn);
            obs.record("sim.rib_changes_per_round", delta.changed);
            obs.record("sim.messages_per_round", delta.messages);
            if delta.changed == 0 {
                converged = true;
                break;
            }
        }
        obs.add("sim.rounds", u64::from(rounds));
        if converged {
            obs.record("sim.convergence_rounds", u64::from(rounds));
        } else {
            obs.incr("sim.convergence_timeouts");
        }
        ConvergenceReport {
            rounds,
            messages,
            converged,
        }
    }
}

impl<A, F> RibSnapshot for Simulator<'_, A, F>
where
    A: RoutingAlgebra,
    F: Fn(NodeId, NodeId) -> Option<A::W>,
{
    fn graph(&self) -> &Graph {
        self.graph
    }

    fn edge_up(&self, e: EdgeId) -> bool {
        !self.down[e]
    }

    fn route_path(&self, u: NodeId, t: NodeId) -> Option<&[NodeId]> {
        self.rib[u][t].as_ref().map(|r| r.path.as_slice())
    }
}

impl<'a, A> Simulator<'a, A, Box<dyn Fn(NodeId, NodeId) -> Option<A::W> + 'a>>
where
    A: RoutingAlgebra,
{
    /// Convenience constructor for symmetric intra-domain weightings: both
    /// directions of every edge carry the edge's weight.
    pub fn from_edge_weights(
        graph: &'a Graph,
        alg: &'a A,
        weights: &'a cpr_graph::EdgeWeights<A::W>,
    ) -> Self {
        let f: Box<dyn Fn(NodeId, NodeId) -> Option<A::W> + 'a> =
            Box::new(move |u, v| graph.edge_between(u, v).map(|e| weights.weight(e).clone()));
        Simulator::new(graph, alg, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_algebra::policies::{self, ShortestPath, WidestPath};

    use cpr_graph::{generators, EdgeWeights};
    use cpr_paths::dijkstra;
    use rand::SeedableRng;

    #[test]
    fn converges_to_dijkstra_weights_shortest_path() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1000);
        let g = generators::gnp_connected(25, 0.15, &mut rng);
        let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
        let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
        let report = sim.run_to_convergence(200);
        assert!(report.converged);
        for t in g.nodes() {
            let tree = dijkstra(&g, &w, &ShortestPath, t);
            for u in g.nodes() {
                if u == t {
                    continue;
                }
                // Undirected symmetric weights: dist(u→t) = dist(t→u).
                assert_eq!(
                    ShortestPath.compare_pw(&sim.weight(u, t), tree.weight(u)),
                    Ordering::Equal,
                    "{u} → {t}"
                );
            }
        }
    }

    #[test]
    fn converges_for_widest_and_ws() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1001);
        let g = generators::barabasi_albert(20, 2, &mut rng);
        let wp = EdgeWeights::random(&g, &WidestPath, &mut rng);
        let mut sim = Simulator::from_edge_weights(&g, &WidestPath, &wp);
        assert!(sim.run_to_convergence(200).converged);
        let ws = policies::widest_shortest();
        let www = EdgeWeights::random(&g, &ws, &mut rng);
        let mut sim2 = Simulator::from_edge_weights(&g, &ws, &www);
        assert!(sim2.run_to_convergence(200).converged);
        for t in g.nodes() {
            let tree = dijkstra(&g, &www, &ws, t);
            for u in g.nodes() {
                if u != t {
                    assert_eq!(
                        ws.compare_pw(&sim2.weight(u, t), tree.weight(u)),
                        Ordering::Equal
                    );
                }
            }
        }
    }

    #[test]
    fn information_travels_one_hop_per_round() {
        let g = generators::path(8);
        let w = EdgeWeights::uniform(&g, 1u64);
        let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
        let report = sim.run_to_convergence(100);
        // Needs at least diameter rounds plus the quiet confirmation one.
        assert!(report.rounds >= 7, "rounds = {}", report.rounds);
        assert!(report.messages > 0);
        assert_eq!(sim.total_messages(), report.messages);
    }

    #[test]
    fn link_failure_reconverges_correctly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1002);
        let g = generators::gnp_connected(15, 0.3, &mut rng);
        let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
        let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
        assert!(sim.run_to_convergence(200).converged);
        // Fail an edge whose removal keeps the graph connected.
        let (fail_e, (fu, fv)) = g
            .edges()
            .find(|&(e, _)| {
                let g2 = Graph::from_edges(
                    g.node_count(),
                    g.edges().filter(|&(e2, _)| e2 != e).map(|(_, uv)| uv),
                )
                .unwrap();
                cpr_graph::traversal::is_connected(&g2)
            })
            .expect("some non-bridge edge");
        sim.fail_link(fu, fv).unwrap();
        assert!(sim.run_to_convergence(300).converged);
        // Ground truth on the reduced graph.
        let g2 = Graph::from_edges(
            g.node_count(),
            g.edges().filter(|&(e2, _)| e2 != fail_e).map(|(_, uv)| uv),
        )
        .unwrap();
        let w2 = EdgeWeights::from_vec(
            &g2,
            g.edges()
                .filter(|&(e2, _)| e2 != fail_e)
                .map(|(e2, _)| *w.weight(e2))
                .collect(),
        );
        for t in g2.nodes() {
            let tree = dijkstra(&g2, &w2, &ShortestPath, t);
            for u in g2.nodes() {
                if u != t {
                    assert_eq!(
                        ShortestPath.compare_pw(&sim.weight(u, t), tree.weight(u)),
                        Ordering::Equal,
                        "{u} → {t} after failure"
                    );
                }
            }
        }
        // Restoring the link converges back to the original weights.
        sim.restore_link(fu, fv).unwrap();
        assert!(sim.run_to_convergence(300).converged);
        let tree = dijkstra(&g, &w, &ShortestPath, 0);
        for u in g.nodes() {
            if u != 0 {
                assert_eq!(
                    ShortestPath.compare_pw(&sim.weight(u, 0), tree.weight(u)),
                    Ordering::Equal
                );
            }
        }
    }

    #[test]
    fn asymmetric_arcs_respected() {
        // A 3-cycle where one direction of an edge is unusable: 0→1 only.
        let g = generators::cycle(3);
        let alg = ShortestPath;
        let arc = |u: NodeId, v: NodeId| -> Option<u64> {
            g.edge_between(u, v)?;
            if (u, v) == (1, 0) {
                None // one-way street
            } else {
                Some(1)
            }
        };
        let mut sim = Simulator::new(&g, &alg, arc);
        assert!(sim.run_to_convergence(50).converged);
        // 1 cannot use the direct arc to 0; it goes 1 → 2 → 0.
        assert_eq!(sim.route(1, 0).unwrap().path, vec![1, 2, 0]);
        // 0 still uses the direct arc to 1.
        assert_eq!(sim.route(0, 1).unwrap().path, vec![0, 1]);
    }

    #[test]
    fn routes_expose_next_hop() {
        let g = generators::path(3);
        let w = EdgeWeights::uniform(&g, 2u64);
        let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
        assert!(sim.run_to_convergence(50).converged);
        assert_eq!(sim.route(0, 2).unwrap().next_hop(), Some(1));
        assert_eq!(sim.route(0, 2).unwrap().weight, 4);
        assert!(sim.route(0, 0).is_none());
        // Degenerate single-node paths carry no hop instead of panicking.
        let trivial = Route {
            weight: 0u64,
            path: vec![2],
        };
        assert_eq!(trivial.next_hop(), None);
    }

    #[test]
    fn fault_api_rejects_non_edges() {
        let g = generators::path(4); // edges: 0-1, 1-2, 2-3
        let w = EdgeWeights::uniform(&g, 1u64);
        let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
        assert_eq!(
            sim.fail_link(0, 3),
            Err(crate::SimError::NotAnEdge { u: 0, v: 3 })
        );
        assert_eq!(
            sim.restore_link(3, 0),
            Err(crate::SimError::NotAnEdge { u: 3, v: 0 })
        );
        assert_eq!(
            sim.crash_node(9),
            Err(crate::SimError::NodeOutOfBounds { node: 9 })
        );
        assert!(sim.link_up(0, 1).unwrap());
        sim.fail_link(0, 1).unwrap();
        assert!(!sim.link_up(0, 1).unwrap());
    }

    #[test]
    fn crash_node_flushes_rib_and_recovers() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1003);
        let g = generators::gnp_connected(12, 0.3, &mut rng);
        let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
        let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
        assert!(sim.run_to_convergence(200).converged);
        let before = sim.rib_fingerprint();
        sim.crash_node(3).unwrap();
        assert!(g
            .nodes()
            .filter(|&t| t != 3)
            .all(|t| sim.route(3, t).is_none()));
        assert!(sim.run_to_convergence(200).converged);
        // Same topology, deterministic tie-breaks: the fixpoint returns.
        assert_eq!(sim.rib_fingerprint(), before);
    }

    use cpr_graph::Graph;
}
