//! A synchronous path-vector protocol simulator.
//!
//! The paper grounds its algebra semantics in path-vector protocols: link
//! weights compose from the destination towards the source (§5), and
//! regular algebras are exactly the ones a distributed, destination-based
//! protocol can implement (§2.4). This simulator runs the protocol
//! directly: every node keeps a RIB with its selected route per
//! destination, advertises changes to its neighbours each round, extends
//! received routes with the incoming arc's weight (right-associatively),
//! discards routes whose AS-path already contains it (loop prevention),
//! and selects per destination by the algebra's preference.
//!
//! Arc weights come from a caller-supplied function, so the same engine
//! runs symmetric intra-domain weightings and asymmetric BGP-style arc
//! words; arcs may be absent in one direction (`None`).

use std::cmp::Ordering;

use cpr_algebra::{PathWeight, RoutingAlgebra};
use cpr_graph::{Graph, NodeId};

/// A selected route in a node's RIB.
#[derive(Clone, Debug, PartialEq)]
pub struct Route<W> {
    /// The route's weight under the protocol's algebra.
    pub weight: W,
    /// The full node path `[self, …, destination]` (path-vector loop
    /// prevention needs it, exactly like BGP's AS-path).
    pub path: Vec<NodeId>,
}

impl<W> Route<W> {
    /// The next hop (the second node on the path).
    pub fn next_hop(&self) -> NodeId {
        self.path[1]
    }
}

/// Statistics of a convergence run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// Rounds executed until no RIB changed (or the cutoff).
    pub rounds: u32,
    /// Total route advertisements sent (changed routes × neighbours).
    pub messages: u64,
    /// Whether a fixpoint was reached within the round budget.
    pub converged: bool,
}

/// The synchronous path-vector simulator. See module docs.
///
/// # Examples
///
/// ```
/// use cpr_algebra::policies::ShortestPath;
/// use cpr_graph::{generators, EdgeWeights};
/// use cpr_sim::Simulator;
///
/// let g = generators::cycle(6);
/// let w = EdgeWeights::uniform(&g, 1u64);
/// let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
/// let report = sim.run_to_convergence(100);
/// assert!(report.converged);
/// assert_eq!(sim.route(0, 3).unwrap().weight, 3);
/// ```
pub struct Simulator<'a, A: RoutingAlgebra, F> {
    graph: &'a Graph,
    alg: &'a A,
    arc_weight: F,
    /// `rib[u][t]`: `u`'s selected route to `t`.
    rib: Vec<Vec<Option<Route<A::W>>>>,
    /// Links administratively down (by edge id).
    down: Vec<bool>,
    total_messages: u64,
}

impl<'a, A, F> Simulator<'a, A, F>
where
    A: RoutingAlgebra,
    F: Fn(NodeId, NodeId) -> Option<A::W>,
{
    /// Creates a simulator with an explicit arc-weight function
    /// (`arc_weight(u, v)` is the weight of traversing `u → v`, `None`
    /// when that direction is not traversable).
    pub fn new(graph: &'a Graph, alg: &'a A, arc_weight: F) -> Self {
        let n = graph.node_count();
        Simulator {
            graph,
            alg,
            arc_weight,
            rib: vec![vec![None; n]; n],
            down: vec![false; graph.edge_count()],
            total_messages: 0,
        }
    }

    /// The selected route of `u` towards `t`, if any.
    pub fn route(&self, u: NodeId, t: NodeId) -> Option<&Route<A::W>> {
        self.rib[u][t].as_ref()
    }

    /// The weight of `u`'s route to `t` as a [`PathWeight`].
    pub fn weight(&self, u: NodeId, t: NodeId) -> PathWeight<A::W> {
        self.rib[u][t].as_ref().map(|r| r.weight.clone()).into()
    }

    /// Messages sent since construction.
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Marks the link between `u` and `v` as failed and flushes every RIB
    /// route whose path used it; the next
    /// [`run_to_convergence`](Self::run_to_convergence) re-converges.
    ///
    /// # Panics
    ///
    /// Panics if `{u, v}` is not an edge.
    pub fn fail_link(&mut self, u: NodeId, v: NodeId) {
        let e = self
            .graph
            .edge_between(u, v)
            .expect("failed link must exist");
        self.down[e] = true;
        for rib in &mut self.rib {
            for slot in rib.iter_mut() {
                let uses = slot.as_ref().is_some_and(|r| {
                    r.path
                        .windows(2)
                        .any(|h| (h[0] == u && h[1] == v) || (h[0] == v && h[1] == u))
                });
                if uses {
                    *slot = None;
                }
            }
        }
    }

    /// Restores a previously failed link.
    ///
    /// # Panics
    ///
    /// Panics if `{u, v}` is not an edge.
    pub fn restore_link(&mut self, u: NodeId, v: NodeId) {
        let e = self
            .graph
            .edge_between(u, v)
            .expect("restored link must exist");
        self.down[e] = false;
    }

    fn arc(&self, u: NodeId, v: NodeId) -> Option<A::W> {
        let e = self.graph.edge_between(u, v)?;
        if self.down[e] {
            return None;
        }
        (self.arc_weight)(u, v)
    }

    /// `true` when `cand` should replace `cur` (preference, then shorter
    /// path, then smaller next hop — deterministic).
    fn better(&self, cand: &Route<A::W>, cur: &Option<Route<A::W>>) -> bool {
        match cur {
            None => true,
            Some(cur) => match self.alg.compare(&cand.weight, &cur.weight) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => {
                    cand.path.len() < cur.path.len()
                        || (cand.path.len() == cur.path.len() && cand.next_hop() < cur.next_hop())
                }
            },
        }
    }

    /// Runs synchronous rounds until no RIB changes or `max_rounds` is
    /// hit. Each round every node re-selects each destination from its
    /// neighbours' *previous-round* routes (Jacobi iteration — the
    /// message-accurate model of simultaneous advertisement exchange).
    pub fn run_to_convergence(&mut self, max_rounds: u32) -> ConvergenceReport {
        let n = self.graph.node_count();
        let mut rounds = 0;
        let mut converged = false;
        let mut messages = 0u64;
        while rounds < max_rounds {
            rounds += 1;
            let mut next = self.rib.clone();
            let mut changed = 0u64;
            for u in 0..n {
                for t in 0..n {
                    if t == u {
                        continue;
                    }
                    // Re-select from scratch among current advertisements.
                    let mut best: Option<Route<A::W>> = None;
                    for (v, _) in self.graph.neighbors(u) {
                        let Some(w_uv) = self.arc(u, v) else { continue };
                        let cand = if v == t {
                            Some(Route {
                                weight: w_uv,
                                path: vec![u, t],
                            })
                        } else {
                            self.rib[v][t].as_ref().and_then(|r| {
                                if r.path.contains(&u) {
                                    return None; // loop prevention
                                }
                                match self.alg.combine(&w_uv, &r.weight) {
                                    PathWeight::Finite(w) => {
                                        let mut path = Vec::with_capacity(r.path.len() + 1);
                                        path.push(u);
                                        path.extend_from_slice(&r.path);
                                        Some(Route { weight: w, path })
                                    }
                                    PathWeight::Infinite => None,
                                }
                            })
                        };
                        if let Some(cand) = cand {
                            if self.better(&cand, &best) {
                                best = Some(cand);
                            }
                        }
                    }
                    if next[u][t] != best {
                        changed += 1;
                        next[u][t] = best;
                    }
                }
            }
            // Each changed route is advertised to every neighbour.
            for u in 0..n {
                for t in 0..n {
                    if next[u][t] != self.rib[u][t] {
                        messages += self.graph.degree(u) as u64;
                    }
                }
            }
            self.rib = next;
            if changed == 0 {
                converged = true;
                break;
            }
        }
        self.total_messages += messages;
        ConvergenceReport {
            rounds,
            messages,
            converged,
        }
    }
}

impl<'a, A> Simulator<'a, A, Box<dyn Fn(NodeId, NodeId) -> Option<A::W> + 'a>>
where
    A: RoutingAlgebra,
{
    /// Convenience constructor for symmetric intra-domain weightings: both
    /// directions of every edge carry the edge's weight.
    pub fn from_edge_weights(
        graph: &'a Graph,
        alg: &'a A,
        weights: &'a cpr_graph::EdgeWeights<A::W>,
    ) -> Self {
        let f: Box<dyn Fn(NodeId, NodeId) -> Option<A::W> + 'a> =
            Box::new(move |u, v| graph.edge_between(u, v).map(|e| weights.weight(e).clone()));
        Simulator::new(graph, alg, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_algebra::policies::{self, ShortestPath, WidestPath};

    use cpr_graph::{generators, EdgeWeights};
    use cpr_paths::dijkstra;
    use rand::SeedableRng;

    #[test]
    fn converges_to_dijkstra_weights_shortest_path() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1000);
        let g = generators::gnp_connected(25, 0.15, &mut rng);
        let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
        let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
        let report = sim.run_to_convergence(200);
        assert!(report.converged);
        for t in g.nodes() {
            let tree = dijkstra(&g, &w, &ShortestPath, t);
            for u in g.nodes() {
                if u == t {
                    continue;
                }
                // Undirected symmetric weights: dist(u→t) = dist(t→u).
                assert_eq!(
                    ShortestPath.compare_pw(&sim.weight(u, t), tree.weight(u)),
                    Ordering::Equal,
                    "{u} → {t}"
                );
            }
        }
    }

    #[test]
    fn converges_for_widest_and_ws() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1001);
        let g = generators::barabasi_albert(20, 2, &mut rng);
        let wp = EdgeWeights::random(&g, &WidestPath, &mut rng);
        let mut sim = Simulator::from_edge_weights(&g, &WidestPath, &wp);
        assert!(sim.run_to_convergence(200).converged);
        let ws = policies::widest_shortest();
        let www = EdgeWeights::random(&g, &ws, &mut rng);
        let mut sim2 = Simulator::from_edge_weights(&g, &ws, &www);
        assert!(sim2.run_to_convergence(200).converged);
        for t in g.nodes() {
            let tree = dijkstra(&g, &www, &ws, t);
            for u in g.nodes() {
                if u != t {
                    assert_eq!(
                        ws.compare_pw(&sim2.weight(u, t), tree.weight(u)),
                        Ordering::Equal
                    );
                }
            }
        }
    }

    #[test]
    fn information_travels_one_hop_per_round() {
        let g = generators::path(8);
        let w = EdgeWeights::uniform(&g, 1u64);
        let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
        let report = sim.run_to_convergence(100);
        // Needs at least diameter rounds plus the quiet confirmation one.
        assert!(report.rounds >= 7, "rounds = {}", report.rounds);
        assert!(report.messages > 0);
        assert_eq!(sim.total_messages(), report.messages);
    }

    #[test]
    fn link_failure_reconverges_correctly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1002);
        let g = generators::gnp_connected(15, 0.3, &mut rng);
        let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
        let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
        assert!(sim.run_to_convergence(200).converged);
        // Fail an edge whose removal keeps the graph connected.
        let (fail_e, (fu, fv)) = g
            .edges()
            .find(|&(e, _)| {
                let g2 = Graph::from_edges(
                    g.node_count(),
                    g.edges().filter(|&(e2, _)| e2 != e).map(|(_, uv)| uv),
                )
                .unwrap();
                cpr_graph::traversal::is_connected(&g2)
            })
            .expect("some non-bridge edge");
        sim.fail_link(fu, fv);
        assert!(sim.run_to_convergence(300).converged);
        // Ground truth on the reduced graph.
        let g2 = Graph::from_edges(
            g.node_count(),
            g.edges().filter(|&(e2, _)| e2 != fail_e).map(|(_, uv)| uv),
        )
        .unwrap();
        let w2 = EdgeWeights::from_vec(
            &g2,
            g.edges()
                .filter(|&(e2, _)| e2 != fail_e)
                .map(|(e2, _)| *w.weight(e2))
                .collect(),
        );
        for t in g2.nodes() {
            let tree = dijkstra(&g2, &w2, &ShortestPath, t);
            for u in g2.nodes() {
                if u != t {
                    assert_eq!(
                        ShortestPath.compare_pw(&sim.weight(u, t), tree.weight(u)),
                        Ordering::Equal,
                        "{u} → {t} after failure"
                    );
                }
            }
        }
        // Restoring the link converges back to the original weights.
        sim.restore_link(fu, fv);
        assert!(sim.run_to_convergence(300).converged);
        let tree = dijkstra(&g, &w, &ShortestPath, 0);
        for u in g.nodes() {
            if u != 0 {
                assert_eq!(
                    ShortestPath.compare_pw(&sim.weight(u, 0), tree.weight(u)),
                    Ordering::Equal
                );
            }
        }
    }

    #[test]
    fn asymmetric_arcs_respected() {
        // A 3-cycle where one direction of an edge is unusable: 0→1 only.
        let g = generators::cycle(3);
        let alg = ShortestPath;
        let arc = |u: NodeId, v: NodeId| -> Option<u64> {
            g.edge_between(u, v)?;
            if (u, v) == (1, 0) {
                None // one-way street
            } else {
                Some(1)
            }
        };
        let mut sim = Simulator::new(&g, &alg, arc);
        assert!(sim.run_to_convergence(50).converged);
        // 1 cannot use the direct arc to 0; it goes 1 → 2 → 0.
        assert_eq!(sim.route(1, 0).unwrap().path, vec![1, 2, 0]);
        // 0 still uses the direct arc to 1.
        assert_eq!(sim.route(0, 1).unwrap().path, vec![0, 1]);
    }

    #[test]
    fn routes_expose_next_hop() {
        let g = generators::path(3);
        let w = EdgeWeights::uniform(&g, 2u64);
        let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
        sim.run_to_convergence(50);
        assert_eq!(sim.route(0, 2).unwrap().next_hop(), 1);
        assert_eq!(sim.route(0, 2).unwrap().weight, 4);
        assert!(sim.route(0, 0).is_none());
    }

    use cpr_graph::Graph;
}
