//! # cpr-sim — a distributed path-vector protocol simulator
//!
//! Round-synchronous message-passing simulation of the path-vector
//! protocols that routing algebras model (paper §2.4 and §5): nodes
//! advertise selected routes, extend neighbours' routes with arc weights
//! right-associatively, drop loops via the carried path, and select by
//! the algebra's preference. Supports asymmetric arcs (BGP words),
//! convergence/message accounting, and link failure + re-convergence.
//!
//! The [`fault`] module adds a chaos harness on top: scripted or
//! seeded-random fault schedules (link flaps, node crash/restart,
//! partitions, per-link message loss/duplication/delay), recovery
//! audits that walk next-hops against current RIBs to count blackholes
//! and forwarding loops, and an oscillation detector that flags
//! non-quiescing (dispute-wheel) runs instead of spinning to budget.
//!
//! ```
//! use cpr_algebra::policies::ShortestPath;
//! use cpr_graph::{generators, EdgeWeights};
//! use cpr_sim::Simulator;
//!
//! let g = generators::grid(3, 3);
//! let w = EdgeWeights::uniform(&g, 1u64);
//! let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
//! let report = sim.run_to_convergence(100);
//! assert!(report.converged);
//! assert_eq!(sim.route(0, 8).unwrap().weight, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod async_sim;
pub mod churn;
pub mod fault;
mod sim;

pub use async_sim::{AsyncReport, AsyncSimulator};
pub use churn::{
    churn_schedule, churn_timeline, ChurnConfig, ChurnEvent, ChurnStep, ChurnTargeting,
};
pub use fault::{
    audit_forwarding, run_chaos_async, run_chaos_async_obs, run_chaos_sync, run_chaos_sync_obs,
    topology_timeline, Audit, ChaosOptions, EventRecovery, FaultEvent, FaultPlan, FaultSchedule,
    LinkChaos, RecoveryReport, RibSnapshot, Settle, SimError, StormConfig, TopologyStep,
};
pub use sim::{ConvergenceReport, RoundDelta, Route, Simulator};
