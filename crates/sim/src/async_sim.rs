//! An asynchronous, event-driven path-vector simulator.
//!
//! The synchronous [`Simulator`](crate::Simulator) models lock-step
//! rounds; real protocols deliver messages with arbitrary per-link
//! delays. This module runs the same path-vector protocol over a
//! discrete-event queue with (seeded) random delivery delays and
//! per-neighbour Adj-RIB-In state, exactly like a BGP speaker: a node
//! stores the latest advertisement from each neighbour per destination,
//! re-selects when one changes, and advertises its own selection to every
//! neighbour when — and only when — it changed.
//!
//! For the monotone algebras of the paper the protocol is safe: the
//! simulation quiesces, and the final RIBs must (and in the tests do)
//! agree with the synchronous fixpoint and the centralized solvers,
//! regardless of the delay schedule.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use cpr_algebra::{PathWeight, RoutingAlgebra};
use cpr_graph::{EdgeId, Graph, NodeId, Port};
use rand::Rng;

use crate::fault::{LinkChaos, RibSnapshot, SimError};
use crate::sim::Route;

/// Per-node Adj-RIB-In: `[port][destination] → latest advertisement`.
type AdjRibIn<W> = Vec<Vec<Option<Route<W>>>>;

/// Statistics of an asynchronous run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsyncReport {
    /// Events (message deliveries) processed.
    pub events: u64,
    /// Virtual time of the last delivery.
    pub quiesce_time: u64,
    /// Whether the queue drained before the event budget.
    pub converged: bool,
}

/// A queued message: `route` is the sender's selected route towards
/// `dest` (`None` = withdrawal).
#[derive(Clone, Debug)]
struct Message<W> {
    at: u64,
    seq: u64,
    from: NodeId,
    to: NodeId,
    dest: NodeId,
    route: Option<Route<W>>,
}

impl<W> PartialEq for Message<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Message<W> {}
impl<W> PartialOrd for Message<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Message<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first, with the
        // sequence number as a deterministic FIFO tie-break.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// The asynchronous path-vector simulator. See module docs.
///
/// # Examples
///
/// ```
/// use cpr_algebra::policies::ShortestPath;
/// use cpr_graph::{generators, EdgeWeights};
/// use cpr_sim::AsyncSimulator;
/// use rand::SeedableRng;
///
/// let g = generators::cycle(5);
/// let w = EdgeWeights::uniform(&g, 1u64);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut sim = AsyncSimulator::from_edge_weights(&g, &ShortestPath, &w, 10);
/// let report = sim.run(&mut rng, 1_000_000);
/// assert!(report.converged);
/// assert_eq!(sim.route(0, 2).unwrap().weight, 2);
/// ```
pub struct AsyncSimulator<'a, A: RoutingAlgebra, F> {
    graph: &'a Graph,
    alg: &'a A,
    arc_weight: F,
    max_delay: u64,
    /// `adj_in[u][port][t]`: the latest advertisement from the neighbour
    /// behind `port` for destination `t` (as *their* route).
    adj_in: Vec<AdjRibIn<A::W>>,
    /// `rib[u][t]`: `u`'s current selection.
    rib: Vec<Vec<Option<Route<A::W>>>>,
    queue: BinaryHeap<Message<A::W>>,
    /// `channel_clock[u][port]`: the delivery time of the last message
    /// scheduled on the channel `u → neighbour(port)`. Channels are FIFO
    /// (like the TCP sessions under BGP): a later advertisement is never
    /// delivered before an earlier one on the same channel, otherwise a
    /// stale route could overwrite a fresh one in the Adj-RIB-In.
    channel_clock: Vec<Vec<u64>>,
    /// Administratively-down links, by edge id: no messages cross them.
    down: Vec<bool>,
    /// Per-link perturbation (loss-as-retransmission, duplication, extra
    /// delay), by edge id.
    chaos: Vec<Option<LinkChaos>>,
    seq: u64,
    now: u64,
}

impl<'a, A, F> AsyncSimulator<'a, A, F>
where
    A: RoutingAlgebra,
    F: Fn(NodeId, NodeId) -> Option<A::W>,
{
    /// Creates the simulator and seeds the event queue with every node's
    /// self-origination (each node advertises itself to all neighbours at
    /// time 0…max_delay).
    pub fn new(graph: &'a Graph, alg: &'a A, arc_weight: F, max_delay: u64) -> Self {
        let n = graph.node_count();
        let adj_in: Vec<AdjRibIn<A::W>> = (0..n)
            .map(|u| vec![vec![None; n]; graph.degree(u)])
            .collect();
        let channel_clock = (0..n).map(|u| vec![0; graph.degree(u)]).collect();
        let mut sim = AsyncSimulator {
            graph,
            alg,
            arc_weight,
            max_delay: max_delay.max(1),
            adj_in,
            rib: vec![vec![None; n]; n],
            queue: BinaryHeap::new(),
            channel_clock,
            down: vec![false; graph.edge_count()],
            chaos: vec![None; graph.edge_count()],
            seq: 0,
            now: 0,
        };
        // Self-origination: destination v announces itself. Encoded as a
        // route with the trivial path [v]; receivers extend it with the
        // incoming arc.
        for v in 0..n {
            for (u, _) in graph.neighbors(v) {
                let msg = Message {
                    at: 0,
                    seq: sim.seq,
                    from: v,
                    to: u,
                    dest: v,
                    route: Some(Route {
                        // The weight field of a trivial route is never
                        // read (the receiver uses only the arc weight);
                        // carry the arc weight as a placeholder.
                        weight: (sim.arc_weight)(u, v).unwrap_or_else(|| {
                            // One-way arcs: the reverse direction may be
                            // absent; receivers check again anyway.
                            (sim.arc_weight)(v, u).expect("edge has some direction")
                        }),
                        path: vec![v],
                    }),
                };
                sim.seq += 1;
                sim.queue.push(msg);
            }
        }
        sim
    }

    /// The selected route of `u` towards `t`.
    pub fn route(&self, u: NodeId, t: NodeId) -> Option<&Route<A::W>> {
        self.rib[u][t].as_ref()
    }

    /// The weight of `u`'s route to `t` as a [`PathWeight`].
    pub fn weight(&self, u: NodeId, t: NodeId) -> PathWeight<A::W> {
        self.rib[u][t].as_ref().map(|r| r.weight.clone()).into()
    }

    /// Extends the advertised route with the incoming arc, or `None` when
    /// not traversable / looping.
    fn extend(&self, to: NodeId, from: NodeId, advert: &Route<A::W>) -> Option<Route<A::W>> {
        if advert.path.contains(&to) {
            return None;
        }
        let w_arc = (self.arc_weight)(to, from)?;
        let weight = if advert.path.len() == 1 {
            // Trivial origin route: the path weight is just the arc.
            w_arc
        } else {
            match self.alg.combine(&w_arc, &advert.weight) {
                PathWeight::Finite(w) => w,
                PathWeight::Infinite => return None,
            }
        };
        let mut path = Vec::with_capacity(advert.path.len() + 1);
        path.push(to);
        path.extend_from_slice(&advert.path);
        Some(Route { weight, path })
    }

    /// Re-selects `u`'s route for `dest` from the Adj-RIB-In; returns
    /// `true` when the selection changed.
    fn reselect(&mut self, u: NodeId, dest: NodeId) -> bool {
        let mut best: Option<Route<A::W>> = None;
        for (port, (v, edge)) in self.graph.neighbors(u).enumerate() {
            if self.down[edge] {
                continue;
            }
            let Some(advert) = self.adj_in[u][port][dest].clone() else {
                continue;
            };
            let _ = v;
            let Some(cand) = self.extend(u, advert.path[0], &advert) else {
                continue;
            };
            let better = match &best {
                None => true,
                Some(cur) => match self.alg.compare(&cand.weight, &cur.weight) {
                    Ordering::Less => true,
                    Ordering::Greater => false,
                    Ordering::Equal => {
                        cand.path.len() < cur.path.len()
                            || (cand.path.len() == cur.path.len() && cand.path < cur.path)
                    }
                },
            };
            if better {
                best = Some(cand);
            }
        }
        if self.rib[u][dest] != best {
            self.rib[u][dest] = best;
            true
        } else {
            false
        }
    }

    /// The simulated topology.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Whether the link between `u` and `v` is currently up.
    ///
    /// # Errors
    ///
    /// [`SimError::NotAnEdge`] when `{u, v}` is not an edge.
    pub fn link_up(&self, u: NodeId, v: NodeId) -> Result<bool, SimError> {
        let e = self.edge(u, v)?;
        Ok(!self.down[e])
    }

    /// Messages currently in flight (queued, undelivered).
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Messages currently in flight across the link `{u, v}` (either
    /// direction).
    ///
    /// # Errors
    ///
    /// [`SimError::NotAnEdge`] when `{u, v}` is not an edge.
    pub fn in_flight_on(&self, u: NodeId, v: NodeId) -> Result<usize, SimError> {
        self.edge(u, v)?;
        Ok(self
            .queue
            .iter()
            .filter(|m| (m.from == u && m.to == v) || (m.from == v && m.to == u))
            .count())
    }

    fn edge(&self, u: NodeId, v: NodeId) -> Result<EdgeId, SimError> {
        self.graph
            .edge_between(u, v)
            .ok_or(SimError::NotAnEdge { u, v })
    }

    /// Installs a [`LinkChaos`] perturbation on the link `{u, v}`.
    ///
    /// # Errors
    ///
    /// [`SimError::NotAnEdge`] when `{u, v}` is not an edge.
    pub fn set_link_chaos(
        &mut self,
        u: NodeId,
        v: NodeId,
        chaos: LinkChaos,
    ) -> Result<(), SimError> {
        let e = self.edge(u, v)?;
        self.chaos[e] = Some(chaos);
        Ok(())
    }

    /// Removes any perturbation from the link `{u, v}`.
    ///
    /// # Errors
    ///
    /// [`SimError::NotAnEdge`] when `{u, v}` is not an edge.
    pub fn clear_link_chaos(&mut self, u: NodeId, v: NodeId) -> Result<(), SimError> {
        let e = self.edge(u, v)?;
        self.chaos[e] = None;
        Ok(())
    }

    /// Fails the link between `a` and `b` at the current virtual time:
    /// both ends purge the channel's Adj-RIB-In entries, every message
    /// still in flight on the link — in both directions — is dropped,
    /// and both ends re-select every affected destination and (per the
    /// normal protocol reaction) advertise the changes — withdrawals
    /// included — to their remaining neighbours. Call
    /// [`run`](Self::run) afterwards to re-converge.
    ///
    /// # Errors
    ///
    /// [`SimError::NotAnEdge`] when `{a, b}` is not an edge (this used
    /// to panic — fault schedules are data, so it must be reportable).
    pub fn fail_link<R: Rng + ?Sized>(
        &mut self,
        a: NodeId,
        b: NodeId,
        rng: &mut R,
    ) -> Result<(), SimError> {
        let e = self.edge(a, b)?;
        self.down[e] = true;
        let n = self.graph.node_count();
        // The failed channel drops in-flight messages, both directions.
        self.queue = std::mem::take(&mut self.queue)
            .into_iter()
            .filter(|m| !((m.from == a && m.to == b) || (m.from == b && m.to == a)))
            .collect();
        for (this, other) in [(a, b), (b, a)] {
            let port = self
                .graph
                .port_towards(this, other)
                .expect("edge checked above");
            for dest in 0..n {
                self.adj_in[this][port][dest] = None;
            }
            for dest in 0..n {
                if dest != this && self.reselect(this, dest) {
                    self.advertise(this, dest, rng);
                }
            }
        }
        Ok(())
    }

    /// Restores a previously failed link and re-establishes the session
    /// over it, BGP-style: each end re-announces itself and its full
    /// current RIB to the other, so the revived channel's Adj-RIB-Ins
    /// repopulate without waiting for unrelated churn.
    ///
    /// # Errors
    ///
    /// [`SimError::NotAnEdge`] when `{a, b}` is not an edge.
    pub fn restore_link<R: Rng + ?Sized>(
        &mut self,
        a: NodeId,
        b: NodeId,
        rng: &mut R,
    ) -> Result<(), SimError> {
        let e = self.edge(a, b)?;
        if !self.down[e] {
            return Ok(());
        }
        self.down[e] = false;
        self.resync_channel(a, b, rng);
        self.resync_channel(b, a, rng);
        Ok(())
    }

    /// Crashes and immediately restarts `node`, like a BGP speaker
    /// rebooting: all messages to or from it are dropped, its RIB and
    /// every Adj-RIB-In are flushed, each neighbour tears down its
    /// session state towards it (purges the channel's Adj-RIB-In,
    /// re-selects, advertises the changes), and sessions re-establish —
    /// neighbours send their full tables to the rebooted node, which
    /// re-originates itself.
    ///
    /// # Errors
    ///
    /// [`SimError::NodeOutOfBounds`] when `node` is not in the graph.
    pub fn crash_node<R: Rng + ?Sized>(
        &mut self,
        node: NodeId,
        rng: &mut R,
    ) -> Result<(), SimError> {
        let n = self.graph.node_count();
        if node >= n {
            return Err(SimError::NodeOutOfBounds { node });
        }
        self.queue = std::mem::take(&mut self.queue)
            .into_iter()
            .filter(|m| m.from != node && m.to != node)
            .collect();
        for port_rib in &mut self.adj_in[node] {
            for slot in port_rib.iter_mut() {
                *slot = None;
            }
        }
        for slot in self.rib[node].iter_mut() {
            *slot = None;
        }
        let nbrs: Vec<(NodeId, EdgeId)> = self.graph.neighbors(node).collect();
        for (u, edge) in nbrs {
            if self.down[edge] {
                continue; // no session over a downed link
            }
            let pu = self
                .graph
                .port_towards(u, node)
                .expect("neighbor iteration yields edges");
            for dest in 0..n {
                self.adj_in[u][pu][dest] = None;
            }
            for dest in 0..n {
                if dest != u && self.reselect(u, dest) {
                    self.advertise(u, dest, rng);
                }
            }
            // Session re-establishment, both directions. The rebooted
            // node's RIB is empty, so its side is just self-origination.
            self.resync_channel(u, node, rng);
            self.resync_channel(node, u, rng);
        }
        Ok(())
    }

    /// Re-announces `from`'s self-origination and full RIB to `to`, as
    /// after a session (re-)establishment on a revived channel.
    fn resync_channel<R: Rng + ?Sized>(&mut self, from: NodeId, to: NodeId, rng: &mut R) {
        let port = self
            .graph
            .port_towards(from, to)
            .expect("resync runs along an edge");
        let edge = self
            .graph
            .edge_between(from, to)
            .expect("resync runs along an edge");
        // Self-origination: the trivial route's weight is never read by
        // receivers (they use only the arc weight) — same placeholder as
        // in `new`.
        let origin = Route {
            weight: (self.arc_weight)(to, from)
                .or_else(|| (self.arc_weight)(from, to))
                .expect("edge has some direction"),
            path: vec![from],
        };
        self.send((from, port, to, edge), from, Some(origin), rng);
        let n = self.graph.node_count();
        for dest in 0..n {
            if dest == from || dest == to {
                continue;
            }
            if let Some(route) = self.rib[from][dest].clone() {
                self.send((from, port, to, edge), dest, Some(route), rng);
            }
        }
    }

    /// Schedules one message on the FIFO channel `from → to`, applying
    /// any [`LinkChaos`] on the edge: extra delay widens the delivery
    /// distribution; loss adds one retransmission timeout per lost copy
    /// (the session is reliable, like BGP over TCP — a lost
    /// advertisement is retransmitted, never silently gone, otherwise
    /// the protocol would be left permanently stale); duplication
    /// schedules a second, later copy through the same FIFO clock.
    fn send<R: Rng + ?Sized>(
        &mut self,
        channel: (NodeId, Port, NodeId, EdgeId),
        dest: NodeId,
        route: Option<Route<A::W>>,
        rng: &mut R,
    ) {
        let (from, port, to, edge) = channel;
        if self.down[edge] {
            return;
        }
        let mut delay = rng.gen_range(1..=self.max_delay);
        let mut copies = 1;
        if let Some(c) = self.chaos[edge] {
            if c.extra_delay > 0 {
                delay += rng.gen_range(0..=c.extra_delay);
            }
            let loss = c.loss.clamp(0.0, 0.95);
            if loss > 0.0 {
                let timeout = self.max_delay + c.extra_delay + 1;
                while rng.gen_bool(loss) {
                    delay += timeout;
                }
            }
            if c.duplicate > 0.0 && rng.gen_bool(c.duplicate.clamp(0.0, 1.0)) {
                copies = 2;
            }
        }
        for _ in 0..copies {
            let at = (self.now + delay).max(self.channel_clock[from][port] + 1);
            self.channel_clock[from][port] = at;
            self.queue.push(Message {
                at,
                seq: self.seq,
                from,
                to,
                dest,
                route: route.clone(),
            });
            self.seq += 1;
            delay += 1; // a duplicate arrives strictly later
        }
    }

    /// Sends `node`'s current selection for `dest` to all its neighbours
    /// (a `None` selection is a withdrawal), respecting channel FIFO.
    fn advertise<R: Rng + ?Sized>(&mut self, node: NodeId, dest: NodeId, rng: &mut R) {
        let advert = self.rib[node][dest].clone();
        let nbrs: Vec<(NodeId, EdgeId)> = self.graph.neighbors(node).collect();
        for (port, (nbr, edge)) in nbrs.into_iter().enumerate() {
            self.send((node, port, nbr, edge), dest, advert.clone(), rng);
        }
    }

    /// Runs until the queue drains or `max_events` deliveries.
    pub fn run<R: Rng + ?Sized>(&mut self, rng: &mut R, max_events: u64) -> AsyncReport {
        self.run_obs(rng, max_events, &cpr_obs::Obs::disabled())
    }

    /// [`run`](Self::run), recording delivery metrics into `obs`:
    /// `async.events` / `async.withdrawal_deliveries` /
    /// `async.reselections` counters and, when the queue drains, the
    /// run's virtual quiesce time into the `async.quiesce_time`
    /// histogram (a budget cutoff increments `async.timeouts`). Virtual
    /// time is logical, so all of these are deterministic for a given
    /// delay seed.
    pub fn run_obs<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        max_events: u64,
        obs: &cpr_obs::Obs,
    ) -> AsyncReport {
        let mut events = 0;
        let mut withdrawals = 0u64;
        let mut reselections = 0u64;
        let mut converged = true;
        while let Some(msg) = self.queue.pop() {
            events += 1;
            if events > max_events {
                events -= 1;
                converged = false;
                break;
            }
            self.now = msg.at;
            let Message {
                from,
                to,
                dest,
                route,
                ..
            } = msg;
            if route.is_none() {
                withdrawals += 1;
            }
            let port = self
                .graph
                .port_towards(to, from)
                .expect("messages travel along edges");
            self.adj_in[to][port][dest] = route;
            if dest != to && self.reselect(to, dest) {
                reselections += 1;
                self.advertise(to, dest, rng);
            }
        }
        obs.add("async.events", events);
        obs.add("async.withdrawal_deliveries", withdrawals);
        obs.add("async.reselections", reselections);
        if converged {
            obs.record("async.quiesce_time", self.now);
        } else {
            obs.incr("async.timeouts");
        }
        AsyncReport {
            events,
            quiesce_time: self.now,
            converged,
        }
    }
}

impl<A, F> RibSnapshot for AsyncSimulator<'_, A, F>
where
    A: RoutingAlgebra,
    F: Fn(NodeId, NodeId) -> Option<A::W>,
{
    fn graph(&self) -> &Graph {
        self.graph
    }

    fn edge_up(&self, e: EdgeId) -> bool {
        !self.down[e]
    }

    fn route_path(&self, u: NodeId, t: NodeId) -> Option<&[NodeId]> {
        self.rib[u][t].as_ref().map(|r| r.path.as_slice())
    }
}

impl<'a, A> AsyncSimulator<'a, A, Box<dyn Fn(NodeId, NodeId) -> Option<A::W> + 'a>>
where
    A: RoutingAlgebra,
{
    /// Convenience constructor for symmetric intra-domain weightings.
    pub fn from_edge_weights(
        graph: &'a Graph,
        alg: &'a A,
        weights: &'a cpr_graph::EdgeWeights<A::W>,
        max_delay: u64,
    ) -> Self {
        let f: Box<dyn Fn(NodeId, NodeId) -> Option<A::W> + 'a> =
            Box::new(move |u, v| graph.edge_between(u, v).map(|e| weights.weight(e).clone()));
        AsyncSimulator::new(graph, alg, f, max_delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use cpr_algebra::policies::{self, ShortestPath, WidestPath};

    use cpr_graph::{generators, EdgeWeights};
    use cpr_paths::dijkstra;
    use rand::SeedableRng;

    #[test]
    fn quiesces_to_dijkstra_under_random_delays() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1100);
        for trial in 0..3 {
            let g = generators::gnp_connected(18, 0.2, &mut rng);
            let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
            let mut sim = AsyncSimulator::from_edge_weights(&g, &ShortestPath, &w, 25);
            let report = sim.run(&mut rng, 5_000_000);
            assert!(report.converged, "trial {trial}");
            for t in g.nodes() {
                let tree = dijkstra(&g, &w, &ShortestPath, t);
                for u in g.nodes() {
                    if u != t {
                        assert_eq!(
                            ShortestPath.compare_pw(&sim.weight(u, t), tree.weight(u)),
                            Ordering::Equal,
                            "trial {trial}: {u} → {t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn async_and_sync_fixpoints_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1101);
        let g = generators::barabasi_albert(16, 2, &mut rng);
        let ws = policies::widest_shortest();
        let w = EdgeWeights::random(&g, &ws, &mut rng);
        let mut async_sim = AsyncSimulator::from_edge_weights(&g, &ws, &w, 13);
        assert!(async_sim.run(&mut rng, 5_000_000).converged);
        let mut sync_sim = Simulator::from_edge_weights(&g, &ws, &w);
        assert!(sync_sim.run_to_convergence(300).converged);
        for s in g.nodes() {
            for t in g.nodes() {
                if s != t {
                    assert_eq!(
                        ws.compare_pw(&async_sim.weight(s, t), &sync_sim.weight(s, t)),
                        Ordering::Equal,
                        "{s} → {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn delay_schedule_does_not_change_fixpoint() {
        let mut topo_rng = rand::rngs::StdRng::seed_from_u64(1102);
        let g = generators::gnp_connected(12, 0.3, &mut topo_rng);
        let w = EdgeWeights::random(&g, &WidestPath, &mut topo_rng);
        let mut weights_per_schedule = Vec::new();
        for seed in [7u64, 8, 9] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut sim = AsyncSimulator::from_edge_weights(&g, &WidestPath, &w, 50);
            assert!(sim.run(&mut rng, 5_000_000).converged);
            let snapshot: Vec<PathWeight<_>> = (0..g.node_count())
                .flat_map(|s| (0..g.node_count()).map(move |t| (s, t)))
                .map(|(s, t)| sim.weight(s, t))
                .collect();
            weights_per_schedule.push(snapshot);
        }
        for pair in weights_per_schedule.windows(2) {
            for (a, b) in pair[0].iter().zip(&pair[1]) {
                assert_eq!(
                    WidestPath.compare_pw(a, b),
                    Ordering::Equal,
                    "fixpoint depends on delays"
                );
            }
        }
    }

    #[test]
    fn event_budget_reports_nonconvergence() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1103);
        let g = generators::grid(4, 4);
        let w = EdgeWeights::uniform(&g, 1u64);
        let mut sim = AsyncSimulator::from_edge_weights(&g, &ShortestPath, &w, 5);
        let report = sim.run(&mut rng, 10);
        assert!(!report.converged);
        assert_eq!(report.events, 10);
    }

    #[test]
    fn virtual_time_progresses() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1104);
        let g = generators::path(6);
        let w = EdgeWeights::uniform(&g, 1u64);
        let mut sim = AsyncSimulator::from_edge_weights(&g, &ShortestPath, &w, 10);
        let report = sim.run(&mut rng, 1_000_000);
        assert!(report.converged);
        // Information about the far end needs ≥ path-length deliveries.
        assert!(report.quiesce_time >= 5, "time = {}", report.quiesce_time);
        assert!(report.events >= 10);
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use cpr_algebra::policies::ShortestPath;

    use cpr_graph::{generators, EdgeWeights, Graph};
    use cpr_paths::dijkstra;
    use rand::SeedableRng;

    #[test]
    fn withdrawal_storm_reconverges_to_degraded_truth() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1200);
        let g = generators::gnp_connected(16, 0.3, &mut rng);
        let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
        let mut sim = AsyncSimulator::from_edge_weights(&g, &ShortestPath, &w, 17);
        assert!(sim.run(&mut rng, 5_000_000).converged);

        // Fail a non-bridge edge.
        let (fail_e, (a, b)) = g
            .edges()
            .find(|&(e, _)| {
                let g2 = Graph::from_edges(
                    g.node_count(),
                    g.edges().filter(|&(e2, _)| e2 != e).map(|(_, uv)| uv),
                )
                .unwrap();
                cpr_graph::traversal::is_connected(&g2)
            })
            .expect("non-bridge edge exists");
        sim.fail_link(a, b, &mut rng).unwrap();
        assert!(sim.run(&mut rng, 5_000_000).converged);

        let g2 = Graph::from_edges(
            g.node_count(),
            g.edges().filter(|&(e2, _)| e2 != fail_e).map(|(_, uv)| uv),
        )
        .unwrap();
        let w2 = EdgeWeights::from_vec(
            &g2,
            g.edges()
                .filter(|&(e2, _)| e2 != fail_e)
                .map(|(e2, _)| *w.weight(e2))
                .collect(),
        );
        for t in g2.nodes() {
            let tree = dijkstra(&g2, &w2, &ShortestPath, t);
            for u in g2.nodes() {
                if u != t {
                    assert_eq!(
                        ShortestPath.compare_pw(&sim.weight(u, t), tree.weight(u)),
                        Ordering::Equal,
                        "{u} → {t} after failing ({a}, {b})"
                    );
                    // No surviving route uses the dead link.
                    let route = sim.route(u, t).unwrap();
                    for hop in route.path.windows(2) {
                        assert!(
                            !((hop[0] == a && hop[1] == b) || (hop[0] == b && hop[1] == a)),
                            "route {u} → {t} still crosses the failed link"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bridge_failure_withdraws_routes_entirely() {
        // A path graph: failing the middle edge partitions it, and the
        // far side's routes must be withdrawn (not just rerouted).
        let g = generators::path(4);
        let w = EdgeWeights::uniform(&g, 1u64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1201);
        let mut sim = AsyncSimulator::from_edge_weights(&g, &ShortestPath, &w, 7);
        assert!(sim.run(&mut rng, 1_000_000).converged);
        assert!(sim.weight(0, 3).is_finite());
        sim.fail_link(1, 2, &mut rng).unwrap();
        assert!(sim.run(&mut rng, 1_000_000).converged);
        assert!(
            sim.weight(0, 3).is_infinite(),
            "partitioned route must vanish"
        );
        assert!(sim.weight(0, 1).is_finite());
        assert!(sim.weight(3, 2).is_finite());
    }

    #[test]
    fn fail_link_drops_in_flight_messages_both_directions() {
        // Before running a single event, every channel still carries its
        // self-origination messages — so failing a link with traffic in
        // flight must delete the queued deliveries crossing it, in both
        // directions, rather than applying them after the failure.
        let g = generators::cycle(5);
        let w = EdgeWeights::uniform(&g, 1u64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1202);
        let mut sim = AsyncSimulator::from_edge_weights(&g, &ShortestPath, &w, 9);
        assert!(
            sim.in_flight_on(1, 2).unwrap() >= 2,
            "both directions queued"
        );
        sim.fail_link(1, 2, &mut rng).unwrap();
        assert_eq!(
            sim.in_flight_on(1, 2).unwrap(),
            0,
            "queued deliveries over the downed edge must be dropped"
        );
        // Messages on other links survive.
        assert!(sim.in_flight() > 0);
        // The dropped advertisements are never applied: after quiescing,
        // neither endpoint routes over the dead link.
        assert!(sim.run(&mut rng, 1_000_000).converged);
        for (u, t) in [(1, 2), (2, 1)] {
            let path = &sim.route(u, t).unwrap().path;
            for hop in path.windows(2) {
                assert!(
                    !((hop[0] == 1 && hop[1] == 2) || (hop[0] == 2 && hop[1] == 1)),
                    "route {u} → {t} crosses the failed link"
                );
            }
        }
    }

    #[test]
    fn restore_link_resyncs_and_reconverges() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1203);
        let g = generators::gnp_connected(14, 0.25, &mut rng);
        let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
        let mut sim = AsyncSimulator::from_edge_weights(&g, &ShortestPath, &w, 11);
        assert!(sim.run(&mut rng, 5_000_000).converged);
        let (_, (a, b)) = g.edges().next().unwrap();
        sim.fail_link(a, b, &mut rng).unwrap();
        assert!(sim.run(&mut rng, 5_000_000).converged);
        sim.restore_link(a, b, &mut rng).unwrap();
        assert!(sim.run(&mut rng, 5_000_000).converged);
        // Back on the full topology: RIBs agree with dijkstra again.
        for t in g.nodes() {
            let tree = dijkstra(&g, &w, &ShortestPath, t);
            for u in g.nodes() {
                if u != t {
                    assert_eq!(
                        ShortestPath.compare_pw(&sim.weight(u, t), tree.weight(u)),
                        Ordering::Equal,
                        "{u} → {t} after restore"
                    );
                }
            }
        }
    }

    #[test]
    fn crash_node_flushes_state_and_recovers() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1204);
        let g = generators::gnp_connected(13, 0.3, &mut rng);
        let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
        let mut sim = AsyncSimulator::from_edge_weights(&g, &ShortestPath, &w, 7);
        assert!(sim.run(&mut rng, 5_000_000).converged);
        sim.crash_node(4, &mut rng).unwrap();
        assert!(g
            .nodes()
            .filter(|&t| t != 4)
            .all(|t| sim.route(4, t).is_none()));
        assert!(sim.run(&mut rng, 5_000_000).converged);
        for t in g.nodes() {
            let tree = dijkstra(&g, &w, &ShortestPath, t);
            for u in g.nodes() {
                if u != t {
                    assert_eq!(
                        ShortestPath.compare_pw(&sim.weight(u, t), tree.weight(u)),
                        Ordering::Equal,
                        "{u} → {t} after crash/restart of 4"
                    );
                }
            }
        }
    }

    #[test]
    fn link_chaos_does_not_change_the_fixpoint() {
        use crate::LinkChaos;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1205);
        let g = generators::gnp_connected(12, 0.3, &mut rng);
        let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
        let mut sim = AsyncSimulator::from_edge_weights(&g, &ShortestPath, &w, 9);
        for (_, (u, v)) in g.edges() {
            sim.set_link_chaos(
                u,
                v,
                LinkChaos {
                    loss: 0.3,
                    duplicate: 0.25,
                    extra_delay: 40,
                },
            )
            .unwrap();
        }
        assert!(sim.run(&mut rng, 10_000_000).converged);
        for t in g.nodes() {
            let tree = dijkstra(&g, &w, &ShortestPath, t);
            for u in g.nodes() {
                if u != t {
                    assert_eq!(
                        ShortestPath.compare_pw(&sim.weight(u, t), tree.weight(u)),
                        Ordering::Equal,
                        "{u} → {t} under loss/duplication/extra delay"
                    );
                }
            }
        }
    }

    #[test]
    fn async_fault_api_rejects_non_edges() {
        let g = generators::path(4);
        let w = EdgeWeights::uniform(&g, 1u64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1206);
        let mut sim = AsyncSimulator::from_edge_weights(&g, &ShortestPath, &w, 5);
        use crate::{LinkChaos, SimError};
        assert_eq!(
            sim.fail_link(0, 2, &mut rng),
            Err(SimError::NotAnEdge { u: 0, v: 2 })
        );
        assert_eq!(
            sim.restore_link(0, 2, &mut rng),
            Err(SimError::NotAnEdge { u: 0, v: 2 })
        );
        assert_eq!(
            sim.crash_node(17, &mut rng),
            Err(SimError::NodeOutOfBounds { node: 17 })
        );
        assert_eq!(
            sim.set_link_chaos(0, 3, LinkChaos::calm()),
            Err(SimError::NotAnEdge { u: 0, v: 3 })
        );
    }
}
