//! Continuous-churn timelines: topology deltas with *additions* and
//! degree-ranked targeting.
//!
//! The chaos harness ([`crate::fault`]) injects faults into a fixed edge
//! universe: links fail and restore, but the topology never grows. A
//! DRFE-R-style survival study needs the other half — genuinely *new*
//! links, nodes that stay down until restored, and **targeted** victim
//! selection (highest degree first), which is what collapses stale
//! compact tables. This module drives exactly that:
//!
//! * [`ChurnEvent`] — link fail/restore, link *addition* (a pair the
//!   base graph never had), and persistent node crash/restore (a down
//!   node removes its incident links until restored; the node *count*
//!   never changes, so consumers repair rather than rebuild).
//! * [`churn_schedule`] — a seeded-random event storm over a
//!   [`ChurnConfig`], drawing only events that are valid in the current
//!   virtual state, with [`ChurnTargeting::DegreeRanked`] picking
//!   highest-degree victims (ties to the lowest id) and capping
//!   simultaneous node downtime at a DRFE-R-style fraction.
//! * [`churn_timeline`] — lowers an event list to the sequence of
//!   effective topologies, a pure function of `(base, events)`:
//!   [`BTreeSet`] state plus sorted edge emission make every step's
//!   graph byte-deterministic.

use std::collections::BTreeSet;

use cpr_graph::{Graph, NodeId};
use rand::Rng;

use crate::fault::SimError;

/// One churn event. Unlike [`crate::FaultEvent::CrashNode`] (crash and
/// immediate restart), a churned [`CrashNode`](ChurnEvent::CrashNode)
/// keeps the node down — its incident links leave the effective topology
/// — until a matching [`RestoreNode`](ChurnEvent::RestoreNode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Take the link `{u, v}` down.
    FailLink {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// Bring a previously seen (failed) link back up.
    RestoreLink {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// Add a genuinely new link `{u, v}` — a pair outside the current
    /// edge set (typically one the base graph never had).
    AddLink {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// Take a node down: every incident link leaves the effective
    /// topology until the node is restored. The node id itself stays —
    /// node-*set* changes are a rebuild, not a repair.
    CrashNode {
        /// The crashed node.
        node: NodeId,
    },
    /// Bring a crashed node back: its surviving links rejoin the
    /// effective topology.
    RestoreNode {
        /// The restored node.
        node: NodeId,
    },
}

impl std::fmt::Display for ChurnEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnEvent::FailLink { u, v } => write!(f, "fail {{{u}, {v}}}"),
            ChurnEvent::RestoreLink { u, v } => write!(f, "restore {{{u}, {v}}}"),
            ChurnEvent::AddLink { u, v } => write!(f, "add {{{u}, {v}}}"),
            ChurnEvent::CrashNode { node } => write!(f, "crash {node}"),
            ChurnEvent::RestoreNode { node } => write!(f, "restore-node {node}"),
        }
    }
}

/// One entry of a [`churn_timeline`]: the event and the effective
/// topology right after applying it.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnStep {
    /// The event that was applied.
    pub event: ChurnEvent,
    /// The effective topology: the base node set with every up link
    /// between two up nodes (edge ids are renumbered, node ids stable).
    pub graph: Graph,
    /// Whether this event changed the effective edge set (crashing an
    /// isolated node, or failing a link whose endpoint is already down,
    /// does not).
    pub changed: bool,
}

/// How a seeded churn storm picks its victims.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ChurnTargeting {
    /// Uniform draws among the currently valid candidates.
    #[default]
    Random,
    /// Attack the best-connected survivors first: link failures pick the
    /// up link maximizing the endpoints' effective degree sum, node
    /// crashes pick the highest-degree up node, and additions connect
    /// the two best-connected non-adjacent up nodes (all ties to the
    /// lowest ids) — DRFE-R's targeted arm.
    DegreeRanked,
}

/// Parameters of a seeded churn storm ([`churn_schedule`]). Event kinds
/// are drawn by the listed weights among the kinds that are valid in the
/// current virtual state, so every generated schedule is applicable.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnConfig {
    /// Number of events before any healing tail.
    pub events: usize,
    /// Relative weight of link failures.
    pub fail_weight: u32,
    /// Relative weight of link restores.
    pub restore_weight: u32,
    /// Relative weight of link *additions*.
    pub add_weight: u32,
    /// Relative weight of node crashes.
    pub crash_weight: u32,
    /// Relative weight of node restores.
    pub restore_node_weight: u32,
    /// Victim selection.
    pub targeting: ChurnTargeting,
    /// Cap on the fraction of nodes simultaneously down (DRFE-R's
    /// targeted study removes 20%: `0.2`). Crash draws beyond the cap
    /// are skipped for that round.
    pub max_down_fraction: f64,
    /// Append restore events for every node and link still down after
    /// the storm, so the final topology is the base graph plus every
    /// surviving added link.
    pub heal_at_end: bool,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            events: 12,
            fail_weight: 4,
            restore_weight: 2,
            add_weight: 3,
            crash_weight: 2,
            restore_node_weight: 1,
            targeting: ChurnTargeting::Random,
            max_down_fraction: 0.2,
            heal_at_end: true,
        }
    }
}

fn norm(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    (u.min(v), u.max(v))
}

/// Lowers a churn event list to the sequence of effective topologies it
/// induces — the additions-capable counterpart of
/// [`topology_timeline`](crate::topology_timeline). A pure function of
/// `(base, events)`: the internal state is ordered sets and edges are
/// emitted in sorted order, so every step's graph (and its digest) is
/// deterministic.
///
/// # Errors
///
/// [`SimError::NodeOutOfBounds`] for any event naming a node at or past
/// the base node count; [`SimError::NotAnEdge`] for failing or restoring
/// a pair that was never a link, adding a self-loop, or adding a pair
/// that is already up — schedules are data, so malformed ones must be
/// reportable.
pub fn churn_timeline(base: &Graph, events: &[ChurnEvent]) -> Result<Vec<ChurnStep>, SimError> {
    let n = base.node_count();
    let check = |node: NodeId| {
        if node >= n {
            Err(SimError::NodeOutOfBounds { node })
        } else {
            Ok(())
        }
    };
    // Links currently up / ever seen (normalized), nodes currently down.
    let mut live: BTreeSet<(NodeId, NodeId)> = base.edges().map(|(_, (u, v))| norm(u, v)).collect();
    let mut known: BTreeSet<(NodeId, NodeId)> = live.clone();
    let mut down_nodes: BTreeSet<NodeId> = BTreeSet::new();
    let effective = |live: &BTreeSet<(NodeId, NodeId)>, down: &BTreeSet<NodeId>| {
        let edges: Vec<(NodeId, NodeId)> = live
            .iter()
            .copied()
            .filter(|&(u, v)| !down.contains(&u) && !down.contains(&v))
            .collect();
        Graph::from_edges(n, edges).expect("validated churn edges")
    };
    let mut prev = effective(&live, &down_nodes);
    let mut steps = Vec::with_capacity(events.len());
    for &event in events {
        match event {
            ChurnEvent::FailLink { u, v } => {
                check(u)?;
                check(v)?;
                if !known.contains(&norm(u, v)) {
                    return Err(SimError::NotAnEdge { u, v });
                }
                live.remove(&norm(u, v));
            }
            ChurnEvent::RestoreLink { u, v } => {
                check(u)?;
                check(v)?;
                if !known.contains(&norm(u, v)) {
                    return Err(SimError::NotAnEdge { u, v });
                }
                live.insert(norm(u, v));
            }
            ChurnEvent::AddLink { u, v } => {
                check(u)?;
                check(v)?;
                if u == v || live.contains(&norm(u, v)) {
                    return Err(SimError::NotAnEdge { u, v });
                }
                live.insert(norm(u, v));
                known.insert(norm(u, v));
            }
            ChurnEvent::CrashNode { node } => {
                check(node)?;
                down_nodes.insert(node);
            }
            ChurnEvent::RestoreNode { node } => {
                check(node)?;
                down_nodes.remove(&node);
            }
        }
        let graph = effective(&live, &down_nodes);
        let changed = edge_pairs(&graph) != edge_pairs(&prev);
        prev = graph.clone();
        steps.push(ChurnStep {
            event,
            graph,
            changed,
        });
    }
    Ok(steps)
}

fn edge_pairs(graph: &Graph) -> BTreeSet<(NodeId, NodeId)> {
    graph.edges().map(|(_, (u, v))| norm(u, v)).collect()
}

/// Draws a seeded churn storm over `base`: a pure function of `(base,
/// config, seed)`. Only event kinds valid in the current virtual state
/// participate in each draw, mirroring
/// [`StormConfig`](crate::StormConfig) — so the resulting event list
/// always applies cleanly through [`churn_timeline`].
pub fn churn_schedule<R: Rng + ?Sized>(
    base: &Graph,
    config: &ChurnConfig,
    rng: &mut R,
) -> Vec<ChurnEvent> {
    let n = base.node_count();
    let mut live: BTreeSet<(NodeId, NodeId)> = base.edges().map(|(_, (u, v))| norm(u, v)).collect();
    let mut known: BTreeSet<(NodeId, NodeId)> = live.clone();
    let mut down_nodes: BTreeSet<NodeId> = BTreeSet::new();
    let max_down = ((config.max_down_fraction * n as f64).floor() as usize).min(n);
    let mut events = Vec::with_capacity(config.events + n);

    for _ in 0..config.events {
        // Effective degrees for targeted draws (and the up-link list).
        let node_up = |x: NodeId| !down_nodes.contains(&x);
        let up_links: Vec<(NodeId, NodeId)> = live
            .iter()
            .copied()
            .filter(|&(u, v)| node_up(u) && node_up(v))
            .collect();
        let mut degree = vec![0usize; n];
        for &(u, v) in &up_links {
            degree[u] += 1;
            degree[v] += 1;
        }
        let down_links: Vec<(NodeId, NodeId)> = known
            .iter()
            .copied()
            .filter(|pair| !live.contains(pair))
            .collect();
        let up_nodes: Vec<NodeId> = (0..n).filter(|&x| node_up(x)).collect();

        let mut kinds: Vec<(u32, u8)> = Vec::new();
        if !up_links.is_empty() {
            kinds.push((config.fail_weight, 0));
        }
        if !down_links.is_empty() {
            kinds.push((config.restore_weight, 1));
        }
        if non_adjacent_pair(&up_nodes, &live, &degree, ChurnTargeting::DegreeRanked).is_some() {
            kinds.push((config.add_weight, 2));
        }
        if down_nodes.len() < max_down && !up_nodes.is_empty() {
            kinds.push((config.crash_weight, 3));
        }
        if !down_nodes.is_empty() {
            kinds.push((config.restore_node_weight, 4));
        }
        let total: u32 = kinds.iter().map(|&(w, _)| w).sum();
        if total == 0 {
            break;
        }
        let mut draw = rng.gen_range(0..total);
        let kind = kinds
            .iter()
            .find(|&&(w, _)| {
                if draw < w {
                    true
                } else {
                    draw -= w;
                    false
                }
            })
            .map(|&(_, k)| k)
            .expect("weights sum to total");
        match kind {
            0 => {
                let (u, v) = match config.targeting {
                    ChurnTargeting::Random => up_links[rng.gen_range(0..up_links.len())],
                    ChurnTargeting::DegreeRanked => *up_links
                        .iter()
                        .max_by_key(|&&(u, v)| (degree[u] + degree[v], std::cmp::Reverse((u, v))))
                        .expect("non-empty up links"),
                };
                live.remove(&(u, v));
                events.push(ChurnEvent::FailLink { u, v });
            }
            1 => {
                let (u, v) = down_links[rng.gen_range(0..down_links.len())];
                live.insert((u, v));
                events.push(ChurnEvent::RestoreLink { u, v });
            }
            2 => {
                let (u, v) = non_adjacent_pair(&up_nodes, &live, &degree, config.targeting)
                    .map(|pair| match config.targeting {
                        ChurnTargeting::Random => {
                            // Re-draw uniformly: rejection-sample up-node
                            // pairs, falling back to the scan result.
                            for _ in 0..4 * n.max(1) {
                                let a = up_nodes[rng.gen_range(0..up_nodes.len())];
                                let b = up_nodes[rng.gen_range(0..up_nodes.len())];
                                if a != b && !live.contains(&norm(a, b)) {
                                    return norm(a, b);
                                }
                            }
                            pair
                        }
                        ChurnTargeting::DegreeRanked => pair,
                    })
                    .expect("kind drawn only when a pair exists");
                live.insert((u, v));
                known.insert((u, v));
                events.push(ChurnEvent::AddLink { u, v });
            }
            3 => {
                let node = match config.targeting {
                    ChurnTargeting::Random => up_nodes[rng.gen_range(0..up_nodes.len())],
                    ChurnTargeting::DegreeRanked => *up_nodes
                        .iter()
                        .max_by_key(|&&x| (degree[x], std::cmp::Reverse(x)))
                        .expect("non-empty up nodes"),
                };
                down_nodes.insert(node);
                events.push(ChurnEvent::CrashNode { node });
            }
            _ => {
                let downs: Vec<NodeId> = down_nodes.iter().copied().collect();
                let node = downs[rng.gen_range(0..downs.len())];
                down_nodes.remove(&node);
                events.push(ChurnEvent::RestoreNode { node });
            }
        }
    }
    if config.heal_at_end {
        for node in down_nodes {
            events.push(ChurnEvent::RestoreNode { node });
        }
        for (u, v) in known.difference(&live) {
            events.push(ChurnEvent::RestoreLink { u: *u, v: *v });
        }
    }
    events
}

/// The first non-adjacent up-node pair under `targeting`:
/// `DegreeRanked` scans pairs by descending degree sum (ties to lowest
/// ids); `Random` only needs existence, so any pair serves.
fn non_adjacent_pair(
    up_nodes: &[NodeId],
    live: &BTreeSet<(NodeId, NodeId)>,
    degree: &[usize],
    targeting: ChurnTargeting,
) -> Option<(NodeId, NodeId)> {
    let mut ranked: Vec<NodeId> = up_nodes.to_vec();
    if targeting == ChurnTargeting::DegreeRanked {
        ranked.sort_by_key(|&x| (std::cmp::Reverse(degree[x]), x));
    }
    for (i, &a) in ranked.iter().enumerate() {
        for &b in &ranked[i + 1..] {
            if !live.contains(&norm(a, b)) {
                return Some(norm(a, b));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn timeline_applies_additions_and_node_churn() {
        let base = generators::path(4); // 0-1-2-3
        let events = vec![
            ChurnEvent::AddLink { u: 0, v: 3 },
            ChurnEvent::CrashNode { node: 1 },
            ChurnEvent::RestoreNode { node: 1 },
            ChurnEvent::FailLink { u: 0, v: 3 },
            ChurnEvent::RestoreLink { u: 0, v: 3 },
        ];
        let steps = churn_timeline(&base, &events).unwrap();
        assert_eq!(steps.len(), 5);
        assert_eq!(steps[0].graph.edge_count(), 4);
        assert!(steps[0].changed);
        // Node 1 down: edges {0,1} and {1,2} drop out.
        assert_eq!(steps[1].graph.edge_count(), 2);
        assert!(steps[1].changed);
        assert_eq!(steps[2].graph.edge_count(), 4);
        assert_eq!(steps[3].graph.edge_count(), 3);
        assert_eq!(steps[4].graph.edge_count(), 4);
        assert!(steps[4]
            .graph
            .edges()
            .any(|(_, (u, v))| (u.min(v), u.max(v)) == (0, 3)));
    }

    #[test]
    fn timeline_rejects_malformed_events() {
        let base = generators::path(3);
        assert_eq!(
            churn_timeline(&base, &[ChurnEvent::AddLink { u: 0, v: 1 }]),
            Err(SimError::NotAnEdge { u: 0, v: 1 })
        );
        assert_eq!(
            churn_timeline(&base, &[ChurnEvent::FailLink { u: 0, v: 2 }]),
            Err(SimError::NotAnEdge { u: 0, v: 2 })
        );
        assert_eq!(
            churn_timeline(&base, &[ChurnEvent::CrashNode { node: 9 }]),
            Err(SimError::NodeOutOfBounds { node: 9 })
        );
    }

    #[test]
    fn schedule_is_seed_deterministic_and_applies() {
        let mut rng = StdRng::seed_from_u64(7);
        let base = generators::gnp_connected(12, 0.3, &mut rng);
        for targeting in [ChurnTargeting::Random, ChurnTargeting::DegreeRanked] {
            let config = ChurnConfig {
                events: 16,
                targeting,
                ..ChurnConfig::default()
            };
            let a = churn_schedule(&base, &config, &mut StdRng::seed_from_u64(42));
            let b = churn_schedule(&base, &config, &mut StdRng::seed_from_u64(42));
            assert_eq!(a, b);
            assert!(a.iter().any(|e| matches!(e, ChurnEvent::AddLink { .. })));
            let steps = churn_timeline(&base, &a).unwrap();
            // heal_at_end: final topology is the base plus surviving adds.
            let last = steps.last().unwrap();
            assert!(last.graph.edge_count() >= base.edge_count());
        }
    }

    #[test]
    fn degree_ranked_crash_hits_the_hub() {
        // Star: node 0 is the hub.
        let edges: Vec<(usize, usize)> = (1..8).map(|v| (0, v)).collect();
        let base = Graph::from_edges(8, edges).unwrap();
        let config = ChurnConfig {
            events: 1,
            fail_weight: 0,
            restore_weight: 0,
            add_weight: 0,
            crash_weight: 1,
            restore_node_weight: 0,
            targeting: ChurnTargeting::DegreeRanked,
            max_down_fraction: 0.5,
            heal_at_end: false,
        };
        let events = churn_schedule(&base, &config, &mut StdRng::seed_from_u64(1));
        assert_eq!(events, vec![ChurnEvent::CrashNode { node: 0 }]);
    }

    #[test]
    fn down_fraction_caps_crashes() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = generators::gnp_connected(10, 0.4, &mut rng);
        let config = ChurnConfig {
            events: 40,
            fail_weight: 0,
            restore_weight: 0,
            add_weight: 0,
            crash_weight: 1,
            restore_node_weight: 0,
            targeting: ChurnTargeting::Random,
            max_down_fraction: 0.2,
            heal_at_end: false,
        };
        let events = churn_schedule(&base, &config, &mut StdRng::seed_from_u64(9));
        assert_eq!(events.len(), 2, "20% of 10 nodes = 2 crashes max");
    }
}
