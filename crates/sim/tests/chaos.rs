//! Chaos-harness integration tests: seeded fault storms on monotone
//! algebras must heal completely (zero blackholes and loops at
//! quiescence, RIBs agreeing with the centralized solver on the
//! surviving topology), and non-monotone policies must be *flagged* as
//! oscillating instead of spinning to the round budget.

use std::cmp::Ordering;

use cpr_algebra::policies::{self, ShortestPath};
use cpr_algebra::{PathWeight, RoutingAlgebra};
use cpr_graph::{generators, EdgeWeights, NodeId};
use cpr_paths::dijkstra;
use cpr_sim::{
    audit_forwarding, run_chaos_async, run_chaos_sync, AsyncSimulator, ChaosOptions, FaultEvent,
    FaultPlan, FaultSchedule, LinkChaos, Simulator, StormConfig,
};
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn sync_storm_heals_to_dijkstra_truth() {
    let mut rng = StdRng::seed_from_u64(4000);
    let g = generators::gnp_connected(20, 0.18, &mut rng);
    let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
    let plan = FaultPlan::Storm(StormConfig {
        events: 12,
        ..StormConfig::default()
    });
    let schedule = plan.schedule(&g, &mut rng);
    assert!(!schedule.events.is_empty());

    let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
    let report = run_chaos_sync(&mut sim, &schedule, &ChaosOptions::default()).unwrap();
    assert!(report.quiesced(), "monotone storm must quiesce");
    assert!(!report.oscillating());
    assert_eq!(report.final_blackholes(), 0, "blackholes at quiescence");
    assert_eq!(report.final_loops(), 0, "forwarding loops at quiescence");

    // heal_at_end: the surviving topology is the original graph, so the
    // final RIBs must agree pairwise with dijkstra on it.
    for t in g.nodes() {
        let tree = dijkstra(&g, &w, &ShortestPath, t);
        for u in g.nodes() {
            if u != t {
                assert_eq!(
                    ShortestPath.compare_pw(&sim.weight(u, t), tree.weight(u)),
                    Ordering::Equal,
                    "{u} → {t} after the healed storm"
                );
            }
        }
    }
}

#[test]
fn async_storm_heals_to_dijkstra_truth() {
    let mut rng = StdRng::seed_from_u64(4001);
    let g = generators::gnp_connected(14, 0.25, &mut rng);
    let ws = policies::widest_shortest();
    let w = EdgeWeights::random(&g, &ws, &mut rng);
    let schedule = FaultPlan::Storm(StormConfig {
        events: 8,
        ..StormConfig::default()
    })
    .schedule(&g, &mut rng);

    let mut sim = AsyncSimulator::from_edge_weights(&g, &ws, &w, 11);
    let report = run_chaos_async(&mut sim, &schedule, &mut rng, &ChaosOptions::default()).unwrap();
    assert!(report.quiesced());
    assert_eq!(report.final_blackholes(), 0);
    assert_eq!(report.final_loops(), 0);
    for t in g.nodes() {
        let tree = dijkstra(&g, &w, &ws, t);
        for u in g.nodes() {
            if u != t {
                assert_eq!(
                    ws.compare_pw(&sim.weight(u, t), tree.weight(u)),
                    Ordering::Equal,
                    "{u} → {t} after the healed async storm"
                );
            }
        }
    }
}

#[test]
fn storm_schedules_are_deterministic_under_a_fixed_seed() {
    let mut topo_rng = StdRng::seed_from_u64(4002);
    let g = generators::gnp_connected(16, 0.2, &mut topo_rng);
    let w = EdgeWeights::random(&g, &ShortestPath, &mut topo_rng);
    let plan = FaultPlan::Storm(StormConfig::default());

    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = plan.schedule(&g, &mut rng);
        let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
        let report = run_chaos_sync(&mut sim, &schedule, &ChaosOptions::default()).unwrap();
        (schedule, report)
    };
    let (s1, r1) = run(99);
    let (s2, r2) = run(99);
    assert_eq!(s1, s2, "same seed, same schedule");
    assert_eq!(r1, r2, "same seed, same recovery report");
    let (s3, _) = run(100);
    assert_ne!(s1, s3, "different seed, different storm");
}

#[test]
fn bridge_failure_exposes_transient_blackholes_but_not_partition_blame() {
    // path(4): failing the middle link partitions the graph. The audit
    // right after the event sees stale routes over the dead link as
    // blackholes; at quiescence the disconnected pairs are *not* counted
    // (the topology, not the protocol, is at fault).
    let g = generators::path(4);
    let w = EdgeWeights::uniform(&g, 1u64);
    let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
    let schedule = FaultSchedule {
        events: vec![FaultEvent::FailLink { u: 1, v: 2 }],
    };
    let report = run_chaos_sync(&mut sim, &schedule, &ChaosOptions::default()).unwrap();
    assert!(report.quiesced());
    let rec = &report.events[0];
    // The sync fail_link flushes routes over the dead link, so the pairs
    // it served are immediately blackholed... no: flushed routes are on
    // still-connected pairs only if an alternate exists. Here 0→1 kept
    // its route; 0→3 is cross-partition, hence not audited. What remains
    // transiently blackholed is nothing — but at *quiescence* both
    // blackholes and loops must be zero either way.
    assert_eq!(rec.blackholes, 0);
    assert_eq!(rec.loops, 0);

    // A crash, by contrast, leaves neighbours pointing at a flushed node:
    // connected pairs whose chain dead-ends there are transient blackholes.
    let g2 = generators::path(3);
    let w2 = EdgeWeights::uniform(&g2, 1u64);
    let mut sim2 = Simulator::from_edge_weights(&g2, &ShortestPath, &w2);
    let schedule2 = FaultSchedule {
        events: vec![FaultEvent::CrashNode { node: 1 }],
    };
    let report2 = run_chaos_sync(&mut sim2, &schedule2, &ChaosOptions::default()).unwrap();
    let rec2 = &report2.events[0];
    assert!(
        rec2.transient_blackholes > 0,
        "0 → 2 dead-ends at the rebooted relay before re-convergence"
    );
    assert!(report2.quiesced());
    assert_eq!(rec2.blackholes, 0);
}

#[test]
fn partition_and_heal_events_round_trip() {
    let mut rng = StdRng::seed_from_u64(4003);
    let g = generators::gnp_connected(12, 0.3, &mut rng);
    let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
    let side = vec![0, 1, 2];
    let schedule = FaultSchedule {
        events: vec![
            FaultEvent::Partition { side: side.clone() },
            FaultEvent::HealPartition { side },
        ],
    };
    let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
    let report = run_chaos_sync(&mut sim, &schedule, &ChaosOptions::default()).unwrap();
    assert!(report.quiesced());
    assert_eq!(report.final_blackholes(), 0);
    // Healed: full-topology truth again.
    for t in g.nodes() {
        let tree = dijkstra(&g, &w, &ShortestPath, t);
        for u in g.nodes() {
            if u != t {
                assert_eq!(
                    ShortestPath.compare_pw(&sim.weight(u, t), tree.weight(u)),
                    Ordering::Equal
                );
            }
        }
    }
}

#[test]
fn async_storm_with_link_chaos_still_heals() {
    let mut rng = StdRng::seed_from_u64(4004);
    let g = generators::gnp_connected(10, 0.35, &mut rng);
    let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
    let chaos = LinkChaos {
        loss: 0.25,
        duplicate: 0.2,
        extra_delay: 15,
    };
    let mut events: Vec<FaultEvent> = g
        .edges()
        .map(|(_, (u, v))| FaultEvent::PerturbLink { u, v, chaos })
        .collect();
    let (_, (fu, fv)) = g.edges().next().unwrap();
    events.push(FaultEvent::FailLink { u: fu, v: fv });
    events.push(FaultEvent::RestoreLink { u: fu, v: fv });
    let schedule = FaultSchedule { events };
    let mut sim = AsyncSimulator::from_edge_weights(&g, &ShortestPath, &w, 9);
    let report = run_chaos_async(&mut sim, &schedule, &mut rng, &ChaosOptions::default()).unwrap();
    assert!(
        report.quiesced(),
        "loss/dup/delay must not prevent quiescence"
    );
    assert_eq!(report.final_blackholes(), 0);
    assert_eq!(report.final_loops(), 0);
    for t in g.nodes() {
        let tree = dijkstra(&g, &w, &ShortestPath, t);
        for u in g.nodes() {
            if u != t {
                assert_eq!(
                    ShortestPath.compare_pw(&sim.weight(u, t), tree.weight(u)),
                    Ordering::Equal,
                    "{u} → {t} under chaos"
                );
            }
        }
    }
}

#[test]
fn malformed_events_surface_as_errors_not_panics() {
    let g = generators::path(4);
    let w = EdgeWeights::uniform(&g, 1u64);
    let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
    let schedule = FaultSchedule {
        events: vec![FaultEvent::FailLink { u: 0, v: 3 }],
    };
    let err = run_chaos_sync(&mut sim, &schedule, &ChaosOptions::default()).unwrap_err();
    assert_eq!(err, cpr_sim::SimError::NotAnEdge { u: 0, v: 3 });
}

/// A miniature dispute-wheel algebra (the BAD GADGET shape, kept local
/// to avoid a dev-dependency cycle with `cpr-bgp`; the full cross-crate
/// regression lives in the workspace-level `chaos_resilience` test).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Wheel {
    Good,
    Direct,
    Ring,
}

#[derive(Clone, Copy, Debug)]
struct WheelAlgebra;

impl RoutingAlgebra for WheelAlgebra {
    type W = Wheel;

    fn name(&self) -> String {
        "mini-dispute-wheel".to_owned()
    }

    fn combine(&self, a: &Wheel, b: &Wheel) -> PathWeight<Wheel> {
        match (a, b) {
            (Wheel::Ring, Wheel::Direct) => PathWeight::Finite(Wheel::Good),
            _ => PathWeight::Infinite,
        }
    }

    fn compare(&self, a: &Wheel, b: &Wheel) -> Ordering {
        a.cmp(b)
    }
}

#[test]
fn dispute_wheel_is_flagged_oscillating_without_spinning_to_budget() {
    let graph =
        cpr_graph::Graph::from_edges(4, [(1, 0), (2, 0), (3, 0), (1, 2), (2, 3), (3, 1)]).unwrap();
    let arc = |u: NodeId, v: NodeId| -> Option<Wheel> {
        match (u, v) {
            (1, 0) | (2, 0) | (3, 0) => Some(Wheel::Direct),
            (1, 2) | (2, 3) | (3, 1) => Some(Wheel::Ring),
            _ => None,
        }
    };
    let alg = WheelAlgebra;
    let mut sim = Simulator::new(&graph, &alg, arc);
    let opts = ChaosOptions {
        round_budget: 100_000,
        ..ChaosOptions::default()
    };
    let schedule = FaultSchedule { events: vec![] };
    let report = run_chaos_sync(&mut sim, &schedule, &opts).unwrap();
    assert!(report.oscillating(), "dispute wheel must be flagged");
    assert!(!report.quiesced());
    // The state-fingerprint detector catches the cycle almost instantly
    // instead of burning the 100k-round budget.
    assert!(
        report.initial.steps < 100,
        "cut off after {} rounds — detector did not fire",
        report.initial.steps
    );
    // The plain report agrees: the budgeted run does not converge.
    let mut sim2 = Simulator::new(&graph, &alg, arc);
    assert!(!sim2.run_to_convergence(500).converged);
    // The audit of the mid-oscillation snapshot is deterministic (the
    // synchronous runner is seed-free) and must expose the sick state:
    // every spoke prefers its ring neighbour towards the hub, closing
    // forwarding loops, and the remaining pairs dead-end. A clean audit
    // here would mean oscillation damage can hide from the auditor.
    let audit = audit_forwarding(&sim2);
    assert_eq!(
        audit.looping,
        vec![(1, 0), (2, 0), (3, 0)],
        "every spoke->hub chain must be caught looping through the ring"
    );
    assert_eq!(
        audit.blackholed,
        vec![(0, 1), (0, 2), (0, 3), (1, 3), (2, 1), (3, 2)],
        "the non-hub-bound pairs must be caught dead-ending"
    );
    assert!(!audit.clean());
}

#[test]
fn registry_settle_histogram_agrees_with_recovery_report() {
    // The chaos metric regression gate: on a scripted plan, the
    // `chaos.settle_steps` histogram the obs registry accumulated must
    // agree sample-for-sample with the RecoveryReport's own settle
    // percentiles — they are two views of the same recovery segments,
    // and the registry view is what BENCH_chaos.json embeds.
    let mut rng = StdRng::seed_from_u64(4010);
    let g = generators::gnp_connected(16, 0.25, &mut rng);
    let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
    let (_, (fu, fv)) = g.edges().next().unwrap();
    let schedule = FaultSchedule {
        events: vec![
            FaultEvent::FailLink { u: fu, v: fv },
            FaultEvent::RestoreLink { u: fu, v: fv },
            FaultEvent::CrashNode { node: 3 },
            FaultEvent::Partition {
                side: vec![0, 1, 2],
            },
            FaultEvent::HealPartition {
                side: vec![0, 1, 2],
            },
        ],
    };

    let obs = cpr_obs::Obs::with_null_tracer();
    let mut sim = Simulator::from_edge_weights(&g, &ShortestPath, &w);
    let report =
        cpr_sim::run_chaos_sync_obs(&mut sim, &schedule, &ChaosOptions::default(), &obs).unwrap();
    assert!(report.quiesced());

    let hist = obs
        .registry
        .histogram("chaos.settle_steps")
        .expect("obs run records settle steps");
    assert_eq!(hist.count(), report.events.len() as u64);
    for p in [0.5, 0.9, 0.99, 1.0] {
        assert_eq!(
            hist.percentile(p).unwrap_or(0),
            report.settle_steps_percentile(p),
            "p{:.0} diverged between registry and report",
            p * 100.0
        );
    }
    // And the histogram is byte-for-byte the report's own accumulator.
    assert_eq!(
        hist.to_json().to_compact(),
        report.settle_steps_histogram().to_json().to_compact()
    );

    // Counters cross-check: events and message totals.
    assert_eq!(
        obs.registry.counter("chaos.events"),
        report.events.len() as u64
    );
    let msg_hist = obs
        .registry
        .histogram("chaos.settle_messages")
        .expect("obs run records settle messages");
    assert_eq!(
        msg_hist.sum() + u128::from(obs.registry.counter("chaos.initial_settle_messages")),
        u128::from(report.total_messages()),
        "registry message accounting diverged from the report"
    );
}
