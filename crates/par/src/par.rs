//! Chunked scoped-thread `par_map` over index ranges.
//!
//! The primitives here are deliberately minimal:
//!
//! * [`thread_count`] — the worker count, from `CPR_THREADS` or the
//!   hardware.
//! * [`par_map_indexed`] — map a closure over `0..len`, collecting the
//!   results **in index order** regardless of which worker computed
//!   what.
//! * [`par_map`] — the same over a slice.
//! * [`split_ranges`] — contiguous near-equal index ranges, for callers
//!   (like the forwarding-plane compiler) that shard work into ranges
//!   and merge per-shard state themselves.
//!
//! # Determinism
//!
//! The output of every function here is a pure function of its inputs:
//! workers steal *chunks* of the index range from an atomic cursor, but
//! each result lands in the output slot of its input index, so
//! scheduling order can never reorder results. With `threads == 1` (or
//! `len <= 1`) the closure runs on the calling thread in index order —
//! the exact serial code path, with no thread spawned at all.
//!
//! # Panics
//!
//! A panic inside the closure on any worker is propagated to the caller
//! after the scope joins (no result is silently dropped).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The worker count used by [`par_map`]/[`par_map_indexed`]: the value
/// of the `CPR_THREADS` environment variable when it parses to a
/// positive integer, otherwise `std::thread::available_parallelism`.
///
/// `CPR_THREADS=1` selects the exact serial fallback everywhere.
pub fn thread_count() -> usize {
    match std::env::var("CPR_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(k) if k >= 1 => k,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Splits `0..len` into at most `parts` contiguous, near-equal, in-order
/// ranges. Every index is covered exactly once; empty input yields no
/// ranges. Equivalent to [`split_ranges_min_grain`] with a grain of 1.
pub fn split_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    split_ranges_min_grain(len, parts, 1)
}

/// [`split_ranges`] with an explicit minimum shard size: no emitted range
/// is smaller than `min_grain` (except when `len < min_grain`, where the
/// whole input becomes one shard). Callers whose per-shard fixed cost is
/// high — the forwarding-plane compiler pays one intern-table merge per
/// shard — use the grain to keep tiny inputs from fanning out into more
/// shards than the merge overhead is worth.
///
/// `parts` is clamped to `len` (and to the grain-implied maximum) *before*
/// chunk sizes are computed, so tiny inputs can never produce more shards
/// than elements, and every shard is non-empty by construction.
pub fn split_ranges_min_grain(len: usize, parts: usize, min_grain: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let min_grain = min_grain.max(1);
    // Clamp up front: at most one shard per element, and few enough
    // shards that each holds at least `min_grain` elements.
    let parts = parts.clamp(1, len).min((len / min_grain).max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let hi = lo + base + usize::from(i < extra);
        ranges.push(lo..hi);
        lo = hi;
    }
    ranges
}

/// Maps `f` over `0..len` on [`thread_count`] scoped worker threads,
/// returning the results in index order.
pub fn par_map_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed_with(thread_count(), len, f)
}

/// [`par_map_indexed`] with an explicit worker count (used by benches
/// that sweep thread counts without touching the environment).
pub fn par_map_indexed_with<R, F>(threads: usize, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1).min(len.max(1));
    if threads == 1 || len <= 1 {
        // Exact serial fallback: calling thread, index order.
        return (0..len).map(f).collect();
    }

    // Chunks are finer than the worker count so a straggler chunk cannot
    // serialize the whole map; 4 chunks per worker keeps the atomic
    // cursor traffic negligible for the coarse tasks this layer carries
    // (one Dijkstra, one compile shard, one experiment instance).
    let chunk = len.div_ceil(threads * 4).max(1);
    let chunks = len.div_ceil(chunk);
    let workers = threads.min(chunks);
    let cursor = AtomicUsize::new(0);
    let f = &f;

    let mut parts: Vec<(usize, Vec<R>)> = Vec::with_capacity(chunks);
    let mut worker_chunks: Vec<u64> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut out: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= chunks {
                            break;
                        }
                        let lo = c * chunk;
                        let hi = (lo + chunk).min(len);
                        out.push((lo, (lo..hi).map(f).collect()));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            let out = h.join().expect("cpr-core parallel worker panicked");
            worker_chunks.push(out.len() as u64);
            parts.extend(out);
        }
    });

    // Scheduling telemetry into the process-wide registry: how many
    // chunks each worker claimed, and how lopsided the claim was. The
    // chunk *assignment* is racy by design (only results are
    // deterministic), so these land in the global registry — which no
    // pinned snapshot reads — not in a caller's report registry.
    let obs = cpr_obs::global();
    obs.incr("par.invocations");
    obs.add("par.chunks", chunks as u64);
    for &claimed in &worker_chunks {
        obs.record("par.worker_chunks", claimed);
    }
    let most = worker_chunks.iter().copied().max().unwrap_or(0);
    let least = worker_chunks.iter().copied().min().unwrap_or(0);
    obs.set_gauge("par.imbalance", (most - least) as i64);

    // Stitch chunks back in index order: sorting by chunk origin is
    // enough because chunks are contiguous and disjoint.
    parts.sort_unstable_by_key(|&(lo, _)| lo);
    let mut out = Vec::with_capacity(len);
    for (_, mut vals) in parts {
        out.append(&mut vals);
    }
    debug_assert_eq!(out.len(), len);
    out
}

/// Maps `f` over a slice on [`thread_count`] scoped worker threads,
/// returning the results in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_for_every_thread_count() {
        let n = 257;
        let expect: Vec<usize> = (0..n).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map_indexed_with(threads, n, |i| i * i);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<usize> = par_map_indexed_with(8, 0, |i| i);
        assert!(empty.is_empty());
        assert_eq!(par_map_indexed_with(8, 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn par_map_over_slice() {
        let items = vec!["a", "bb", "ccc"];
        assert_eq!(par_map(&items, |s| s.len()), vec![1, 2, 3]);
    }

    #[test]
    fn split_ranges_covers_exactly_once() {
        for (len, parts) in [(0, 4), (1, 4), (7, 3), (8, 3), (100, 7), (5, 99)] {
            let ranges = split_ranges(len, parts);
            let mut covered = 0;
            let mut expect_lo = 0;
            for r in &ranges {
                assert_eq!(r.start, expect_lo, "contiguous in order");
                assert!(!r.is_empty(), "no empty shard");
                covered += r.len();
                expect_lo = r.end;
            }
            assert_eq!(covered, len, "len {len} parts {parts}");
            if len > 0 {
                assert!(ranges.len() <= parts.max(1));
                let sizes: Vec<usize> = ranges.iter().map(Range::len).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "near-equal shards: {sizes:?}");
            }
        }
    }

    #[test]
    fn min_grain_bounds_shard_count_and_size() {
        for (len, parts, grain) in [
            (10usize, 8usize, 4usize),
            (100, 64, 16),
            (3, 99, 8),
            (17, 4, 1),
            (1, 1, 1),
        ] {
            let ranges = split_ranges_min_grain(len, parts, grain);
            let covered: usize = ranges.iter().map(Range::len).sum();
            assert_eq!(covered, len);
            assert!(
                ranges.len() <= (len / grain).max(1),
                "{len}/{parts}/{grain}"
            );
            // All but possibly the degenerate whole-input shard meet the grain.
            if len >= grain {
                for r in &ranges {
                    assert!(
                        r.len() >= grain,
                        "shard {r:?} under grain {grain} ({len}/{parts})"
                    );
                }
            }
        }
        // Grain of 1 is exactly the old behavior.
        assert_eq!(split_ranges_min_grain(7, 3, 1), split_ranges(7, 3));
    }

    #[test]
    fn tiny_inputs_never_spawn_more_shards_than_elements() {
        for len in 1..6usize {
            for parts in [1usize, 2, 7, 1000] {
                let ranges = split_ranges(len, parts);
                assert!(ranges.len() <= len, "len {len} parts {parts}");
                assert!(ranges.iter().all(|r| !r.is_empty()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let _ = par_map_indexed_with(4, 100, |i| {
            assert!(i != 63, "boom");
            i
        });
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn parallel_runs_record_scheduling_telemetry() {
        let obs = cpr_obs::global();
        let invocations = obs.registry.counter("par.invocations");
        let samples = obs
            .registry
            .histogram("par.worker_chunks")
            .map_or(0, |h| h.count());
        let _ = par_map_indexed_with(4, 64, |i| i);
        assert!(obs.registry.counter("par.invocations") > invocations);
        let h = obs
            .registry
            .histogram("par.worker_chunks")
            .expect("recorded");
        assert!(h.count() > samples);
        assert!(obs.registry.gauge("par.imbalance").is_some());
    }
}
