//! # cpr-core — the workspace-wide parallel execution layer
//!
//! Everything that *builds* routing state in this workspace — all-pairs
//! preferred trees, forwarding-plane compilation, per-source table
//! construction, the experiment sweeps — is embarrassingly parallel
//! across an index range (sources, sizes, instances). This crate is the
//! one place that parallelism lives: a small, std-only, scoped-thread
//! [`par`] module with deterministic, order-preserving result
//! collection. Its only workspace dependency is `cpr-obs`, into whose
//! [global registry](cpr_obs::global) each parallel invocation records
//! per-worker chunk counts and a scheduling-imbalance gauge.
//!
//! The container this workspace targets has no crates.io access, so
//! there is deliberately no rayon here: just `std::thread::scope`, an
//! atomic chunk cursor, and results stitched back in input order.
//!
//! The thread count comes from the `CPR_THREADS` environment variable
//! (default: `std::thread::available_parallelism`); `CPR_THREADS=1` is
//! an *exact* serial fallback — the closure runs on the calling thread
//! in input order, so single-threaded runs are bit-for-bit the old
//! serial code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fxhash;
pub mod par;
