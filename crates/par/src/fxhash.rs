//! A fast, deterministic, non-cryptographic hasher for hot-path maps.
//!
//! The forwarding-plane compiler interns every header and dedups every
//! `(node, header)` state through a `HashMap`; at Internet scale that is
//! hundreds of millions of hash operations, and the standard library's
//! SipHash — built to resist adversarial collisions, which seeded
//! benchmark graphs cannot produce — is the single largest line in the
//! compile profile. [`FxHasher`] is the classic Fx multiply-xor hash
//! (as used by rustc): a couple of arithmetic instructions per word,
//! **fully deterministic across processes and platforms** (no random
//! seed), which also keeps iteration-free uses reproducible.
//!
//! Determinism note: none of the workspace's pinned digests may depend
//! on map *iteration* order — and none do; the compiler replays
//! discovery order through arenas — so swapping the hasher can never
//! change a result, only the time it takes to produce it.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-xor hasher: fast, deterministic, not DoS-resistant —
/// for internal maps over trusted (seed-derived) keys only.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(3usize, 7u32)), hash_of(&(3usize, 7u32)));
        assert_eq!(hash_of(&"header"), hash_of(&"header"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let hashes: FxHashSet<u64> = (0u64..10_000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 10_000, "collisions on a dense integer range");
    }

    #[test]
    fn unaligned_tails_do_not_collide_with_padding() {
        // b"ab" and b"ab\0" must differ even though the zero-padded tail
        // words would match without the length tag.
        assert_ne!(hash_of(&b"ab".as_slice()), hash_of(&b"ab\0".as_slice()));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i ^ 0xBEEF), u64::from(i) * 3);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(7, 7 ^ 0xBEEF)), Some(&21));
    }
}
