//! True incremental repair: edge additions no longer force a full
//! rebuild. A [`DeltaTracker`] bounds the affected pairs of any delta,
//! [`SelfHealingPlane::observe_with`] closes that set over the plane's
//! forwarding walks, and [`SelfHealingPlane::repair_with`] patches only
//! the dirty pairs — these tests pin that the patched plane's routes are
//! identical to a from-scratch compile's after every delta, with
//! `full_rebuilds == 0` on additions-only storms, across the adversarial
//! sequences (add→remove-same→add-again, crash→restore→add).

use cpr_algebra::policies::ShortestPath;
use cpr_graph::{generators, EdgeWeights, Graph, NodeId};
use cpr_plane::{DeltaTracker, RepairPolicy, SelfHealingPlane};
use cpr_routing::DestTable;
use rand::SeedableRng;

/// Symmetric keyed weight: a pure function of the (unordered) endpoint
/// pair, so an edge keeps its weight across removal/re-addition and
/// across graphs that contain it.
fn weigh(u: NodeId, v: NodeId) -> u64 {
    let (a, b) = (u.min(v) as u64, u.max(v) as u64);
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    x ^= x >> 31;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 29;
    1 + x % 16
}

fn weights_of(g: &Graph) -> EdgeWeights<u64> {
    EdgeWeights::from_fn(g, |e| {
        let (u, v) = g.endpoints(e);
        weigh(u, v)
    })
}

fn scheme_of(g: &Graph) -> DestTable {
    DestTable::build(g, &weights_of(g), &ShortestPath)
}

fn tracker_of(g: &Graph) -> DeltaTracker<ShortestPath> {
    DeltaTracker::new(ShortestPath, g, weigh).with_hop_tiebreak(true)
}

/// Every ordered pair routed through `healing` must match a from-scratch
/// [`SelfHealingPlane`] compiled on `graph` — node sequence for node
/// sequence.
fn assert_routes_match_fresh(
    healing: &SelfHealingPlane<DestTable>,
    scheme: &DestTable,
    graph: &Graph,
) {
    let fresh = SelfHealingPlane::new(scheme, graph).unwrap();
    for s in graph.nodes() {
        for t in graph.nodes() {
            if s == t {
                continue;
            }
            let want = fresh.lookup(scheme, graph, s, t).map(|(p, _)| p);
            let got = healing.lookup(scheme, graph, s, t).map(|(p, _)| p);
            match (&want, &got) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "pair {s} → {t}: repaired plane diverges from fresh")
                }
                (Err(_), Err(_)) => {}
                _ => panic!("pair {s} → {t}: routability diverges: {want:?} vs {got:?}"),
            }
        }
    }
}

/// `deterministic` non-edges of `g`: the lexicographically first `k`
/// pairs that are not edges (skipping self-pairs).
fn first_non_edges(g: &Graph, k: usize) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    'outer: for u in g.nodes() {
        for v in (u + 1)..g.node_count() {
            if g.edge_between(u, v).is_none() {
                out.push((u, v));
                if out.len() == k {
                    break 'outer;
                }
            }
        }
    }
    assert_eq!(out.len(), k, "graph too dense for {k} additions");
    out
}

fn with_extra_edges(g: &Graph, extra: &[(NodeId, NodeId)]) -> Graph {
    let edges: Vec<(NodeId, NodeId)> = g
        .edges()
        .map(|(_, uv)| uv)
        .chain(extra.iter().copied())
        .collect();
    Graph::from_edges(g.node_count(), edges).unwrap()
}

/// The ISSUE acceptance gate: an additions-only storm at n ≥ 512
/// completes with `heal.full_rebuilds == 0` while the repaired plane's
/// routes are identical to a from-scratch compile's.
#[test]
fn additions_only_storm_at_512_repairs_without_rebuild() {
    let mut r = rand::rngs::StdRng::seed_from_u64(0x512AD);
    let base = generators::barabasi_albert(512, 2, &mut r);
    let mut healing = SelfHealingPlane::new(&scheme_of(&base), &base).unwrap();
    let mut tracker = tracker_of(&base);
    let policy = RepairPolicy::default();

    let additions = first_non_edges(&base, 3);
    let mut g = base.clone();
    for (round, &(u, v)) in additions.iter().enumerate() {
        g = with_extra_edges(&g, &[(u, v)]);
        let scheme = scheme_of(&g);
        let stats = healing
            .repair_with(&scheme, &g, &mut tracker, &policy)
            .unwrap();
        assert!(
            !stats.full_rebuild,
            "round {round}: adding {{{u}, {v}}} forced a rebuild \
             (dirty = {} pairs)",
            stats.dirty_pairs
        );
        assert!(!stats.forced_rebuild);
        assert!(
            stats.dirty_pairs < 512 * 511 / 2,
            "round {round}: delta bound degenerated ({} pairs dirty)",
            stats.dirty_pairs
        );
    }
    let c = healing.counters();
    assert_eq!(
        c.full_rebuilds, 0,
        "additions-only storm must never rebuild"
    );
    assert_eq!(c.incremental_repairs, additions.len() as u64);
    assert_routes_match_fresh(&healing, &scheme_of(&g), &g);
}

#[test]
fn add_remove_same_edge_add_again_stays_incremental() {
    let mut r = rand::rngs::StdRng::seed_from_u64(0xADD0);
    let base = generators::gnp_connected(24, 0.18, &mut r);
    let mut healing = SelfHealingPlane::new(&scheme_of(&base), &base).unwrap();
    let mut tracker = tracker_of(&base);
    let policy = RepairPolicy::default();

    let (u, v) = first_non_edges(&base, 1)[0];
    let with_edge = with_extra_edges(&base, &[(u, v)]);

    for (round, g) in [&with_edge, &base, &with_edge].into_iter().enumerate() {
        let scheme = scheme_of(g);
        let stats = healing
            .repair_with(&scheme, g, &mut tracker, &policy)
            .unwrap();
        assert!(
            !stats.full_rebuild,
            "round {round} of add→remove→add forced a rebuild"
        );
        assert_routes_match_fresh(&healing, &scheme, g);
    }
    assert_eq!(healing.counters().full_rebuilds, 0);
    assert_eq!(healing.counters().incremental_repairs, 3);
}

#[test]
fn crash_restore_then_add_edge_stays_incremental() {
    let mut r = rand::rngs::StdRng::seed_from_u64(0xC0A5);
    let base = generators::gnp_connected(20, 0.25, &mut r);
    let mut healing = SelfHealingPlane::new(&scheme_of(&base), &base).unwrap();
    let mut tracker = tracker_of(&base);
    let policy = RepairPolicy {
        // Crashing a node dirties every pair routed through it — allow a
        // large incremental pass before declaring the patch unprofitable.
        max_dirty_fraction: 0.95,
        ..RepairPolicy::default()
    };

    // Crash: a non-cut node loses all its links (node id stays).
    let victim = (0..base.node_count())
        .find(|&x| {
            let survivors: Vec<_> = base
                .edges()
                .map(|(_, uv)| uv)
                .filter(|&(a, b)| a != x && b != x)
                .collect();
            let g = Graph::from_edges(base.node_count(), survivors).unwrap();
            base.nodes().filter(|&y| y != x).all(|y| {
                cpr_graph::traversal::bfs_distances(&g, (x + 1) % base.node_count())[y].is_some()
            })
        })
        .expect("some node is not a cut vertex");
    let crashed = Graph::from_edges(
        base.node_count(),
        base.edges()
            .map(|(_, uv)| uv)
            .filter(|&(a, b)| a != victim && b != victim),
    )
    .unwrap();
    let (u, v) = first_non_edges(&base, 1)[0];
    let grown = with_extra_edges(&base, &[(u, v)]);

    for (label, g) in [("crash", &crashed), ("restore", &base), ("add", &grown)] {
        let scheme = scheme_of(g);
        let stats = healing
            .repair_with(&scheme, g, &mut tracker, &policy)
            .unwrap();
        assert!(!stats.full_rebuild, "{label} step forced a rebuild");
        assert_routes_match_fresh(&healing, &scheme, g);
    }
    assert_eq!(healing.counters().full_rebuilds, 0);
}

/// The loud fallback: a policy whose threshold the dirty set exceeds
/// must rebuild — flagged as *forced* in the stats and counted.
#[test]
fn exceeding_dirty_fraction_forces_a_loud_rebuild() {
    // Closing a uniform-weight path into a cycle improves many pairs, so
    // the dirty set is guaranteed non-empty and a zero threshold trips.
    let base = generators::path(8);
    let uniform = |g: &Graph| EdgeWeights::uniform(g, 1u64);
    let scheme_u = |g: &Graph| DestTable::build(g, &uniform(g), &ShortestPath);
    let mut healing = SelfHealingPlane::new(&scheme_u(&base), &base).unwrap();
    let mut tracker = DeltaTracker::new(ShortestPath, &base, |_, _| 1u64).with_hop_tiebreak(true);
    let policy = RepairPolicy {
        max_dirty_fraction: 0.0,
        ..RepairPolicy::default()
    };

    let grown = with_extra_edges(&base, &[(0, 7)]);
    let scheme = scheme_u(&grown);
    let stats = healing
        .repair_with(&scheme, &grown, &mut tracker, &policy)
        .unwrap();
    assert!(stats.dirty_pairs > 0, "closing the cycle must dirty pairs");
    assert!(stats.full_rebuild, "zero-threshold policy must rebuild");
    assert!(
        stats.forced_rebuild,
        "the rebuild must be flagged as forced"
    );
    assert_eq!(healing.counters().full_rebuilds, 1);
    assert_eq!(healing.counters().incremental_repairs, 0);

    let fresh = SelfHealingPlane::new(&scheme, &grown).unwrap();
    for s in grown.nodes() {
        for t in grown.nodes() {
            if s == t {
                continue;
            }
            assert_eq!(
                healing.lookup(&scheme, &grown, s, t).map(|(p, _)| p),
                fresh.lookup(&scheme, &grown, s, t).map(|(p, _)| p),
                "pair {s} → {t} diverges after forced rebuild"
            );
        }
    }
}
