//! Property test: for every routing scheme in `cpr-routing`, the compiled
//! forwarding plane agrees hop-for-hop with the live
//! [`RoutingScheme::step`] simulation — on random connected `G(n,p)`
//! instances and on random trees (where tree-based schemes are exercised
//! on their natural substrate and table schemes on a sparse one).
//!
//! Agreement is checked by [`cpr_plane::validate`], which replays *every*
//! `(source, target)` pair through both the plane and the simulator and
//! requires identical node sequences (or identical errors).

use cpr_algebra::policies::{self, ShortestPath, WidestPath};
use cpr_graph::{generators, EdgeWeights, Graph};
use cpr_paths::{shortest_widest_exact, AllPairs};
use cpr_plane::{compile, validate};
use cpr_routing::{
    CowenScheme, DestTable, IntervalTreeRouting, LabelSwapping, LandmarkStrategy, RoutingScheme,
    SrcDestTable, SwClassTable, TzTreeRouting,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Compiles `scheme` and validates hop-for-hop agreement on all pairs.
fn check_plane<S: RoutingScheme + Sync>(g: &Graph, scheme: &S) -> Result<(), TestCaseError>
where
    S::Header: Send,
{
    let plane = match compile(scheme, g) {
        Ok(p) => p,
        Err(e) => {
            return Err(TestCaseError::fail(format!(
                "{} failed to compile: {e}",
                scheme.name()
            )))
        }
    };
    if let Err(d) = validate(&plane, scheme, g) {
        return Err(TestCaseError::fail(format!(
            "{} diverges from live simulation: {d}",
            scheme.name()
        )));
    }
    // The interned state space can never exceed nodes × headers.
    prop_assert!(plane.state_count() <= plane.node_count() * plane.header_count());
    Ok(())
}

/// Every scheme in `cpr_routing::schemes`, built over `g` and compiled.
fn check_all_schemes(g: &Graph, seed: u64) -> Result<(), TestCaseError> {
    let mut r = rng(seed ^ 0x9_1A7E);

    let sp = EdgeWeights::random(g, &ShortestPath, &mut r);
    check_plane(g, &DestTable::build(g, &sp, &ShortestPath))?;

    let wp = EdgeWeights::random(g, &WidestPath, &mut r);
    check_plane(g, &IntervalTreeRouting::spanning(g, &wp, &WidestPath))?;
    check_plane(g, &TzTreeRouting::spanning(g, &wp, &WidestPath))?;

    check_plane(
        g,
        &CowenScheme::build(
            g,
            &sp,
            &ShortestPath,
            LandmarkStrategy::TzRandom { attempts: 3 },
            &mut r,
        ),
    )?;

    let sw = policies::shortest_widest();
    let sww = EdgeWeights::random(g, &sw, &mut r);
    check_plane(
        g,
        &SrcDestTable::build(g, "sw", |s| {
            let routes = shortest_widest_exact(g, &sww, s);
            g.nodes()
                .map(|t| routes.path_to(t).map(<[_]>::to_vec))
                .collect()
        }),
    )?;
    check_plane(g, &SwClassTable::build(g, &sww))?;

    let ap = AllPairs::compute(g, &sp, &ShortestPath);
    check_plane(g, &LabelSwapping::provision(g, "sp", |s, t| ap.path(s, t)))?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Compiled planes agree with live stepping on random connected
    /// G(n,p) instances, for all seven schemes.
    #[test]
    fn planes_agree_on_gnp(n in 5usize..16, seed in any::<u64>()) {
        let g = generators::gnp_connected(n, 0.3, &mut rng(seed));
        check_all_schemes(&g, seed)?;
    }

    /// Compiled planes agree with live stepping on random trees.
    #[test]
    fn planes_agree_on_trees(n in 5usize..20, seed in any::<u64>()) {
        let g = generators::random_tree(n, &mut rng(seed));
        check_all_schemes(&g, seed)?;
    }
}
