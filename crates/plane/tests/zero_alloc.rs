//! Pins the zero-allocation contract of the batched lookup core.
//!
//! The serving hot path ([`LookupCore::lookup_batch`]) must not touch
//! the heap once its [`BatchScratch`] has warmed up: every buffer —
//! counting-sort buckets, destination-order permutation, per-query
//! results — grows to its high-water mark on the first batch and is
//! reused afterwards. This test swaps in a counting global allocator
//! and asserts that serving further batches (same size, different
//! queries) performs exactly zero allocations and deallocations.
//!
//! This file deliberately contains the only test in its binary: the
//! counter is process-global, and a concurrently running test would
//! perturb it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cpr_algebra::policies::ShortestPath;
use cpr_graph::{generators, EdgeWeights};
use cpr_paths::AllPairs;
use cpr_plane::{compile, BatchScratch, TrafficPattern};
use cpr_routing::{DestTable, SrcDestTable};
use rand::SeedableRng;

/// Counts every allocation and deallocation routed through the global
/// allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc may move; count it as both so a hot loop that grows
        // a buffer cannot hide behind in-place extension.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn counts() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::SeqCst),
        DEALLOCS.load(Ordering::SeqCst),
    )
}

#[test]
fn lookup_batch_allocates_nothing_after_warmup() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let g = generators::gnp_connected(64, 0.1, &mut rng);
    let w = EdgeWeights::uniform(&g, 1u64);

    // One dense-layout plane (DestTable: n headers, states everywhere)
    // and one sparse-layout plane (SrcDestTable: a header per pair, each
    // alive only along its path) so both core layouts are pinned.
    let dense = compile(&DestTable::build(&g, &w, &ShortestPath), &g).unwrap();
    let ap = AllPairs::compute(&g, &w, &ShortestPath);
    let sd = SrcDestTable::build(&g, "sp", |s| g.nodes().map(|t| ap.path(s, t)).collect());
    let sparse = compile(&sd, &g).unwrap();
    assert_eq!(dense.memory().layout, "dense");
    assert_eq!(sparse.memory().layout, "sparse");

    let batch_len = 4096usize;
    let mut batches = Vec::new();
    for seed in 0..3u64 {
        let mut qrng = rand::rngs::StdRng::seed_from_u64(1000 + seed);
        batches.push(cpr_plane::generate(
            &g,
            &TrafficPattern::Uniform,
            batch_len,
            &mut qrng,
        ));
    }

    for plane in [&dense, &sparse] {
        let core = plane.lookup_core();
        let mut scratch = BatchScratch::new();
        // Warmup: sizes every scratch buffer to its high-water mark.
        let warm = core.lookup_batch(&batches[0], &mut scratch);
        assert!(warm.delivered > 0, "warmup batch delivered nothing");

        let before = counts();
        let mut delivered = 0usize;
        for batch in &batches {
            let stats = core.lookup_batch(batch, &mut scratch);
            delivered += stats.delivered;
            assert_eq!(
                stats.delivered + stats.failed,
                batch_len,
                "every query must be accounted for"
            );
        }
        let after = counts();

        assert_eq!(
            (after.0 - before.0, after.1 - before.1),
            (0, 0),
            "lookup_batch allocated on the warmed-up hot path \
             ({} queries, scheme {})",
            batches.len() * batch_len,
            plane.scheme(),
        );
        assert!(delivered > 0);
    }
}
