//! Plane-vs-topology drift: a compiled [`ForwardingPlane`] is a snapshot
//! of one topology, and these tests pin down what happens when the live
//! graph moves out from under it — the staleness must be *detected*
//! (topology digest + [`SelfHealingPlane::observe`]), the affected pairs
//! must be served by live fallback while dirty, and
//! [`SelfHealingPlane::repair`] must restore hop-for-hop agreement with
//! the live scheme on the new topology without a full recompile.

use std::collections::BTreeSet;

use cpr_algebra::policies::ShortestPath;
use cpr_graph::{traversal, EdgeWeights, Graph, NodeId};
use cpr_plane::{CompileError, SelfHealingPlane, Served};
use cpr_routing::DestTable;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// `g` minus the undirected edge `(a, b)`, with surviving weights carried
/// over in edge order.
fn without_edge(
    g: &Graph,
    w: &EdgeWeights<u64>,
    a: NodeId,
    b: NodeId,
) -> (Graph, EdgeWeights<u64>) {
    let mut edges = Vec::new();
    let mut weights = Vec::new();
    for (e, (u, v)) in g.edges() {
        if (u.min(v), u.max(v)) == (a.min(b), a.max(b)) {
            continue;
        }
        edges.push((u, v));
        weights.push(*w.weight(e));
    }
    let g2 = Graph::from_edges(g.node_count(), edges).unwrap();
    let w2 = EdgeWeights::from_vec(&g2, weights);
    (g2, w2)
}

/// A non-bridge edge of `g` that some live route of `scheme` actually
/// crosses — failing it is guaranteed to dirty at least one pair while
/// keeping the graph connected.
fn routed_non_bridge_edge(g: &Graph, scheme: &DestTable) -> (NodeId, NodeId) {
    let mut used = BTreeSet::new();
    for s in g.nodes() {
        for t in g.nodes() {
            if s == t {
                continue;
            }
            let path = cpr_routing::route(scheme, g, s, t).unwrap();
            for hop in path.windows(2) {
                used.insert((hop[0].min(hop[1]), hop[0].max(hop[1])));
            }
        }
    }
    for &(u, v) in &used {
        let (g2, _) = without_edge(g, &EdgeWeights::uniform(g, 1), u, v);
        if traversal::is_connected(&g2) {
            return (u, v);
        }
    }
    panic!("no routed non-bridge edge in test graph");
}

/// Routes every ordered pair through `healing` and asserts exact node-
/// sequence agreement with the live `scheme` on `graph`. Returns how many
/// pairs were served through at least one patched transition.
fn assert_agrees_all_pairs(
    healing: &mut SelfHealingPlane<DestTable>,
    scheme: &DestTable,
    graph: &Graph,
) -> usize {
    let mut degraded = 0;
    for s in graph.nodes() {
        for t in graph.nodes() {
            if s == t {
                continue;
            }
            let live = cpr_routing::route(scheme, graph, s, t).unwrap();
            let (path, served) = healing.route(scheme, graph, s, t).unwrap();
            assert_eq!(path, live, "pair {s} → {t} disagrees with live scheme");
            if served == Served::Degraded {
                degraded += 1;
            }
        }
    }
    degraded
}

#[test]
fn failed_link_is_detected_repaired_and_reagrees_with_live() {
    let mut r = rng(0xD21F7);
    let g = cpr_graph::generators::gnp_connected(24, 0.18, &mut r);
    let w = EdgeWeights::random(&g, &ShortestPath, &mut r);
    let scheme = DestTable::build(&g, &w, &ShortestPath);

    let mut healing = SelfHealingPlane::new(&scheme, &g).unwrap();
    assert!(healing.base().is_current_for(&g));
    assert!(healing.is_fresh_for(&g));

    // Fail a link the compiled plane actually routes over.
    let (a, b) = routed_non_bridge_edge(&g, &scheme);
    let (g2, w2) = without_edge(&g, &w, a, b);
    let scheme2 = DestTable::build(&g2, &w2, &ShortestPath);

    // Drift is detectable both via the digest and via observe().
    assert!(!healing.base().is_current_for(&g2));
    let stale = healing.observe(&g2).unwrap();
    assert!(stale.stale);
    assert_eq!(stale.removed_edges, vec![(a.min(b), a.max(b))]);
    assert!(stale.added_edges.is_empty());
    assert!(stale.dirty_pairs > 0, "a routed link must dirty some pair");
    assert!(!healing.is_fresh_for(&g2));

    // Pre-repair: dirty pairs are answered by live fallback — correct
    // routes on the *new* graph, never a hop over the dead link.
    let mut fallbacks = 0;
    for s in g2.nodes() {
        for t in g2.nodes() {
            if s == t {
                continue;
            }
            let (path, served) = healing.route(&scheme2, &g2, s, t).unwrap();
            assert_eq!(path.first(), Some(&s));
            assert_eq!(path.last(), Some(&t));
            for hop in path.windows(2) {
                assert!(
                    g2.edge_between(hop[0], hop[1]).is_some(),
                    "pre-repair route {s} → {t} crossed a dead or fictional link"
                );
            }
            if served == Served::Fallback {
                fallbacks += 1;
            }
        }
    }
    assert_eq!(fallbacks, stale.dirty_pairs);

    // Repair re-traces exactly the dirty pairs, incrementally.
    let stats = healing.repair(&scheme2, &g2).unwrap();
    assert!(!stats.full_rebuild);
    assert_eq!(stats.dirty_pairs, stale.dirty_pairs);
    assert_eq!(stats.repaired_pairs, stale.dirty_pairs);
    assert_eq!(stats.unroutable_pairs, 0);
    assert!(stats.patched_states > 0);
    assert_eq!(stats.epoch, 1);
    assert!(healing.is_fresh_for(&g2));

    // Post-repair: hop-for-hop agreement with the live scheme everywhere,
    // with the repaired pairs served through the patch layer.
    let degraded = assert_agrees_all_pairs(&mut healing, &scheme2, &g2);
    assert!(degraded > 0, "repaired pairs should be served via patches");

    let c = healing.counters();
    assert_eq!(c.fallback, fallbacks as u64);
    assert_eq!(c.failed, 0);
    assert_eq!(c.epoch, 1);
    assert_eq!(c.repairs, 1);

    // The batch path reports the same split.
    let queries: Vec<(NodeId, NodeId)> = g2
        .nodes()
        .flat_map(|s| g2.nodes().filter(move |&t| t != s).map(move |t| (s, t)))
        .collect();
    let report = healing.serve(&scheme2, &g2, &queries);
    assert_eq!(report.delivered, queries.len());
    assert!(report.failures.is_empty());
    assert_eq!(report.fallback, 0, "nothing is dirty after repair");
    assert_eq!(report.degraded, degraded);
}

#[test]
fn added_link_degenerates_to_full_rebuild() {
    let g = cpr_graph::generators::path(6);
    let w = EdgeWeights::uniform(&g, 1u64);
    let scheme = DestTable::build(&g, &w, &ShortestPath);
    let mut healing = SelfHealingPlane::new(&scheme, &g).unwrap();

    // Close the path into a cycle: every pair may improve.
    let mut edges: Vec<_> = g.edges().map(|(_, uv)| uv).collect();
    edges.push((5, 0));
    let g2 = Graph::from_edges(6, edges).unwrap();
    let w2 = EdgeWeights::uniform(&g2, 1u64);
    let scheme2 = DestTable::build(&g2, &w2, &ShortestPath);

    let stale = healing.observe(&g2).unwrap();
    assert!(stale.stale);
    assert_eq!(stale.added_edges, vec![(0, 5)]);
    assert_eq!(stale.dirty_pairs, 6 * 5, "a new link dirties every pair");

    let stats = healing.repair(&scheme2, &g2).unwrap();
    assert!(stats.full_rebuild);
    assert_eq!(stats.repaired_pairs, 6 * 5);
    assert!(healing.is_fresh_for(&g2));
    assert!(healing.base().is_current_for(&g2));

    let degraded = assert_agrees_all_pairs(&mut healing, &scheme2, &g2);
    assert_eq!(degraded, 0, "a rebuilt plane has no patch layer");
}

#[test]
fn node_count_change_is_a_loud_error_not_a_repair() {
    let g = cpr_graph::generators::path(4);
    let w = EdgeWeights::uniform(&g, 1u64);
    let scheme = DestTable::build(&g, &w, &ShortestPath);
    let mut healing = SelfHealingPlane::new(&scheme, &g).unwrap();

    let bigger = cpr_graph::generators::path(5);
    let err = healing.observe(&bigger).unwrap_err();
    assert_eq!(
        err,
        CompileError::NodeCountMismatch {
            scheme: 4,
            graph: 5
        }
    );
}

#[test]
fn crash_restore_crash_leaves_no_stale_patch_entries() {
    let mut r = rng(0xCAFE5);
    let g = cpr_graph::generators::gnp_connected(20, 0.2, &mut r);
    let w = EdgeWeights::random(&g, &ShortestPath, &mut r);
    let scheme = DestTable::build(&g, &w, &ShortestPath);
    let mut healing = SelfHealingPlane::new(&scheme, &g).unwrap();
    assert_eq!(healing.patch_entries(), 0, "a fresh plane has no patches");

    let (a, b) = routed_non_bridge_edge(&g, &scheme);
    let (g2, w2) = without_edge(&g, &w, a, b);
    let scheme2 = DestTable::build(&g2, &w2, &ShortestPath);

    // Crash #1: the link fails and the plane heals incrementally.
    let stats1 = healing.repair(&scheme2, &g2).unwrap();
    assert!(!stats1.full_rebuild);
    assert!(stats1.patched_states > 0);
    let first_entries = healing.patch_entries();
    assert!(first_entries > 0);
    assert_agrees_all_pairs(&mut healing, &scheme2, &g2);

    // Restore: the link comes back. An added edge dirties every pair, so
    // the repair degenerates to a rebuild — which must wipe the patch
    // layer, not leave crash #1's overrides shadowing the fresh base.
    let restore = healing.repair(&scheme, &g).unwrap();
    assert!(restore.full_rebuild);
    assert_eq!(restore.patched_states, 0);
    assert_eq!(
        healing.patch_entries(),
        0,
        "stale patch entries survived the restore rebuild"
    );
    assert!(healing.is_fresh_for(&g));
    let degraded = assert_agrees_all_pairs(&mut healing, &scheme, &g);
    assert_eq!(degraded, 0, "restored plane must serve pure base routes");

    // Crash #2 — the same link again. The rebuilt plane must heal
    // exactly as the original did: identical dirty set and an identical
    // patch layer, with nothing accumulated across the cycle.
    let stats2 = healing.repair(&scheme2, &g2).unwrap();
    assert!(!stats2.full_rebuild);
    assert_eq!(stats2.dirty_pairs, stats1.dirty_pairs);
    assert_eq!(stats2.repaired_pairs, stats1.repaired_pairs);
    assert_eq!(stats2.unroutable_pairs, 0);
    assert_eq!(stats2.patched_states, stats1.patched_states);
    assert_eq!(
        healing.patch_entries(),
        first_entries,
        "second repair of the same fault produced a different patch layer"
    );
    let degraded2 = assert_agrees_all_pairs(&mut healing, &scheme2, &g2);
    assert!(degraded2 > 0, "healed pairs must route through patches");
}
