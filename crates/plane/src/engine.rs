//! The batched query engine: sharded workers serving compiled lookups.
//!
//! [`serve`] splits a query batch into contiguous chunks and walks each
//! chunk through the [`ForwardingPlane`] on its own scoped thread; the
//! plane is immutable, so workers share it without locks. Per-shard
//! statistics are merged into a [`ServeReport`] carrying throughput, hop
//! counts, hop stretch against the `cpr-paths` all-pairs optima
//! ([`HopOptima`]) and — never masked — every failed query with its
//! [`RouteError`].

use std::fmt;
use std::time::{Duration, Instant};

use cpr_algebra::policies::ShortestPath;
use cpr_algebra::PathWeight;
use cpr_graph::{EdgeWeights, Graph, NodeId};
use cpr_paths::AllPairs;
use cpr_routing::RouteError;

use crate::compile::{Decision, ForwardingPlane};

/// Engine tuning knobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of worker shards. Clamped to the batch size; `0` is
    /// treated as `1`.
    pub shards: usize,
}

impl EngineConfig {
    /// A config with an explicit shard count.
    pub fn with_shards(shards: usize) -> Self {
        EngineConfig { shards }
    }
}

impl Default for EngineConfig {
    /// One shard per worker thread of the workspace execution layer:
    /// `CPR_THREADS` when set, otherwise the available hardware threads.
    fn default() -> Self {
        EngineConfig {
            shards: cpr_core::par::thread_count(),
        }
    }
}

/// Hop-count distances from the `cpr-paths` all-pairs solver (shortest
/// path under uniform unit weights), used to score hop stretch.
#[derive(Clone, Debug)]
pub struct HopOptima {
    n: usize,
    dist: Vec<u32>,
}

impl HopOptima {
    /// Computes all-pairs hop distances for `graph`.
    pub fn compute(graph: &Graph) -> Self {
        let n = graph.node_count();
        let w = EdgeWeights::uniform(graph, 1u64);
        let ap = AllPairs::compute(graph, &w, &ShortestPath);
        let mut dist = vec![u32::MAX; n * n];
        for s in graph.nodes() {
            for t in graph.nodes() {
                if let PathWeight::Finite(d) = ap.weight(s, t) {
                    dist[s * n + t] = *d as u32;
                }
            }
        }
        HopOptima { n, dist }
    }

    /// The optimal hop count `s → t`, or `None` when disconnected.
    #[inline]
    pub fn hops(&self, s: NodeId, t: NodeId) -> Option<u32> {
        let d = self.dist[s * self.n + t];
        if d == u32::MAX {
            None
        } else {
            Some(d)
        }
    }
}

/// A query the plane failed to deliver, with the surfaced error.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryFailure {
    /// Source of the failed query.
    pub source: NodeId,
    /// Target of the failed query.
    pub target: NodeId,
    /// Why it failed.
    pub error: RouteError,
}

/// Hop-stretch statistics over the delivered queries whose optimal hop
/// count is at least 1.
#[derive(Clone, Debug, PartialEq)]
pub struct StretchStats {
    /// Mean of `hops / optimal_hops`.
    pub mean: f64,
    /// Worst observed ratio.
    pub max: f64,
    /// Number of queries scored.
    pub samples: usize,
}

/// The merged outcome of serving one batch.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Scheme the plane was compiled from.
    pub scheme: String,
    /// Number of queries in the batch.
    pub queries: usize,
    /// Worker shards actually used.
    pub shards: usize,
    /// Queries delivered at their target.
    pub delivered: usize,
    /// Every failed query, in batch order within each shard.
    pub failures: Vec<QueryFailure>,
    /// Total hops across delivered queries.
    pub total_hops: u64,
    /// Longest delivered route.
    pub max_hops: usize,
    /// Wall-clock time spent serving.
    pub elapsed: Duration,
    /// Hop stretch vs [`HopOptima`], when optima were supplied.
    pub stretch: Option<StretchStats>,
    /// Queries served through a patched (repaired) walk rather than the
    /// pristine compiled arrays. Always `0` for [`serve`]; filled by the
    /// self-healing plane's serve path.
    pub degraded: usize,
    /// Queries answered by falling back to the live scheme because their
    /// pair was dirty (awaiting repair). Always `0` for [`serve`].
    pub fallback: usize,
}

impl ServeReport {
    /// Queries served per second.
    pub fn throughput_qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Mean hops over delivered queries.
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} queries / {} shard(s) in {:.2?} — {:.2} Mq/s, {} delivered \
             (avg {:.2} hops, max {}), {} failed",
            self.scheme,
            self.queries,
            self.shards,
            self.elapsed,
            self.throughput_qps() / 1e6,
            self.delivered,
            self.mean_hops(),
            self.max_hops,
            self.failures.len()
        )?;
        if self.degraded > 0 || self.fallback > 0 {
            write!(
                f,
                ", {} degraded (patched walk), {} fallback (live route)",
                self.degraded, self.fallback
            )?;
        }
        if let Some(s) = &self.stretch {
            write!(
                f,
                ", hop stretch mean {:.3} max {:.2} ({} scored)",
                s.mean, s.max, s.samples
            )?;
        }
        Ok(())
    }
}

#[derive(Default)]
struct ShardStats {
    delivered: usize,
    total_hops: u64,
    max_hops: usize,
    failures: Vec<QueryFailure>,
    stretch_sum: f64,
    stretch_max: f64,
    stretch_samples: usize,
}

fn run_shard(
    plane: &ForwardingPlane,
    queries: &[(NodeId, NodeId)],
    optima: Option<&HopOptima>,
    record: bool,
) -> (ShardStats, cpr_obs::ShardMetrics) {
    let budget = plane.hop_budget();
    let mut st = ShardStats::default();
    let mut metrics = cpr_obs::ShardMetrics::new();
    for &(source, target) in queries {
        let Some(mut hid) = plane.initial_id(source, target) else {
            if record {
                metrics.add("plane.serve.unroutable", 1);
            }
            st.failures.push(QueryFailure {
                source,
                target,
                error: RouteError::Unroutable { source, target },
            });
            continue;
        };
        let mut at = source;
        let mut hops = 0usize;
        loop {
            match plane.decide(at, hid) {
                Decision::Deliver => {
                    st.delivered += 1;
                    st.total_hops += hops as u64;
                    st.max_hops = st.max_hops.max(hops);
                    if record {
                        // Latency in hops: the logical per-query service
                        // cost, bucketed exactly.
                        metrics.record("plane.serve.hops", hops as u64);
                    }
                    if let Some(opt) = optima {
                        if let Some(d) = opt.hops(source, target) {
                            if d > 0 {
                                let ratio = hops as f64 / f64::from(d);
                                st.stretch_sum += ratio;
                                st.stretch_max = st.stretch_max.max(ratio);
                                st.stretch_samples += 1;
                            }
                        }
                    }
                    break;
                }
                Decision::Forward { port, next } => {
                    let Some(next_node) = plane.neighbor(at, port) else {
                        st.failures.push(QueryFailure {
                            source,
                            target,
                            error: RouteError::BadPort { at, port },
                        });
                        break;
                    };
                    at = next_node;
                    hid = next;
                    hops += 1;
                    if hops > budget {
                        // Replay the walk to surface the full visited
                        // sequence — failures are rare, so the extra
                        // pass costs nothing on the hot path.
                        let error = plane.walk(source, target).err().unwrap_or(
                            RouteError::HopBudgetExhausted {
                                visited: Vec::new(),
                            },
                        );
                        st.failures.push(QueryFailure {
                            source,
                            target,
                            error,
                        });
                        break;
                    }
                }
                Decision::Invalid => {
                    st.failures.push(QueryFailure {
                        source,
                        target,
                        error: RouteError::Unroutable { source, target },
                    });
                    break;
                }
            }
        }
    }
    if record {
        metrics.add("plane.serve.failed", st.failures.len() as u64);
    }
    (st, metrics)
}

/// Serves `queries` against the compiled plane across
/// [`EngineConfig::shards`] scoped worker threads.
///
/// Pass [`HopOptima`] to score hop stretch; pass `None` to skip the
/// all-pairs comparison (e.g. in throughput benchmarks).
pub fn serve(
    plane: &ForwardingPlane,
    queries: &[(NodeId, NodeId)],
    optima: Option<&HopOptima>,
    config: &EngineConfig,
) -> ServeReport {
    serve_obs(plane, queries, optima, config, &cpr_obs::Obs::disabled())
}

/// [`serve`], recording engine metrics into `obs`: a per-query
/// `plane.serve.hops` latency histogram (exact hop buckets, recorded
/// into per-shard [`cpr_obs::ShardMetrics`] absorbed in shard index
/// order, so the histogram is byte-identical for any shard count),
/// delivered/unroutable/failed counters, and a trace event carrying the
/// batch's wall-clock serve time (tracer only — wall clocks stay out of
/// the registry).
pub fn serve_obs(
    plane: &ForwardingPlane,
    queries: &[(NodeId, NodeId)],
    optima: Option<&HopOptima>,
    config: &EngineConfig,
    obs: &cpr_obs::Obs,
) -> ServeReport {
    let shards = config.shards.max(1).min(queries.len().max(1));
    let chunk = queries.len().div_ceil(shards).max(1);
    let record = obs.is_enabled();
    let start = Instant::now();
    let mut stats: Vec<ShardStats> = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|c| scope.spawn(move || run_shard(plane, c, optima, record)))
            .collect();
        // Join in spawn order = shard index order; shard metrics are
        // absorbed in the same order.
        for h in handles {
            let (st, metrics) = h.join().expect("shard worker panicked");
            obs.absorb(metrics);
            stats.push(st);
        }
    });
    let elapsed = start.elapsed();
    obs.incr("plane.serve.batches");
    obs.add("plane.serve.queries", queries.len() as u64);
    obs.event(
        "plane.serve",
        &[
            ("scheme", cpr_obs::Json::str(plane.scheme())),
            ("queries", cpr_obs::Json::int(queries.len())),
            ("shards", cpr_obs::Json::int(stats.len())),
            ("micros", cpr_obs::Json::int(elapsed.as_micros())),
        ],
    );

    let used = stats.len().max(1);
    let mut report = ServeReport {
        scheme: plane.scheme().to_string(),
        queries: queries.len(),
        shards: used,
        delivered: 0,
        failures: Vec::new(),
        total_hops: 0,
        max_hops: 0,
        elapsed,
        stretch: None,
        degraded: 0,
        fallback: 0,
    };
    let mut stretch_sum = 0.0;
    let mut stretch_max = 0.0f64;
    let mut stretch_samples = 0usize;
    for st in stats {
        report.delivered += st.delivered;
        report.total_hops += st.total_hops;
        report.max_hops = report.max_hops.max(st.max_hops);
        report.failures.extend(st.failures);
        stretch_sum += st.stretch_sum;
        stretch_max = stretch_max.max(st.stretch_max);
        stretch_samples += st.stretch_samples;
    }
    obs.add("plane.serve.delivered", report.delivered as u64);
    if optima.is_some() {
        report.stretch = Some(StretchStats {
            mean: if stretch_samples == 0 {
                1.0
            } else {
                stretch_sum / stretch_samples as f64
            },
            max: stretch_max,
            samples: stretch_samples,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::workload::{generate, TrafficPattern};
    use cpr_algebra::policies::ShortestPath;
    use cpr_graph::generators;
    use cpr_routing::DestTable;
    use rand::SeedableRng;

    fn plane_on_gnp(n: usize, seed: u64) -> (Graph, ForwardingPlane) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, 0.12, &mut rng);
        let w = EdgeWeights::uniform(&g, 1u64);
        let scheme = DestTable::build(&g, &w, &ShortestPath);
        let plane = compile(&scheme, &g).unwrap();
        (g, plane)
    }

    #[test]
    fn serves_uniform_batch_with_optimal_stretch() {
        let (g, plane) = plane_on_gnp(30, 11);
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let queries = generate(&g, &TrafficPattern::Uniform, 2000, &mut rng);
        let optima = HopOptima::compute(&g);
        let report = serve(
            &plane,
            &queries,
            Some(&optima),
            &EngineConfig::with_shards(1),
        );
        assert_eq!(report.delivered, 2000);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        // Destination tables under shortest path are hop-optimal.
        let s = report.stretch.as_ref().unwrap();
        assert!((s.mean - 1.0).abs() < 1e-9, "mean stretch {}", s.mean);
        assert_eq!(s.samples, 2000);
        assert!(report.throughput_qps() > 0.0);
    }

    #[test]
    fn sharded_serving_matches_single_shard() {
        let (g, plane) = plane_on_gnp(25, 13);
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let queries = generate(&g, &TrafficPattern::Gravity, 999, &mut rng);
        let one = serve(&plane, &queries, None, &EngineConfig::with_shards(1));
        let four = serve(&plane, &queries, None, &EngineConfig::with_shards(4));
        assert_eq!(one.delivered, four.delivered);
        assert_eq!(one.total_hops, four.total_hops);
        assert_eq!(one.max_hops, four.max_hops);
        assert_eq!(four.shards, 4);
    }

    #[test]
    fn unroutable_queries_are_reported_not_masked() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let w = EdgeWeights::uniform(&g, 1u64);
        let scheme = DestTable::build(&g, &w, &ShortestPath);
        let plane = compile(&scheme, &g).unwrap();
        let queries = vec![(0, 1), (0, 2), (2, 3), (3, 1)];
        let report = serve(&plane, &queries, None, &EngineConfig::with_shards(2));
        assert_eq!(report.delivered, 2);
        assert_eq!(report.failures.len(), 2);
        assert!(report
            .failures
            .iter()
            .all(|f| matches!(f.error, RouteError::Unroutable { .. })));
        assert!(report.to_string().contains("2 failed"));
    }

    #[test]
    fn shard_count_is_clamped_to_batch_size() {
        let (_, plane) = plane_on_gnp(10, 15);
        let report = serve(&plane, &[(0, 1)], None, &EngineConfig::with_shards(64));
        assert_eq!(report.shards, 1);
        assert_eq!(report.queries, 1);
    }
}
