//! The batched query engine: sharded workers serving compiled lookups
//! through a zero-allocation flat core.
//!
//! [`serve`] decodes the plane once into a [`LookupCore`] — every
//! transition unpacked into contiguous struct-of-arrays `u32` tables
//! with ports pre-resolved to neighbor ids — then splits the batch into
//! contiguous chunks and walks each chunk on its own scoped thread; the
//! core is immutable, so workers share it without locks. Inside a shard,
//! queries are processed in **destination order** (a counting sort into
//! a reusable scratch permutation): same-destination queries touch the
//! same transition rows back to back, so the walk stays in cache instead
//! of striding the table at random. After its scratch warms up, the core
//! performs **zero heap allocations per query** — pinned by the
//! counting-allocator test in `tests/zero_alloc.rs`. Per-shard
//! statistics are merged into a [`ServeReport`] carrying throughput, hop
//! counts, hop stretch against the `cpr-paths` optima ([`HopOptima`])
//! and — never masked — every failed query with its [`RouteError`].

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cpr_graph::{Graph, NodeId};
use cpr_paths::HopMatrix;
use cpr_routing::RouteError;

use crate::compile::{Decision, ForwardingPlane, PackedArray};

/// Sentinel in a core's `next_node` slot: deliver here.
pub(crate) const CORE_DELIVER: u32 = u32::MAX;
/// Sentinel in a core's `next_node` slot: no transition stored (reaching
/// it from an initial header is a plane inconsistency, surfaced as a
/// failure).
pub(crate) const CORE_INVALID: u32 = u32::MAX - 1;

/// Per-query result sentinel in [`BatchScratch::hops`]: the scheme
/// declared the pair unroutable (no initial header).
const HOPS_UNROUTABLE: u32 = u32::MAX;
/// Per-query result sentinel: the walk failed (invalid state, bad port
/// or hop-budget exhaustion) — replay [`ForwardingPlane::walk`] for the
/// exact error.
const HOPS_FAILED: u32 = u32::MAX - 1;

/// The flattened serving core decoded from a [`ForwardingPlane`] by
/// [`ForwardingPlane::lookup_core`].
///
/// Layout: parallel `u32` arrays (struct-of-arrays). `next_node[i]`
/// holds the pre-resolved neighbor id of transition slot `i` (or a
/// deliver/invalid sentinel) and `next_hid[i]` the rewritten header id —
/// one hop is two sequential loads from flat arrays, no bit-field
/// decode, no CSR indirection, no branch on layout in the inner loop
/// beyond the enum dispatch.
pub struct LookupCore<'p> {
    pub(crate) plane: &'p ForwardingPlane,
    pub(crate) layout: CoreLayout,
}

/// Decoded transition storage of a [`LookupCore`] or [`StaticCore`].
#[derive(Clone)]
pub(crate) enum CoreLayout {
    /// Flat `headers × n` tables indexed by `hid * n + node`.
    Dense {
        next_node: Vec<u32>,
        next_hid: Vec<u32>,
    },
    /// CSR runs per node, keys sorted for binary search over plain `u32`s.
    Sparse {
        offsets: Vec<u32>,
        keys: Vec<u32>,
        next_node: Vec<u32>,
        next_hid: Vec<u32>,
    },
}

impl CoreLayout {
    /// One decoded transition: `(next node | sentinel, next header id)`.
    /// Shared by the borrowed [`LookupCore`] and the owned
    /// [`StaticCore`] so both walk the exact same flat arrays.
    #[inline(always)]
    fn step(&self, n: usize, at: u32, hid: u32) -> (u32, u32) {
        match self {
            CoreLayout::Dense {
                next_node,
                next_hid,
            } => {
                let i = (hid as usize) * n + at as usize;
                (next_node[i], next_hid[i])
            }
            CoreLayout::Sparse {
                offsets,
                keys,
                next_node,
                next_hid,
            } => {
                let lo = offsets[at as usize] as usize;
                let hi = offsets[at as usize + 1] as usize;
                match keys[lo..hi].binary_search(&hid) {
                    Ok(k) => (next_node[lo + k], next_hid[lo + k]),
                    Err(_) => (CORE_INVALID, 0),
                }
            }
        }
    }
}

/// An owned, lifetime-free serving core decoded from a
/// [`ForwardingPlane`] by [`ForwardingPlane::static_core`].
///
/// Same flat pre-resolved struct-of-arrays transitions as
/// [`LookupCore`], but the initial-header table is held through an
/// `Arc` instead of a borrow of the plane — a multi-algebra serving
/// snapshot carries one `StaticCore` per traffic class across epoch
/// swaps without tying the snapshot's lifetime to the master plane.
/// Walks allocate only the returned path vector; the per-hop decisions
/// are two sequential `u32` loads, identical to the batched core.
#[derive(Clone)]
pub struct StaticCore {
    n: usize,
    /// Interned header count; doubles as the "unroutable" sentinel in
    /// the packed initial table.
    headers: usize,
    hop_budget: usize,
    initial: Arc<PackedArray>,
    layout: CoreLayout,
}

impl StaticCore {
    pub(crate) fn new(
        n: usize,
        headers: usize,
        hop_budget: usize,
        initial: Arc<PackedArray>,
        layout: CoreLayout,
    ) -> Self {
        StaticCore {
            n,
            headers,
            hop_budget,
            initial,
            layout,
        }
    }

    /// Node count of the compiled topology.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The interned initial-header id a source attaches for `target`,
    /// or `None` when the scheme declared the pair unroutable.
    #[inline]
    pub fn initial_id(&self, source: NodeId, target: NodeId) -> Option<u32> {
        let v = self.initial.get(source * self.n + target);
        if v == self.headers as u64 {
            None
        } else {
            Some(v as u32)
        }
    }

    /// Replays `source → target` through the flat core and returns the
    /// full node sequence — the owned-core analogue of
    /// [`ForwardingPlane::walk`], byte-identical on every input.
    ///
    /// # Errors
    ///
    /// Returns the same [`RouteError`]s the plane walk would: an
    /// unroutable pair (also covering invalid states — the flat core
    /// collapses bad ports into the invalid sentinel at decode time) or
    /// hop-budget exhaustion.
    pub fn walk(&self, source: NodeId, target: NodeId) -> Result<Vec<NodeId>, RouteError> {
        let Some(mut hid) = self.initial_id(source, target) else {
            return Err(RouteError::Unroutable { source, target });
        };
        let mut at = source as u32;
        let mut visited = Vec::with_capacity(
            (4 * (usize::BITS - self.n.leading_zeros()) as usize + 8).min(self.hop_budget + 1),
        );
        visited.push(source);
        loop {
            let (nn, nh) = self.layout.step(self.n, at, hid);
            if nn == CORE_DELIVER {
                return Ok(visited);
            }
            if nn >= CORE_INVALID {
                return Err(RouteError::Unroutable { source, target });
            }
            at = nn;
            hid = nh;
            visited.push(at as NodeId);
            if visited.len() > self.hop_budget {
                return Err(RouteError::HopBudgetExhausted { visited });
            }
        }
    }
}

/// Reusable per-worker scratch for [`LookupCore::lookup_batch`]: the
/// destination-order permutation, its counting-sort buckets, and the
/// per-query hop results. All buffers grow to their high-water mark on
/// the first batch and are reused allocation-free afterwards.
#[derive(Default)]
pub struct BatchScratch {
    /// Counting-sort buckets, one per destination node.
    counts: Vec<u32>,
    /// Query indices permuted into ascending-destination order.
    order: Vec<u32>,
    /// Per-query hop count in *original batch order*;
    /// [`HOPS_UNROUTABLE`]/[`HOPS_FAILED`] mark failures.
    hops: Vec<u32>,
}

impl BatchScratch {
    /// Empty scratch; buffers are sized lazily by the first batch.
    pub fn new() -> Self {
        BatchScratch::default()
    }

    /// Per-query outcomes of the last [`LookupCore::lookup_batch`] call,
    /// in original batch order: `Some(hops)` for delivered queries,
    /// `None` for failures (unroutable pairs and walk failures alike).
    pub fn results(&self) -> impl Iterator<Item = Option<u32>> + '_ {
        self.hops
            .iter()
            .map(|&h| if h < HOPS_FAILED { Some(h) } else { None })
    }
}

/// Aggregate outcome of one [`LookupCore::lookup_batch`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Queries delivered at their target.
    pub delivered: usize,
    /// Total hops across delivered queries.
    pub total_hops: u64,
    /// Longest delivered route.
    pub max_hops: u32,
    /// Failed queries (unroutable pairs and walk failures).
    pub failed: usize,
}

impl<'p> LookupCore<'p> {
    /// The plane this core was decoded from.
    pub fn plane(&self) -> &'p ForwardingPlane {
        self.plane
    }

    /// One decoded transition: `(next node | sentinel, next header id)`.
    #[inline(always)]
    fn step(&self, at: u32, hid: u32) -> (u32, u32) {
        self.layout.step(self.plane.node_count(), at, hid)
    }

    /// Walks every query of `batch` through the core in ascending
    /// destination order, leaving the per-query hop count (or a failure
    /// sentinel) in `scratch.hops` indexed by *original batch position*,
    /// and returns the aggregate [`BatchStats`].
    ///
    /// After `scratch` has served one batch of at least this size, the
    /// call performs no heap allocation at all — the counting sort, the
    /// permutation and the results all live in the reused buffers.
    pub fn lookup_batch(
        &self,
        batch: &[(NodeId, NodeId)],
        scratch: &mut BatchScratch,
    ) -> BatchStats {
        let plane = self.plane;
        let n = plane.node_count();
        let budget = plane.hop_budget() as u32;

        // Counting sort of query indices by destination: sequential
        // destinations make consecutive walks share transition rows, the
        // cache-friendly (and prefetch-friendly) access pattern.
        scratch.counts.clear();
        scratch.counts.resize(n, 0);
        for &(_, t) in batch {
            scratch.counts[t] += 1;
        }
        let mut run = 0u32;
        for c in scratch.counts.iter_mut() {
            let start = run;
            run += *c;
            *c = start;
        }
        scratch.order.clear();
        scratch.order.resize(batch.len(), 0);
        for (i, &(_, t)) in batch.iter().enumerate() {
            scratch.order[scratch.counts[t] as usize] = i as u32;
            scratch.counts[t] += 1;
        }

        scratch.hops.clear();
        scratch.hops.resize(batch.len(), 0);
        let mut stats = BatchStats::default();
        for k in 0..scratch.order.len() {
            let idx = scratch.order[k] as usize;
            let (source, target) = batch[idx];
            let Some(mut hid) = plane.initial_id(source, target) else {
                scratch.hops[idx] = HOPS_UNROUTABLE;
                stats.failed += 1;
                continue;
            };
            let mut at = source as u32;
            let mut hops = 0u32;
            let outcome = loop {
                let (nn, nh) = self.step(at, hid);
                if nn >= CORE_INVALID {
                    break if nn == CORE_DELIVER {
                        hops
                    } else {
                        HOPS_FAILED
                    };
                }
                at = nn;
                hid = nh;
                hops += 1;
                if hops > budget {
                    break HOPS_FAILED;
                }
            };
            scratch.hops[idx] = outcome;
            if outcome < HOPS_FAILED {
                stats.delivered += 1;
                stats.total_hops += u64::from(outcome);
                stats.max_hops = stats.max_hops.max(outcome);
            } else {
                stats.failed += 1;
            }
        }
        stats
    }
}

/// Engine tuning knobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of worker shards. Clamped to the batch size; `0` is
    /// treated as `1`.
    pub shards: usize,
}

impl EngineConfig {
    /// A config with an explicit shard count.
    pub fn with_shards(shards: usize) -> Self {
        EngineConfig { shards }
    }
}

impl Default for EngineConfig {
    /// One shard per worker thread of the workspace execution layer:
    /// `CPR_THREADS` when set, otherwise the available hardware threads.
    fn default() -> Self {
        EngineConfig {
            shards: cpr_core::par::thread_count(),
        }
    }
}

/// Hop-count distances used to score hop stretch: a thin wrapper over
/// the `cpr-paths` parallel-BFS [`HopMatrix`] (shortest path under
/// uniform unit weights, 4 flat bytes per pair — no preferred trees, no
/// `PathWeight` enums, so it stays feasible at Internet-scale node
/// counts).
#[derive(Clone, Debug)]
pub struct HopOptima {
    hops: HopMatrix,
}

impl HopOptima {
    /// Computes all-pairs hop distances for `graph` by parallel BFS.
    pub fn compute(graph: &Graph) -> Self {
        HopOptima {
            hops: HopMatrix::compute(graph),
        }
    }

    /// The optimal hop count `s → t`, or `None` when disconnected.
    #[inline]
    pub fn hops(&self, s: NodeId, t: NodeId) -> Option<u32> {
        self.hops.hops(s, t)
    }

    /// Bytes of the flat distance storage.
    pub fn bytes(&self) -> usize {
        self.hops.bytes()
    }
}

/// A query the plane failed to deliver, with the surfaced error.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryFailure {
    /// Source of the failed query.
    pub source: NodeId,
    /// Target of the failed query.
    pub target: NodeId,
    /// Why it failed.
    pub error: RouteError,
}

/// Hop-stretch statistics over the delivered queries whose optimal hop
/// count is at least 1.
#[derive(Clone, Debug, PartialEq)]
pub struct StretchStats {
    /// Mean of `hops / optimal_hops`.
    pub mean: f64,
    /// Worst observed ratio.
    pub max: f64,
    /// Number of queries scored.
    pub samples: usize,
}

/// The merged outcome of serving one batch.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Scheme the plane was compiled from.
    pub scheme: String,
    /// Number of queries in the batch.
    pub queries: usize,
    /// Worker shards actually used.
    pub shards: usize,
    /// Queries delivered at their target.
    pub delivered: usize,
    /// Every failed query, in batch order within each shard.
    pub failures: Vec<QueryFailure>,
    /// Total hops across delivered queries.
    pub total_hops: u64,
    /// Longest delivered route.
    pub max_hops: usize,
    /// Wall-clock time spent serving.
    pub elapsed: Duration,
    /// Hop stretch vs [`HopOptima`], when optima were supplied.
    pub stretch: Option<StretchStats>,
    /// Queries served through a patched (repaired) walk rather than the
    /// pristine compiled arrays. Always `0` for [`serve`]; filled by the
    /// self-healing plane's serve path.
    pub degraded: usize,
    /// Queries answered by falling back to the live scheme because their
    /// pair was dirty (awaiting repair). Always `0` for [`serve`].
    pub fallback: usize,
}

impl ServeReport {
    /// Queries served per second.
    pub fn throughput_qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Mean hops over delivered queries.
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} queries / {} shard(s) in {:.2?} — {:.2} Mq/s, {} delivered \
             (avg {:.2} hops, max {}), {} failed",
            self.scheme,
            self.queries,
            self.shards,
            self.elapsed,
            self.throughput_qps() / 1e6,
            self.delivered,
            self.mean_hops(),
            self.max_hops,
            self.failures.len()
        )?;
        if self.degraded > 0 || self.fallback > 0 {
            write!(
                f,
                ", {} degraded (patched walk), {} fallback (live route)",
                self.degraded, self.fallback
            )?;
        }
        if let Some(s) = &self.stretch {
            write!(
                f,
                ", hop stretch mean {:.3} max {:.2} ({} scored)",
                s.mean, s.max, s.samples
            )?;
        }
        Ok(())
    }
}

#[derive(Default)]
struct ShardStats {
    delivered: usize,
    total_hops: u64,
    max_hops: usize,
    failures: Vec<QueryFailure>,
    stretch_sum: f64,
    stretch_max: f64,
    stretch_samples: usize,
}

/// Re-walks one failed query through the packed arrays with the exact
/// decide-loop semantics of the serving engine, returning the surfaced
/// error. Cold path: failures are rare, so the slow packed walk costs
/// nothing against the batched core.
#[cold]
fn classify_failure(plane: &ForwardingPlane, source: NodeId, target: NodeId) -> RouteError {
    let budget = plane.hop_budget();
    let Some(mut hid) = plane.initial_id(source, target) else {
        return RouteError::Unroutable { source, target };
    };
    let mut at = source;
    let mut hops = 0usize;
    loop {
        match plane.decide(at, hid) {
            // The batched core flagged this query as failed; a delivery
            // here would mean the decoded core disagrees with the packed
            // arrays it was built from.
            Decision::Deliver => {
                unreachable!("core reported failure for a deliverable query {source}->{target}")
            }
            Decision::Forward { port, next } => {
                let Some(next_node) = plane.neighbor(at, port) else {
                    return RouteError::BadPort { at, port };
                };
                at = next_node;
                hid = next;
                hops += 1;
                if hops > budget {
                    // Replay the walk to surface the full visited
                    // sequence for diagnostics.
                    return plane.walk(source, target).err().unwrap_or(
                        RouteError::HopBudgetExhausted {
                            visited: Vec::new(),
                        },
                    );
                }
            }
            Decision::Invalid => return RouteError::Unroutable { source, target },
        }
    }
}

fn run_shard(
    core: &LookupCore<'_>,
    queries: &[(NodeId, NodeId)],
    optima: Option<&HopOptima>,
    record: bool,
) -> (ShardStats, cpr_obs::ShardMetrics) {
    let plane = core.plane;
    let mut scratch = BatchScratch::new();
    core.lookup_batch(queries, &mut scratch);
    let mut st = ShardStats::default();
    let mut metrics = cpr_obs::ShardMetrics::new();
    // Stats, metrics and failures are folded in original batch order so
    // reports and the obs registry stay byte-identical to the pre-core
    // engine regardless of the destination-ordered walk above.
    for (i, &(source, target)) in queries.iter().enumerate() {
        match scratch.hops[i] {
            HOPS_UNROUTABLE => {
                if record {
                    metrics.add("plane.serve.unroutable", 1);
                }
                st.failures.push(QueryFailure {
                    source,
                    target,
                    error: RouteError::Unroutable { source, target },
                });
            }
            HOPS_FAILED => {
                st.failures.push(QueryFailure {
                    source,
                    target,
                    error: classify_failure(plane, source, target),
                });
            }
            hops => {
                let hops = hops as usize;
                st.delivered += 1;
                st.total_hops += hops as u64;
                st.max_hops = st.max_hops.max(hops);
                if record {
                    // Latency in hops: the logical per-query service
                    // cost, bucketed exactly.
                    metrics.record("plane.serve.hops", hops as u64);
                }
                if let Some(opt) = optima {
                    if let Some(d) = opt.hops(source, target) {
                        if d > 0 {
                            let ratio = hops as f64 / f64::from(d);
                            st.stretch_sum += ratio;
                            st.stretch_max = st.stretch_max.max(ratio);
                            st.stretch_samples += 1;
                        }
                    }
                }
            }
        }
    }
    if record {
        metrics.add("plane.serve.failed", st.failures.len() as u64);
    }
    (st, metrics)
}

/// Serves `queries` against the compiled plane across
/// [`EngineConfig::shards`] scoped worker threads.
///
/// Pass [`HopOptima`] to score hop stretch; pass `None` to skip the
/// all-pairs comparison (e.g. in throughput benchmarks).
pub fn serve(
    plane: &ForwardingPlane,
    queries: &[(NodeId, NodeId)],
    optima: Option<&HopOptima>,
    config: &EngineConfig,
) -> ServeReport {
    serve_obs(plane, queries, optima, config, &cpr_obs::Obs::disabled())
}

/// [`serve`], recording engine metrics into `obs`: a per-query
/// `plane.serve.hops` latency histogram (exact hop buckets, recorded
/// into per-shard [`cpr_obs::ShardMetrics`] absorbed in shard index
/// order, so the histogram is byte-identical for any shard count),
/// delivered/unroutable/failed counters, and a trace event carrying the
/// batch's wall-clock serve time (tracer only — wall clocks stay out of
/// the registry).
pub fn serve_obs(
    plane: &ForwardingPlane,
    queries: &[(NodeId, NodeId)],
    optima: Option<&HopOptima>,
    config: &EngineConfig,
    obs: &cpr_obs::Obs,
) -> ServeReport {
    let shards = config.shards.max(1).min(queries.len().max(1));
    let chunk = queries.len().div_ceil(shards).max(1);
    let record = obs.is_enabled();
    // Decode once, share read-only across every worker shard.
    let core = plane.lookup_core();
    let start = Instant::now();
    let mut stats: Vec<ShardStats> = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let core = &core;
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|c| scope.spawn(move || run_shard(core, c, optima, record)))
            .collect();
        // Join in spawn order = shard index order; shard metrics are
        // absorbed in the same order.
        for h in handles {
            let (st, metrics) = h.join().expect("shard worker panicked");
            obs.absorb(metrics);
            stats.push(st);
        }
    });
    let elapsed = start.elapsed();
    obs.incr("plane.serve.batches");
    obs.add("plane.serve.queries", queries.len() as u64);
    obs.event(
        "plane.serve",
        &[
            ("scheme", cpr_obs::Json::str(plane.scheme())),
            ("queries", cpr_obs::Json::int(queries.len())),
            ("shards", cpr_obs::Json::int(stats.len())),
            ("micros", cpr_obs::Json::int(elapsed.as_micros())),
        ],
    );

    let used = stats.len().max(1);
    let mut report = ServeReport {
        scheme: plane.scheme().to_string(),
        queries: queries.len(),
        shards: used,
        delivered: 0,
        failures: Vec::new(),
        total_hops: 0,
        max_hops: 0,
        elapsed,
        stretch: None,
        degraded: 0,
        fallback: 0,
    };
    let mut stretch_sum = 0.0;
    let mut stretch_max = 0.0f64;
    let mut stretch_samples = 0usize;
    for st in stats {
        report.delivered += st.delivered;
        report.total_hops += st.total_hops;
        report.max_hops = report.max_hops.max(st.max_hops);
        report.failures.extend(st.failures);
        stretch_sum += st.stretch_sum;
        stretch_max = stretch_max.max(st.stretch_max);
        stretch_samples += st.stretch_samples;
    }
    obs.add("plane.serve.delivered", report.delivered as u64);
    if optima.is_some() {
        report.stretch = Some(StretchStats {
            mean: if stretch_samples == 0 {
                1.0
            } else {
                stretch_sum / stretch_samples as f64
            },
            max: stretch_max,
            samples: stretch_samples,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::workload::{generate, TrafficPattern};
    use cpr_algebra::policies::ShortestPath;
    use cpr_graph::{generators, EdgeWeights};
    use cpr_routing::DestTable;
    use rand::SeedableRng;

    fn plane_on_gnp(n: usize, seed: u64) -> (Graph, ForwardingPlane) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, 0.12, &mut rng);
        let w = EdgeWeights::uniform(&g, 1u64);
        let scheme = DestTable::build(&g, &w, &ShortestPath);
        let plane = compile(&scheme, &g).unwrap();
        (g, plane)
    }

    #[test]
    fn serves_uniform_batch_with_optimal_stretch() {
        let (g, plane) = plane_on_gnp(30, 11);
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let queries = generate(&g, &TrafficPattern::Uniform, 2000, &mut rng);
        let optima = HopOptima::compute(&g);
        let report = serve(
            &plane,
            &queries,
            Some(&optima),
            &EngineConfig::with_shards(1),
        );
        assert_eq!(report.delivered, 2000);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        // Destination tables under shortest path are hop-optimal.
        let s = report.stretch.as_ref().unwrap();
        assert!((s.mean - 1.0).abs() < 1e-9, "mean stretch {}", s.mean);
        assert_eq!(s.samples, 2000);
        assert!(report.throughput_qps() > 0.0);
    }

    #[test]
    fn sharded_serving_matches_single_shard() {
        let (g, plane) = plane_on_gnp(25, 13);
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let queries = generate(&g, &TrafficPattern::Gravity, 999, &mut rng);
        let one = serve(&plane, &queries, None, &EngineConfig::with_shards(1));
        let four = serve(&plane, &queries, None, &EngineConfig::with_shards(4));
        assert_eq!(one.delivered, four.delivered);
        assert_eq!(one.total_hops, four.total_hops);
        assert_eq!(one.max_hops, four.max_hops);
        assert_eq!(four.shards, 4);
    }

    #[test]
    fn unroutable_queries_are_reported_not_masked() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let w = EdgeWeights::uniform(&g, 1u64);
        let scheme = DestTable::build(&g, &w, &ShortestPath);
        let plane = compile(&scheme, &g).unwrap();
        let queries = vec![(0, 1), (0, 2), (2, 3), (3, 1)];
        let report = serve(&plane, &queries, None, &EngineConfig::with_shards(2));
        assert_eq!(report.delivered, 2);
        assert_eq!(report.failures.len(), 2);
        assert!(report
            .failures
            .iter()
            .all(|f| matches!(f.error, RouteError::Unroutable { .. })));
        assert!(report.to_string().contains("2 failed"));
    }

    #[test]
    fn shard_count_is_clamped_to_batch_size() {
        let (_, plane) = plane_on_gnp(10, 15);
        let report = serve(&plane, &[(0, 1)], None, &EngineConfig::with_shards(64));
        assert_eq!(report.shards, 1);
        assert_eq!(report.queries, 1);
    }
}
