//! Tenant classes: compiling admitted algebra expressions into
//! [`ClassPlane`]s.
//!
//! This is the bridge between `cpr_algebra::expr` (parse → classify →
//! gate) and the multi-plane: an admitted [`Decision`] names a scheme
//! ([`SchemeChoice`]), and this module builds the matching
//! [`TypedClassPlane`] with a *topology-closed* factory — edge weights
//! derive from [`pair_atom`] endpoint hashes, so churn rebuilds weigh
//! any future graph deterministically, and an external oracle using the
//! same hash can never disagree with the plane.
//!
//! Inadmissible expressions are rejected **before** any compilation
//! work: [`build_tenant_class`] runs the gate first and returns
//! [`TenantError::Inadmissible`] carrying the gate name and the
//! measured witness pair.

use std::fmt;

use cpr_algebra::expr::{decide_text, Decision, DynAlgebra, DynWeight, ExprError, Rejection};
use cpr_algebra::{pair_atom, SchemeChoice};
use cpr_graph::{EdgeWeights, Graph};
use cpr_paths::SwWeight;
use cpr_routing::{CowenScheme, DestTable, LandmarkStrategy, SwClassTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::compile::CompileError;
use crate::multi::{ClassPlane, TypedClassPlane};

/// Hard cap on simultaneously registered classes: the wire protocol
/// addresses a class with one byte.
pub const MAX_CLASSES: usize = 256;

/// Why a tenant registration (or deregistration) was refused.
#[derive(Clone, Debug, PartialEq)]
pub enum TenantError {
    /// The expression text did not parse or lower.
    Parse(ExprError),
    /// The expression parsed but a theorem gate rejected it; the
    /// [`Rejection`] carries the gate and the measured witness pair.
    Inadmissible(Rejection),
    /// The admitted scheme failed to compile over the current topology.
    Compile(CompileError),
    /// A live class already serves under this name.
    DuplicateName(String),
    /// No live class serves under this name.
    UnknownClass(String),
    /// The named class is a seed (build-time) class; only runtime
    /// registrations can be deregistered.
    SeedClass(String),
    /// All [`MAX_CLASSES`] wire slots are live.
    RegistryFull,
}

impl fmt::Display for TenantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantError::Parse(e) => write!(f, "expression error: {e}"),
            TenantError::Inadmissible(r) => write!(f, "{r}"),
            TenantError::Compile(e) => write!(f, "compile error: {e}"),
            TenantError::DuplicateName(n) => write!(f, "class `{n}` is already registered"),
            TenantError::UnknownClass(n) => write!(f, "no class named `{n}`"),
            TenantError::SeedClass(n) => write!(f, "class `{n}` is a seed class"),
            TenantError::RegistryFull => {
                write!(f, "all {MAX_CLASSES} traffic-class slots are live")
            }
        }
    }
}

impl std::error::Error for TenantError {}

impl From<ExprError> for TenantError {
    fn from(e: ExprError) -> Self {
        TenantError::Parse(e)
    }
}

impl From<CompileError> for TenantError {
    fn from(e: CompileError) -> Self {
        TenantError::Compile(e)
    }
}

/// Edge weights of a lowered expression over any topology: edge
/// `{u, v}` is weighed by interpreting the [`pair_atom`] endpoint hash.
pub fn dyn_edge_weights(alg: &DynAlgebra, graph: &Graph) -> EdgeWeights<DynWeight> {
    EdgeWeights::from_fn(graph, |e| {
        let (u, v) = graph.endpoints(e);
        alg.weight_from_atom(pair_atom(u as u64, v as u64))
    })
}

/// The `(Capacity, cost)` projection of a shortest-widest-shaped
/// expression's weights, for [`SwClassTable::build`].
///
/// # Panics
///
/// Panics when the expression's carrier is not the
/// `lex(widest-path, int)` pair — [`build_tenant_class`] only routes
/// Theorem 1 admissions here, and the gate enforces the shape.
pub fn sw_edge_weights(alg: &DynAlgebra, graph: &Graph) -> EdgeWeights<SwWeight> {
    EdgeWeights::from_fn(graph, |e| {
        let (u, v) = graph.endpoints(e);
        match alg.weight_from_atom(pair_atom(u as u64, v as u64)) {
            DynWeight::Pair(a, b) => match (*a, *b) {
                (DynWeight::Cap(c), DynWeight::Int(s)) => (c, s),
                (a, b) => panic!("sw carrier must be (capacity, int); got ({a}, {b})"),
            },
            w => panic!("sw carrier must be a pair; got {w}"),
        }
    })
}

fn fnv64(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A successfully admitted and compiled tenant class.
pub struct TenantClass {
    /// The compiled class, ready for a registry slot.
    pub plane: Box<dyn ClassPlane>,
    /// The full gate decision (lowered algebra, property report,
    /// admissibility verdict).
    pub decision: Decision,
    /// The scheme the gate selected.
    pub scheme: SchemeChoice,
}

/// Parses, gates and compiles one tenant expression over `graph`.
///
/// The gate runs **first**: a rejected expression returns
/// [`TenantError::Inadmissible`] without compiling anything.
///
/// # Errors
///
/// [`TenantError::Parse`], [`TenantError::Inadmissible`] or
/// [`TenantError::Compile`].
pub fn build_tenant_class(
    name: &str,
    text: &str,
    graph: &Graph,
) -> Result<TenantClass, TenantError> {
    let decision = decide_text(text)?;
    let scheme = match &decision.admissibility {
        cpr_algebra::Admissibility::Admitted { scheme, .. } => *scheme,
        cpr_algebra::Admissibility::Rejected(r) => {
            return Err(TenantError::Inadmissible(r.clone()))
        }
    };
    let alg = decision.algebra.clone();
    let plane: Box<dyn ClassPlane> = match scheme {
        SchemeChoice::DestTable => Box::new(TypedClassPlane::new(name, graph, move |g| {
            DestTable::build(g, &dyn_edge_weights(&alg, g), &alg)
        })?),
        SchemeChoice::SwClassTable => Box::new(TypedClassPlane::new(name, graph, move |g| {
            SwClassTable::build(g, &sw_edge_weights(&alg, g))
        })?),
        SchemeChoice::Cowen => {
            // The landmark draw is seeded from the canonical expression
            // text, so churn rebuilds of the same class are
            // deterministic — and so is any external replica.
            let seed = fnv64(decision.algebra.text()) ^ 0x7465_6e61_6e74;
            Box::new(TypedClassPlane::new(name, graph, move |g| {
                let mut rng = StdRng::seed_from_u64(seed);
                CowenScheme::build(
                    g,
                    &dyn_edge_weights(&alg, g),
                    &alg,
                    LandmarkStrategy::TzRandom { attempts: 4 },
                    &mut rng,
                )
            })?)
        }
    };
    Ok(TenantClass {
        plane,
        decision,
        scheme,
    })
}
