//! Scheme → forwarding-plane compilation.
//!
//! [`compile`] flattens a [`RoutingScheme`] into an immutable
//! [`ForwardingPlane`]: every reachable `(node, header)` state of the
//! scheme is *interned* to a dense integer id and its forwarding decision
//! is packed into a fixed-width entry of a [`PackedArray`]. A lookup in
//! the compiled plane is then a couple of shifts and masks instead of an
//! evaluation of the scheme's local routing function — no allocation, no
//! header cloning, no tree walking.
//!
//! The compiler is *honest* in the same sense as the rest of the
//! workspace: every `(source, target)` pair is driven through the live
//! [`step`](RoutingScheme::step) simulation during compilation, a packet
//! that is misdelivered or loops aborts the compile with the underlying
//! [`RouteError`], and the bit accounting of the plane
//! ([`PlaneMemory`]) counts every array at its packed width.

use std::fmt;
use std::sync::Arc;

use cpr_core::fxhash::FxHashMap;
use cpr_graph::{Graph, NodeId, Port};
use cpr_routing::bits::ceil_log2;
use cpr_routing::{RouteAction, RouteError, RoutingScheme};

/// Entry kind: no transition stored for this `(node, header)` state.
const KIND_INVALID: u64 = 0;
/// Entry kind: deliver the packet here.
const KIND_DELIVER: u64 = 1;
/// Entry kind: forward on a port with a rewritten header id.
const KIND_FORWARD: u64 = 2;

/// Minimum sources per compile shard: every shard pays one intern-table
/// replay at merge time, so fanning a small graph out into many tiny
/// shards buys nothing and costs a merge pass per shard. Shard counts
/// only affect speed, never bytes — the merged plane is digest-identical
/// for every split.
const COMPILE_MIN_GRAIN: usize = 16;

/// A fixed-width bit-packed array: `len` unsigned values of `width ≤ 64`
/// bits each, stored contiguously across little-endian `u64` words.
///
/// This is the storage primitive of the compiled plane — transition
/// entries, sparse-layout keys and the initial-header table are all
/// `PackedArray`s, so the plane's memory footprint is exactly the honest
/// bit widths dictated by the instance (`⌈log₂ degree⌉` ports,
/// `⌈log₂ headers⌉` header ids) rather than whatever Rust's native types
/// round up to.
///
/// `PartialEq`/`Eq` compare the logical contents (width, length and
/// packed words) — the multi-plane substrate dedupe relies on this to
/// detect byte-identical initial-header tables across algebra classes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedArray {
    width: u32,
    mask: u64,
    len: usize,
    /// Packed payload plus one sentinel word, so a get may always read
    /// the pair of words a value could span without branching.
    words: Vec<u64>,
}

impl PackedArray {
    /// An all-zero array of `len` values of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn new(len: usize, width: u32) -> Self {
        assert!(width <= 64, "field width {width} exceeds 64 bits");
        let bits = len as u64 * u64::from(width);
        let words = usize::try_from(bits.div_ceil(64)).expect("array fits memory");
        PackedArray {
            width,
            mask: if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            },
            len,
            words: vec![0; words.max(1) + 1],
        }
    }

    fn mask(&self) -> u64 {
        self.mask
    }

    /// The value at index `i`.
    #[inline(always)]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        let bit = i as u64 * u64::from(self.width);
        let word = (bit / 64) as usize;
        let off = (bit % 64) as u32;
        // Branchless double-word read through the sentinel word.
        let pair = (u128::from(self.words[word + 1]) << 64) | u128::from(self.words[word]);
        ((pair >> off) as u64) & self.mask
    }

    /// Stores `value` at index `i`.
    ///
    /// # Panics
    ///
    /// Debug-panics if `value` does not fit in `width` bits.
    pub fn set(&mut self, i: usize, value: u64) {
        debug_assert!(i < self.len);
        if self.width == 0 {
            debug_assert_eq!(value, 0);
            return;
        }
        let mask = self.mask();
        debug_assert!(
            value <= mask,
            "value {value} does not fit in {} bits",
            self.width
        );
        let bit = i as u64 * u64::from(self.width);
        let word = (bit / 64) as usize;
        let off = (bit % 64) as u32;
        self.words[word] = (self.words[word] & !(mask << off)) | (value << off);
        if off + self.width > 64 {
            let spill_bits = self.width - (64 - off);
            let spill_mask = (1u64 << spill_bits) - 1;
            self.words[word + 1] = (self.words[word + 1] & !spill_mask) | (value >> (64 - off));
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the array holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Width of one value in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Total payload size in bits (`len × width`).
    pub fn bits(&self) -> u64 {
        self.len as u64 * u64::from(self.width)
    }
}

/// How the per-node transition entries are laid out.
#[derive(Clone, Debug)]
enum Layout {
    /// Flat `headers × n` table indexed by `header · n + node`: O(1)
    /// lookup, best when most header ids occur at most nodes (tree and
    /// destination-table schemes, where `headers ≈ n`). Header-major
    /// order because headers change rarely along a walk — consecutive
    /// hops then touch one `n`-entry row, not scattered columns.
    Dense(PackedArray),
    /// Per-node sorted `(header, entry)` runs with binary-search lookup:
    /// chosen when the dense table would waste space, e.g. source-routed
    /// schemes whose header space is `Θ(n²)` but whose reachable states
    /// are only the pairs actually on paths.
    Sparse {
        /// CSR-style run boundaries, `n + 1` offsets into `keys`/`entries`.
        offsets: Vec<u32>,
        /// Sorted interned header ids, one run per node.
        keys: PackedArray,
        /// The entry for the matching key.
        entries: PackedArray,
    },
}

/// One decoded forwarding decision of a compiled plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Deliver here.
    Deliver,
    /// Forward on `port`, the packet now carrying interned header `next`.
    Forward {
        /// The local out-port at the current node.
        port: Port,
        /// Interned id of the rewritten header.
        next: u32,
    },
    /// No transition is stored for this state — reaching this from an
    /// initial header indicates a plane/scheme inconsistency and is
    /// surfaced by the engine as a failure, never skipped.
    Invalid,
}

/// An immutable compiled forwarding plane: the scheme's reachable
/// `(node, header)` states flattened into bit-packed transition arrays,
/// plus the `n²` initial-header table and a CSR snapshot of the graph's
/// port-labelled adjacency (so lookups never touch the original
/// [`Graph`] or scheme again).
#[derive(Clone, Debug)]
pub struct ForwardingPlane {
    scheme: String,
    n: usize,
    headers: usize,
    states: usize,
    port_width: u32,
    header_width: u32,
    entry_width: u32,
    layout: Layout,
    /// `n²` interned initial-header ids; the value `headers` is the
    /// "unroutable" sentinel. `Arc`-shared so a multi-algebra process can
    /// dedupe byte-identical tables across planes (see `crate::multi`).
    initial: Arc<PackedArray>,
    /// CSR row offsets into `nbr`, length `n + 1`. `Arc`-shared: every
    /// plane compiled against the same topology carries the same CSR.
    row: Arc<Vec<u32>>,
    /// Neighbor of each `(node, port)` in port order.
    nbr: Arc<Vec<u32>>,
    scheme_header_bits: u64,
    hop_budget: usize,
    /// [`graph_digest`] of the topology the plane was compiled against.
    topology_digest: u64,
}

/// Why compilation failed. Routing errors discovered while driving the
/// live simulation are carried verbatim — the compiler never masks a
/// misbehaving scheme.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// The scheme was built for a different node count than the graph.
    NodeCountMismatch {
        /// `scheme.node_count()`.
        scheme: usize,
        /// `graph.node_count()`.
        graph: usize,
    },
    /// The live simulation failed while tracing a pair during compilation.
    Route {
        /// Source of the failing pair.
        source: NodeId,
        /// Target of the failing pair.
        target: NodeId,
        /// The underlying simulation error.
        error: RouteError,
    },
    /// The packet stopped at a node other than its target.
    Misdelivery {
        /// Source of the failing pair.
        source: NodeId,
        /// Intended target.
        target: NodeId,
        /// Where the packet was actually delivered.
        delivered: NodeId,
    },
    /// An internal id space (headers, states, nodes) overflowed `u32`.
    CapacityExceeded {
        /// Which id space overflowed.
        what: &'static str,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NodeCountMismatch { scheme, graph } => {
                write!(f, "scheme built for {scheme} nodes, graph has {graph}")
            }
            CompileError::Route {
                source,
                target,
                error,
            } => write!(f, "tracing {source} → {target}: {error}"),
            CompileError::Misdelivery {
                source,
                target,
                delivered,
            } => write!(f, "packet {source} → {target} delivered at {delivered}"),
            CompileError::CapacityExceeded { what } => {
                write!(f, "too many {what} for 32-bit interned ids")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A `(source, target)` pair where the compiled plane and the live
/// simulation disagree, with both sides' outcomes.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// Source of the diverging pair.
    pub source: NodeId,
    /// Target of the diverging pair.
    pub target: NodeId,
    /// What the compiled plane did.
    pub plane: Result<Vec<NodeId>, RouteError>,
    /// What the live simulation did.
    pub live: Result<Vec<NodeId>, RouteError>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} → {}: plane {:?}, live {:?}",
            self.source, self.target, self.plane, self.live
        )
    }
}

/// Honest bit accounting of a compiled plane, in the spirit of
/// [`cpr_routing::MemoryReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct PlaneMemory {
    /// Scheme the plane was compiled from.
    pub scheme: String,
    /// Node count.
    pub nodes: usize,
    /// Distinct interned headers.
    pub headers: usize,
    /// Stored `(node, header)` transition states.
    pub states: usize,
    /// Width of one packed transition entry in bits.
    pub entry_width: u32,
    /// Which layout the compiler chose (`"dense"` or `"sparse"`).
    pub layout: &'static str,
    /// Bits in the transition arrays (keys + entries + run offsets for
    /// the sparse layout).
    pub transition_bits: u64,
    /// Bits in the `n²` initial-header table.
    pub initial_bits: u64,
    /// Bits in the CSR adjacency snapshot.
    pub adjacency_bits: u64,
    /// The source scheme's own `header_bits()`, carried over so plane
    /// reports can be compared against Definition 2 accounting.
    pub scheme_header_bits: u64,
}

impl PlaneMemory {
    /// Total plane footprint in bits.
    pub fn total_bits(&self) -> u64 {
        self.transition_bits + self.initial_bits + self.adjacency_bits
    }
}

impl fmt::Display for PlaneMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={}, {} headers, {} states, {} layout, {}-bit entries, \
             {} KiB total ({} transition + {} initial + {} adjacency bits)",
            self.scheme,
            self.nodes,
            self.headers,
            self.states,
            self.layout,
            self.entry_width,
            self.total_bits() / 8192,
            self.transition_bits,
            self.initial_bits,
            self.adjacency_bits
        )
    }
}

/// A header interner: headers to dense ids, plus the id → header table
/// in assignment order (which the sharded compiler replays to merge
/// shard-local id spaces deterministically).
///
/// [`intern`](Self::intern) takes the header *by value* and goes through
/// `HashMap::entry`, so the hot path — a hit on an already-interned
/// header, which is the overwhelming majority once walks start joining
/// committed states — hashes exactly once and never clones; the single
/// clone per *distinct* header happens only on the vacant arm, where the
/// map must own a copy anyway.
pub(crate) struct Interner<H> {
    pub(crate) map: FxHashMap<H, u32>,
    pub(crate) order: Vec<H>,
}

impl<H: Clone + Eq + std::hash::Hash> Interner<H> {
    pub(crate) fn new() -> Self {
        Interner {
            map: FxHashMap::default(),
            order: Vec::new(),
        }
    }

    /// The id for `h`, assigning the next dense id on first sight.
    pub(crate) fn intern(&mut self, h: H) -> Result<u32, CompileError> {
        use std::collections::hash_map::Entry;
        match self.map.entry(h) {
            Entry::Occupied(e) => Ok(*e.get()),
            Entry::Vacant(v) => {
                let id = u32::try_from(self.order.len())
                    .ok()
                    .filter(|&id| id < u32::MAX)
                    .ok_or(CompileError::CapacityExceeded { what: "headers" })?;
                self.order.push(v.key().clone());
                v.insert(id);
                Ok(id)
            }
        }
    }

    /// The header behind an interned id.
    fn header(&self, id: u32) -> &H {
        &self.order[id as usize]
    }

    fn len(&self) -> usize {
        self.order.len()
    }
}

/// FNV-1a digest of a topology: the node count plus the edge list in
/// edge-id order. A compiled plane records the digest of the graph it
/// was compiled against, so a stale plane — one compiled before a link
/// died or appeared — is detectable with a single integer compare
/// instead of being trusted to serve silently wrong hops.
pub fn graph_digest(graph: &Graph) -> u64 {
    let mut h = Fnv::new();
    h.word(graph.node_count() as u64);
    for (_, (u, v)) in graph.edges() {
        h.word(u as u64);
        h.word(v as u64);
    }
    h.finish()
}

/// Sentinel `next`-id marking a *deliver* transition in the flat shard
/// records (header ids are capped strictly below `u32::MAX` by the
/// interner, so the value can never collide with a real id).
const REC_DELIVER: u64 = u32::MAX as u64;

/// A flat `(node, header id) → step` record: the key packs
/// `node << 32 | hid`, the value packs `port << 32 | next` with
/// [`REC_DELIVER`] in the low word for a deliver. Sixteen bytes per
/// transition, no per-entry map overhead — the arena the shards stream
/// their walks into.
type TransRec = (u64, u64);

#[inline(always)]
fn rec_key(node: NodeId, hid: u32) -> u64 {
    ((node as u64) << 32) | u64::from(hid)
}

/// Everything one compile shard (a contiguous source range) learned — a
/// finished *sub-plane* in shard-local ids, ready for the one-pass
/// remap merge:
///
/// * `headers` is the shard's intern **arena**: every distinct header
///   the shard met, in local discovery order (the merge replays this
///   order to assign global ids deterministically);
/// * `trans` is the flat transition arena in commit order, local ids;
/// * `initial` is the shard's rows of the `n²` initial-header table,
///   already bit-packed at the shard-local header width (sentinel =
///   local header count), so a finished shard holds its O(|sources|·n)
///   state at packed width instead of 32 bits per pair.
struct ShardTrace<H> {
    /// Shard-local interned headers, in local discovery order.
    headers: Vec<H>,
    /// Flat `(key, value)` transition records (see [`TransRec`]).
    trans: Vec<TransRec>,
    /// `sources.len() × n` local initial-header ids at local width;
    /// the value `headers.len()` is the unroutable sentinel.
    initial: PackedArray,
}

/// Traces every `(source, target)` pair of a contiguous `sources` range
/// through the live simulation, exactly like the serial compiler but
/// with shard-local interning and shard-local early-stop state. The
/// shard streams: transitions append to a flat arena as each pair's walk
/// commits, and the initial-header rows are packed down to the local
/// header width before the shard returns — nothing quadratic outlives
/// the shard at full `u32` width.
///
/// Determinism of the merged result does not depend on shard boundaries:
/// a shard walk that (lacking another shard's `delivers_at` knowledge)
/// continues past a state an earlier source already committed only ever
/// revisits states whose transitions are a pure function of the scheme —
/// it re-derives byte-identical entries, and every header it meets there
/// was already interned by that earlier source, so the merge keeps the
/// serial discovery order of genuinely-new headers.
fn trace_shard<S: RoutingScheme>(
    scheme: &S,
    graph: &Graph,
    sources: std::ops::Range<usize>,
    hop_budget: usize,
) -> Result<ShardTrace<S::Header>, CompileError> {
    let n = graph.node_count();
    let mut intern: Interner<S::Header> = Interner::new();
    let mut trans: Vec<TransRec> = Vec::new();
    // Target a committed state is known to deliver at — lets later walks
    // stop as soon as they join an already-verified path. Keyed by the
    // packed state word through the fast deterministic hasher.
    let mut delivers_at: FxHashMap<u64, u32> = FxHashMap::default();
    let mut initial = vec![u32::MAX; sources.len() * n];
    // Reused across pairs: the hot loop performs no per-pair allocation.
    let mut pending: Vec<TransRec> = Vec::new();

    for source in sources.clone() {
        for target in graph.nodes() {
            let Some(h0) = scheme.initial_header(source, target) else {
                continue;
            };
            let mut hid = intern.intern(h0)?;
            initial[(source - sources.start) * n + target] = hid;
            let mut at = source;
            pending.clear();
            let reached = loop {
                if let Some(&d) = delivers_at.get(&rec_key(at, hid)) {
                    break d as NodeId;
                }
                match scheme.step(at, intern.header(hid)) {
                    RouteAction::Deliver => {
                        pending.push((rec_key(at, hid), REC_DELIVER));
                        break at;
                    }
                    RouteAction::Forward { port, header: next } => {
                        let Some((next_node, _)) = graph.neighbor_at(at, port) else {
                            return Err(CompileError::Route {
                                source,
                                target,
                                error: RouteError::BadPort { at, port },
                            });
                        };
                        let next_id = intern.intern(next)?;
                        pending
                            .push((rec_key(at, hid), ((port as u64) << 32) | u64::from(next_id)));
                        at = next_node;
                        hid = next_id;
                        if pending.len() > hop_budget {
                            let visited = pending
                                .iter()
                                .map(|&(key, _)| (key >> 32) as NodeId)
                                .chain(std::iter::once(at))
                                .collect();
                            return Err(CompileError::Route {
                                source,
                                target,
                                error: RouteError::HopBudgetExhausted { visited },
                            });
                        }
                    }
                }
            };
            if reached != target {
                return Err(CompileError::Misdelivery {
                    source,
                    target,
                    delivered: reached,
                });
            }
            for &(key, val) in &pending {
                delivers_at.insert(key, target as u32);
                trans.push((key, val));
            }
        }
    }

    // Pack the initial rows down to the shard-local header width before
    // returning: a finished sub-plane, not a 32-bit scratch table.
    let local_headers = intern.order.len();
    let sentinel = local_headers as u64;
    let mut packed = PackedArray::new(initial.len(), ceil_log2(local_headers as u64 + 1));
    for (i, &v) in initial.iter().enumerate() {
        packed.set(
            i,
            if v == u32::MAX {
                sentinel
            } else {
                u64::from(v)
            },
        );
    }

    Ok(ShardTrace {
        headers: intern.order,
        trans,
        initial: packed,
    })
}

/// Compiles `scheme` into a [`ForwardingPlane`] over `graph`.
///
/// Every `(source, target)` pair with an initial header is traced through
/// the live [`step`](RoutingScheme::step) simulation; transitions are
/// committed only after the walk provably delivers at the correct
/// target, and walks stop early when they reach an already-committed
/// state (whose delivery target was recorded), so the total work is
/// proportional to the number of distinct states, not the sum of path
/// lengths.
///
/// Compilation is parallel across **contiguous source shards** on the
/// [`cpr_core::par`] scoped-thread layer (`CPR_THREADS` workers): each
/// shard traces its sources with shard-local header interning, and the
/// shards are then merged *in source order* into the global intern
/// table. The merge replays each shard's header discovery order, so the
/// global id assignment — and therefore the packed plane, byte for
/// byte — is identical for every thread count, including the exact
/// serial walk at `CPR_THREADS=1`.
///
/// # Errors
///
/// Fails with the underlying [`RouteError`] if any traced pair
/// misroutes, loops or names a bad port, and with
/// [`CompileError::Misdelivery`] if a packet stops at the wrong node.
/// The reported pair is the failing pair of the earliest shard, scanned
/// in `(source, target)` order.
pub fn compile<S: RoutingScheme + Sync>(
    scheme: &S,
    graph: &Graph,
) -> Result<ForwardingPlane, CompileError>
where
    S::Header: Send,
{
    compile_with_threads(scheme, graph, cpr_core::par::thread_count())
}

/// [`compile`] with an explicit worker count, for benches and tests that
/// sweep thread counts without mutating `CPR_THREADS`. `threads = 1` is
/// the exact serial compiler.
pub fn compile_with_threads<S: RoutingScheme + Sync>(
    scheme: &S,
    graph: &Graph,
    threads: usize,
) -> Result<ForwardingPlane, CompileError>
where
    S::Header: Send,
{
    compile_with_intern(scheme, graph, threads).map(|(plane, _)| plane)
}

/// [`compile_with_threads`], additionally returning the full header
/// intern table in id order — the self-healing layer keeps it so
/// `repair()` can extend the id space past the base plane's headers.
pub(crate) fn compile_with_intern<S: RoutingScheme + Sync>(
    scheme: &S,
    graph: &Graph,
    threads: usize,
) -> Result<(ForwardingPlane, Vec<S::Header>), CompileError>
where
    S::Header: Send,
{
    let n = graph.node_count();
    if scheme.node_count() != n {
        return Err(CompileError::NodeCountMismatch {
            scheme: scheme.node_count(),
            graph: n,
        });
    }
    if u32::try_from(n).is_err() {
        return Err(CompileError::CapacityExceeded { what: "nodes" });
    }
    let hop_budget = 4 * n + 4;

    // Fan the source ranges out, then merge shard-local id spaces in
    // source order. One shard (CPR_THREADS=1) is exactly the old serial
    // compiler: the merge below is then an identity remap.
    //
    // Per-shard wall-clock compile times go to the global tracer (set
    // `CPR_TRACE` to see them) — never to a registry, where wall clocks
    // would break the byte-determinism of pinned snapshots.
    let obs = cpr_obs::global();
    let span = obs.span(
        "plane.compile",
        &[
            ("scheme", cpr_obs::Json::str(scheme.name())),
            ("nodes", cpr_obs::Json::int(n)),
        ],
    );
    let shards = cpr_core::par::split_ranges_min_grain(n, threads, COMPILE_MIN_GRAIN);
    let traces = cpr_core::par::par_map_indexed_with(threads, shards.len(), |i| {
        let t0 = std::time::Instant::now();
        let out = trace_shard(scheme, graph, shards[i].clone(), hop_budget);
        span.event(
            "plane.compile.shard",
            &[
                ("shard", cpr_obs::Json::int(i)),
                ("sources", cpr_obs::Json::int(shards[i].len())),
                ("micros", cpr_obs::Json::int(t0.elapsed().as_micros())),
            ],
        );
        out
    });

    // ── Phase 1: intern merge ────────────────────────────────────────
    // One table pass per shard, in source order: replay each shard's
    // header-discovery arena against the global interner. Headers an
    // earlier shard already saw keep their global id; genuinely new ones
    // extend the table in discovery order, so the global id space — and
    // every packed array below — is byte-identical for any shard count.
    let mut intern: Interner<S::Header> = Interner::new();
    let mut remaps: Vec<Vec<u32>> = Vec::with_capacity(shards.len());
    let mut shard_trans: Vec<Vec<TransRec>> = Vec::with_capacity(shards.len());
    let mut shard_initial: Vec<PackedArray> = Vec::with_capacity(shards.len());
    for trace in traces {
        let trace = trace?;
        let mut remap = Vec::with_capacity(trace.headers.len());
        for h in trace.headers {
            remap.push(intern.intern(h)?);
        }
        remaps.push(remap);
        shard_trans.push(trace.trans);
        shard_initial.push(trace.initial);
    }
    let headers = intern.len();

    // ── Phase 2: transition merge ────────────────────────────────────
    // Shards may re-derive states another shard's sources already
    // committed (early-stop knowledge is shard-local), so the flat
    // record streams overlap; duplicates carry byte-identical payloads.
    // Count the *distinct* states first — through a bitset over the
    // dense `(header, node)` index space when that is no bigger than
    // the record streams themselves, otherwise through one sort+dedup
    // of the remapped records — then pack straight into the final
    // layout. No global per-entry hash map is ever built.
    let remap_rec = |remap: &[u32], key: u64, val: u64| -> (u64, u64) {
        let node = key >> 32;
        let hid = u64::from(remap[(key & 0xFFFF_FFFF) as usize]);
        let next = val & 0xFFFF_FFFF;
        let gval = if next == REC_DELIVER {
            val
        } else {
            (val & !0xFFFF_FFFF) | u64::from(remap[next as usize])
        };
        ((node << 32) | hid, gval)
    };

    let total_recs: usize = shard_trans.iter().map(Vec::len).sum();
    let dense_slots = n as u128 * headers as u128;
    // The bitset costs one bit per dense slot; the sorted-merge buffer
    // costs 128 bits per record. Prefer whichever is smaller (with a
    // floor so tiny instances always take the trivial bitset path).
    let use_bitset = dense_slots <= (total_recs as u128 * 128).max(1 << 23);
    let mut sorted: Vec<TransRec> = Vec::new();
    let states = if use_bitset {
        let mut seen = vec![0u64; (n * headers.max(1)).div_ceil(64)];
        let mut distinct = 0usize;
        for (remap, recs) in remaps.iter().zip(&shard_trans) {
            for &(key, _) in recs {
                let hid = remap[(key & 0xFFFF_FFFF) as usize] as usize;
                let slot = hid * n + (key >> 32) as usize;
                let (w, b) = (slot / 64, slot % 64);
                distinct += usize::from(seen[w] & (1 << b) == 0);
                seen[w] |= 1 << b;
            }
        }
        distinct
    } else {
        sorted.reserve_exact(total_recs);
        for (remap, recs) in remaps.iter().zip(&shard_trans) {
            for &(key, val) in recs {
                sorted.push(remap_rec(remap, key, val));
            }
        }
        // Duplicate keys always carry identical values (transitions are
        // a pure function of the state), so an unstable key sort plus
        // adjacent dedup yields the canonical distinct set.
        sorted.sort_unstable_by_key(|&(key, _)| key);
        sorted.dedup_by_key(|&mut (key, _)| key);
        sorted.len()
    };
    if u32::try_from(states).is_err() {
        return Err(CompileError::CapacityExceeded { what: "states" });
    }
    // Logical compile metrics: totals are thread-count-invariant (the
    // shard merge is deterministic), so they are registry-safe.
    obs.incr("plane.compile.planes");
    obs.add("plane.compile.headers", headers as u64);
    obs.add("plane.compile.states", states as u64);
    let port_width = ceil_log2(graph.max_degree() as u64);
    let header_width = ceil_log2(headers as u64);
    let entry_width = 2 + port_width + header_width;

    let encode = |gval: u64| -> u64 {
        if gval & 0xFFFF_FFFF == REC_DELIVER {
            KIND_DELIVER << (port_width + header_width)
        } else {
            (KIND_FORWARD << (port_width + header_width))
                | ((gval >> 32) << header_width)
                | (gval & 0xFFFF_FFFF)
        }
    };

    // Dense is O(1) per lookup, sparse pays a binary search; prefer dense
    // unless it costs more than 2× the sparse encoding.
    let dense_bits = (n as u64) * (headers as u64) * u64::from(entry_width);
    let sparse_bits = states as u64 * u64::from(header_width + entry_width) + (n as u64 + 1) * 32;
    let layout = if dense_bits <= sparse_bits.saturating_mul(2) {
        // Writes of duplicate states are idempotent (identical encoded
        // entries), so the shard streams pour straight into the table.
        let mut table = PackedArray::new(n * headers, entry_width);
        if sorted.is_empty() {
            for (remap, recs) in remaps.iter().zip(&shard_trans) {
                for &(key, val) in recs {
                    let (gkey, gval) = remap_rec(remap, key, val);
                    let (node, hid) = ((gkey >> 32) as usize, (gkey & 0xFFFF_FFFF) as usize);
                    table.set(hid * n + node, encode(gval));
                }
            }
        } else {
            for &(gkey, gval) in &sorted {
                let (node, hid) = ((gkey >> 32) as usize, (gkey & 0xFFFF_FFFF) as usize);
                table.set(hid * n + node, encode(gval));
            }
        }
        Layout::Dense(table)
    } else {
        // The sparse layout needs node-major, header-sorted runs — which
        // is exactly ascending key order of the packed records.
        if sorted.is_empty() && states > 0 {
            sorted.reserve_exact(total_recs);
            for (remap, recs) in remaps.iter().zip(&shard_trans) {
                for &(key, val) in recs {
                    sorted.push(remap_rec(remap, key, val));
                }
            }
            sorted.sort_unstable_by_key(|&(key, _)| key);
            sorted.dedup_by_key(|&mut (key, _)| key);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut keys = PackedArray::new(states, header_width);
        let mut entries = PackedArray::new(states, entry_width);
        offsets.push(0u32);
        let mut pos = 0usize;
        for node in 0..n {
            while pos < sorted.len() && (sorted[pos].0 >> 32) as usize == node {
                keys.set(pos, sorted[pos].0 & 0xFFFF_FFFF);
                entries.set(pos, encode(sorted[pos].1));
                pos += 1;
            }
            offsets.push(pos as u32);
        }
        debug_assert_eq!(pos, states);
        Layout::Sparse {
            offsets,
            keys,
            entries,
        }
    };
    drop(sorted);
    drop(shard_trans);

    // ── Phase 3: initial-header merge ────────────────────────────────
    // Each shard's packed rows remap through its table in source order;
    // the local sentinel (local header count) becomes the global one.
    let mut initial = PackedArray::new(n * n, ceil_log2(headers as u64 + 1));
    let global_sentinel = headers as u64;
    for ((shard, remap), local) in shards.iter().zip(&remaps).zip(&shard_initial) {
        let local_sentinel = remap.len() as u64;
        debug_assert_eq!(local.len(), shard.len() * n);
        let base = shard.start * n;
        for i in 0..local.len() {
            let v = local.get(i);
            let g = if v == local_sentinel {
                global_sentinel
            } else {
                u64::from(remap[v as usize])
            };
            initial.set(base + i, g);
        }
    }
    drop(shard_initial);

    let mut row = Vec::with_capacity(n + 1);
    let mut nbr = Vec::with_capacity(2 * graph.edge_count());
    row.push(0u32);
    for v in graph.nodes() {
        for (u, _) in graph.neighbors(v) {
            nbr.push(u as u32);
        }
        row.push(nbr.len() as u32);
    }

    Ok((
        ForwardingPlane {
            scheme: scheme.name(),
            n,
            headers,
            states,
            port_width,
            header_width,
            entry_width,
            layout,
            initial: Arc::new(initial),
            row: Arc::new(row),
            nbr: Arc::new(nbr),
            scheme_header_bits: scheme.header_bits(),
            hop_budget,
            topology_digest: graph_digest(graph),
        },
        intern.order,
    ))
}

impl ForwardingPlane {
    /// The raw packed entry for `(at, hid)`, `0` (invalid) when absent.
    #[inline(always)]
    fn entry(&self, at: NodeId, hid: u32) -> u64 {
        match &self.layout {
            Layout::Dense(table) => table.get(hid as usize * self.n + at),
            Layout::Sparse {
                offsets,
                keys,
                entries,
            } => {
                let mut lo = offsets[at] as usize;
                let mut hi = offsets[at + 1] as usize;
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    let k = keys.get(mid) as u32;
                    match k.cmp(&hid) {
                        std::cmp::Ordering::Less => lo = mid + 1,
                        std::cmp::Ordering::Greater => hi = mid,
                        std::cmp::Ordering::Equal => return entries.get(mid),
                    }
                }
                KIND_INVALID
            }
        }
    }

    /// The forwarding decision of node `at` on interned header `hid`.
    #[inline(always)]
    pub fn decide(&self, at: NodeId, hid: u32) -> Decision {
        let e = self.entry(at, hid);
        match e >> (self.port_width + self.header_width) {
            KIND_DELIVER => Decision::Deliver,
            KIND_FORWARD => {
                let hmask = low_mask(self.header_width);
                Decision::Forward {
                    port: ((e >> self.header_width) & low_mask(self.port_width)) as Port,
                    next: (e & hmask) as u32,
                }
            }
            _ => Decision::Invalid,
        }
    }

    /// The interned initial-header id a source attaches for `target`, or
    /// `None` when the scheme declared the pair unroutable.
    #[inline]
    pub fn initial_id(&self, source: NodeId, target: NodeId) -> Option<u32> {
        let v = self.initial.get(source * self.n + target);
        if v == self.headers as u64 {
            None
        } else {
            Some(v as u32)
        }
    }

    /// The neighbor reached from `at` through local `port`, from the CSR
    /// adjacency snapshot.
    #[inline(always)]
    pub fn neighbor(&self, at: NodeId, port: Port) -> Option<NodeId> {
        let lo = self.row[at] as usize;
        let i = lo + port;
        if i < self.row[at + 1] as usize {
            Some(self.nbr[i] as NodeId)
        } else {
            None
        }
    }

    /// Replays `source → target` through the compiled plane and returns
    /// the node sequence — the plane-side analogue of
    /// [`cpr_routing::route`].
    ///
    /// # Errors
    ///
    /// Returns the same [`RouteError`]s the live simulator would: an
    /// unroutable pair, a bad port, or hop-budget exhaustion.
    pub fn walk(&self, source: NodeId, target: NodeId) -> Result<Vec<NodeId>, RouteError> {
        let Some(mut hid) = self.initial_id(source, target) else {
            return Err(RouteError::Unroutable { source, target });
        };
        let mut at = source;
        // Diameter-guess capacity, mirroring `cpr_routing::route`.
        let mut visited = Vec::with_capacity(
            (4 * (usize::BITS - self.n.leading_zeros()) as usize + 8).min(self.hop_budget + 1),
        );
        visited.push(source);
        loop {
            match self.decide(at, hid) {
                Decision::Deliver => return Ok(visited),
                Decision::Forward { port, next } => {
                    let Some(next_node) = self.neighbor(at, port) else {
                        return Err(RouteError::BadPort { at, port });
                    };
                    at = next_node;
                    hid = next;
                    visited.push(at);
                    if visited.len() > self.hop_budget {
                        return Err(RouteError::HopBudgetExhausted { visited });
                    }
                }
                Decision::Invalid => return Err(RouteError::Unroutable { source, target }),
            }
        }
    }

    /// The scheme name the plane was compiled from.
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of distinct interned headers.
    pub fn header_count(&self) -> usize {
        self.headers
    }

    /// Number of stored `(node, header)` transition states.
    pub fn state_count(&self) -> usize {
        self.states
    }

    /// The hop budget a walk may spend (`4n + 4`, matching
    /// [`cpr_routing::route`]).
    pub fn hop_budget(&self) -> usize {
        self.hop_budget
    }

    /// The [`graph_digest`] of the topology this plane was compiled
    /// against.
    pub fn topology_digest(&self) -> u64 {
        self.topology_digest
    }

    /// Whether this plane is current for `graph` — `false` means the
    /// topology changed since compilation (a dead or new link) and the
    /// plane may serve stale hops; see `SelfHealingPlane`.
    pub fn is_current_for(&self, graph: &Graph) -> bool {
        graph_digest(graph) == self.topology_digest
    }

    /// An FNV-1a digest over every packed array and scalar of the plane.
    ///
    /// Two planes with equal digests are byte-identical in all stored
    /// state — the determinism suite uses this to assert that compiling
    /// under different `CPR_THREADS` values yields the *same* plane, not
    /// merely an equivalent one.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.bytes(self.scheme.as_bytes());
        for v in [
            self.n as u64,
            self.headers as u64,
            self.states as u64,
            u64::from(self.port_width),
            u64::from(self.header_width),
            u64::from(self.entry_width),
            self.scheme_header_bits,
            self.hop_budget as u64,
            self.topology_digest,
        ] {
            h.word(v);
        }
        match &self.layout {
            Layout::Dense(table) => {
                h.word(0);
                h.packed(table);
            }
            Layout::Sparse {
                offsets,
                keys,
                entries,
            } => {
                h.word(1);
                for &o in offsets {
                    h.word(u64::from(o));
                }
                h.packed(keys);
                h.packed(entries);
            }
        }
        h.packed(&self.initial);
        for &r in self.row.iter() {
            h.word(u64::from(r));
        }
        for &v in self.nbr.iter() {
            h.word(u64::from(v));
        }
        h.finish()
    }

    /// Decodes the plane into a [`LookupCore`](crate::engine::LookupCore):
    /// the batched serving accelerator with every transition unpacked
    /// into flat `u32` struct-of-arrays form and every port pre-resolved
    /// to its neighbor, so a serving hop is two array loads instead of a
    /// bit-field extraction plus a CSR indirection.
    ///
    /// The core borrows the plane (for the packed initial-header table)
    /// and is immutable + `Sync`: worker shards share one core. Building
    /// it costs one pass over the transition arrays — amortize it across
    /// batches; [`serve`](crate::engine::serve) does this once per call.
    pub fn lookup_core(&self) -> crate::engine::LookupCore<'_> {
        crate::engine::LookupCore {
            plane: self,
            layout: self.core_layout(),
        }
    }

    /// Decodes the plane into an owned [`StaticCore`]
    /// (crate::engine::StaticCore): the same flat struct-of-arrays
    /// transition tables as [`lookup_core`](Self::lookup_core), but
    /// holding an `Arc` of the initial-header table instead of borrowing
    /// the plane — so a serving snapshot can carry the core across
    /// epochs without lifetimes. The shared `Arc` keeps the clone cheap:
    /// the `n²` table is referenced, never copied.
    pub fn static_core(&self) -> crate::engine::StaticCore {
        crate::engine::StaticCore::new(
            self.n,
            self.headers,
            self.hop_budget,
            Arc::clone(&self.initial),
            self.core_layout(),
        )
    }

    /// Unpacks the transition layout into the flat pre-resolved
    /// [`CoreLayout`](crate::engine::CoreLayout) shared by the borrowed
    /// and owned cores.
    fn core_layout(&self) -> crate::engine::CoreLayout {
        use crate::engine::{CoreLayout, CORE_DELIVER, CORE_INVALID};
        assert!(
            (self.n as u64) < u64::from(CORE_INVALID),
            "node ids collide with core sentinels"
        );
        let n = self.n;
        let decode = |e: u64| -> (u32, u32) {
            (
                ((e >> self.header_width) & low_mask(self.port_width)) as u32,
                (e & low_mask(self.header_width)) as u32,
            )
        };
        // Resolve an encoded entry to (next node | sentinel, next hid).
        let resolve = |node: usize, e: u64| -> (u32, u32) {
            match e >> (self.port_width + self.header_width) {
                KIND_DELIVER => (CORE_DELIVER, 0),
                KIND_FORWARD => {
                    let (port, next) = decode(e);
                    match self.neighbor(node, port as Port) {
                        Some(nn) => (nn as u32, next),
                        None => (CORE_INVALID, 0),
                    }
                }
                _ => (CORE_INVALID, 0),
            }
        };
        match &self.layout {
            Layout::Dense(table) => {
                let slots = n * self.headers;
                let mut next_node = vec![0u32; slots];
                let mut next_hid = vec![0u32; slots];
                for hid in 0..self.headers {
                    for node in 0..n {
                        let i = hid * n + node;
                        let (nn, nh) = resolve(node, table.get(i));
                        next_node[i] = nn;
                        next_hid[i] = nh;
                    }
                }
                CoreLayout::Dense {
                    next_node,
                    next_hid,
                }
            }
            Layout::Sparse {
                offsets,
                keys,
                entries,
            } => {
                let states = keys.len();
                let mut core_keys = Vec::with_capacity(states);
                let mut next_node = Vec::with_capacity(states);
                let mut next_hid = Vec::with_capacity(states);
                for node in 0..n {
                    for i in offsets[node] as usize..offsets[node + 1] as usize {
                        core_keys.push(keys.get(i) as u32);
                        let (nn, nh) = resolve(node, entries.get(i));
                        next_node.push(nn);
                        next_hid.push(nh);
                    }
                }
                CoreLayout::Sparse {
                    offsets: offsets.clone(),
                    keys: core_keys,
                    next_node,
                    next_hid,
                }
            }
        }
    }

    /// Honest bit accounting of the plane.
    pub fn memory(&self) -> PlaneMemory {
        let (layout, transition_bits) = match &self.layout {
            Layout::Dense(table) => ("dense", table.bits()),
            Layout::Sparse {
                offsets,
                keys,
                entries,
            } => (
                "sparse",
                keys.bits() + entries.bits() + offsets.len() as u64 * 32,
            ),
        };
        PlaneMemory {
            scheme: self.scheme.clone(),
            nodes: self.n,
            headers: self.headers,
            states: self.states,
            entry_width: self.entry_width,
            layout,
            transition_bits,
            initial_bits: self.initial.bits(),
            adjacency_bits: (self.row.len() + self.nbr.len()) as u64 * 32,
            scheme_header_bits: self.scheme_header_bits,
        }
    }

    // ── Multi-plane substrate sharing (see `crate::multi`) ──────────

    /// `Arc` pointer identities of the shareable substrate arrays
    /// (initial-header table, CSR rows, CSR neighbors). The multi-plane
    /// memory accounting counts each distinct allocation exactly once.
    pub(crate) fn substrate_ptrs(&self) -> (usize, usize, usize) {
        (
            Arc::as_ptr(&self.initial) as usize,
            Arc::as_ptr(&self.row) as usize,
            Arc::as_ptr(&self.nbr) as usize,
        )
    }

    /// Redirects this plane's substrate `Arc`s at `canon`'s allocations
    /// when the contents are identical, dropping the duplicate copies.
    /// Content equality — not pointer equality — is required, so a
    /// plane compiled for a *different* topology or with a different
    /// routability pattern is never aliased. Returns
    /// `(initial_shared, adjacency_shared)`: whether each substrate now
    /// aliases `canon`'s allocation.
    pub(crate) fn share_substrate_with(&mut self, canon: &ForwardingPlane) -> (bool, bool) {
        let initial_shared = if Arc::ptr_eq(&self.initial, &canon.initial) {
            true
        } else if *self.initial == *canon.initial {
            self.initial = Arc::clone(&canon.initial);
            true
        } else {
            false
        };
        let adjacency_shared =
            if Arc::ptr_eq(&self.row, &canon.row) && Arc::ptr_eq(&self.nbr, &canon.nbr) {
                true
            } else if *self.row == *canon.row && *self.nbr == *canon.nbr {
                self.row = Arc::clone(&canon.row);
                self.nbr = Arc::clone(&canon.nbr);
                true
            } else {
                false
            };
        (initial_shared, adjacency_shared)
    }

    /// Bits of the initial-header table alone.
    pub(crate) fn initial_table_bits(&self) -> u64 {
        self.initial.bits()
    }

    /// Bits of the CSR adjacency snapshot alone.
    pub(crate) fn adjacency_table_bits(&self) -> u64 {
        (self.row.len() + self.nbr.len()) as u64 * 32
    }
}

/// Minimal FNV-1a accumulator for [`ForwardingPlane::digest`].
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn word(&mut self, w: u64) {
        self.bytes(&w.to_le_bytes());
    }

    fn packed(&mut self, a: &PackedArray) {
        self.word(a.len() as u64);
        self.word(u64::from(a.width()));
        for i in 0..a.len() {
            self.word(a.get(i));
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[inline]
fn low_mask(width: u32) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Checks the compiled plane against the live simulation on *every*
/// `(source, target)` pair: the node sequences (or errors) must be
/// identical, hop for hop.
///
/// The walk is exact and exhaustive — no sampling — but fans out across
/// sources on the [`cpr_core::par`] scoped-thread layer; each source
/// scans its targets in order, so the reported divergence is the first
/// in `(source, target)` order for every thread count.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn validate<S: RoutingScheme + Sync>(
    plane: &ForwardingPlane,
    scheme: &S,
    graph: &Graph,
) -> Result<(), Box<Divergence>> {
    let per_source = cpr_core::par::par_map_indexed(graph.node_count(), |source| {
        for target in graph.nodes() {
            let plane_path = plane.walk(source, target);
            let live_path = cpr_routing::route(scheme, graph, source, target);
            if plane_path != live_path {
                return Some(Box::new(Divergence {
                    source,
                    target,
                    plane: plane_path,
                    live: live_path,
                }));
            }
        }
        None
    });
    match per_source.into_iter().flatten().next() {
        Some(d) => Err(d),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_algebra::policies::ShortestPath;
    use cpr_graph::{generators, EdgeWeights};
    use cpr_routing::DestTable;
    use rand::SeedableRng;

    #[test]
    fn packed_array_round_trips() {
        for width in [1u32, 3, 7, 13, 31, 33, 64] {
            let mut a = PackedArray::new(100, width);
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1 << width) - 1
            };
            for i in 0..100 {
                a.set(i, (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask);
            }
            for i in 0..100 {
                assert_eq!(
                    a.get(i),
                    (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask,
                    "width {width}, index {i}"
                );
            }
            assert_eq!(a.bits(), 100 * u64::from(width));
        }
    }

    #[test]
    fn packed_array_zero_width() {
        let a = PackedArray::new(10, 0);
        assert_eq!(a.get(5), 0);
        assert_eq!(a.bits(), 0);
    }

    #[test]
    fn packed_array_set_overwrites_neighbors_cleanly() {
        let mut a = PackedArray::new(8, 13);
        for i in 0..8 {
            a.set(i, 0x1FFF);
        }
        a.set(3, 0);
        assert_eq!(a.get(2), 0x1FFF);
        assert_eq!(a.get(3), 0);
        assert_eq!(a.get(4), 0x1FFF);
    }

    #[test]
    fn compiles_dest_table_and_matches_live() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let g = generators::gnp_connected(24, 0.15, &mut rng);
        let w = EdgeWeights::uniform(&g, 1u64);
        let scheme = DestTable::build(&g, &w, &ShortestPath);
        let plane = compile(&scheme, &g).unwrap();
        assert_eq!(plane.node_count(), 24);
        validate(&plane, &scheme, &g).unwrap();
    }

    #[test]
    fn sharded_compile_is_byte_identical_to_serial() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let g = generators::gnp_connected(40, 0.12, &mut rng);
        let w = EdgeWeights::from_fn(&g, |e| (e as u64 % 9) + 1);
        let scheme = DestTable::build(&g, &w, &ShortestPath);
        let serial = compile_with_threads(&scheme, &g, 1).unwrap();
        for threads in [2, 3, 8, 40, 100] {
            let par = compile_with_threads(&scheme, &g, threads).unwrap();
            assert_eq!(par.digest(), serial.digest(), "threads = {threads}");
            assert_eq!(par.header_count(), serial.header_count());
            assert_eq!(par.state_count(), serial.state_count());
        }
        validate(&serial, &scheme, &g).unwrap();
    }

    #[test]
    fn sharded_compile_matches_serial_for_interned_label_schemes() {
        use cpr_algebra::policies::WidestPath;
        use cpr_routing::{CowenScheme, LandmarkStrategy, TzTreeRouting};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let g = generators::gnp_connected(32, 0.15, &mut rng);
        let wp = EdgeWeights::random(&g, &WidestPath, &mut rng);
        let sp = EdgeWeights::from_fn(&g, |e| (e as u64 % 5) + 1);

        let tz = TzTreeRouting::spanning(&g, &wp, &WidestPath);
        let cowen = CowenScheme::build(
            &g,
            &sp,
            &ShortestPath,
            LandmarkStrategy::TzRandom { attempts: 2 },
            &mut rng,
        );
        let tz_serial = compile_with_threads(&tz, &g, 1).unwrap();
        let cowen_serial = compile_with_threads(&cowen, &g, 1).unwrap();
        for threads in [2, 5, 32] {
            assert_eq!(
                compile_with_threads(&tz, &g, threads).unwrap().digest(),
                tz_serial.digest(),
                "tz-tree, threads = {threads}"
            );
            assert_eq!(
                compile_with_threads(&cowen, &g, threads).unwrap().digest(),
                cowen_serial.digest(),
                "cowen, threads = {threads}"
            );
        }
    }

    #[test]
    fn unroutable_pairs_hit_the_sentinel() {
        // Two disconnected edges: cross-component pairs are unroutable.
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let w = EdgeWeights::uniform(&g, 1u64);
        let scheme = DestTable::build(&g, &w, &ShortestPath);
        let plane = compile(&scheme, &g).unwrap();
        validate(&plane, &scheme, &g).unwrap();
        assert!(plane.initial_id(0, 1).is_some());
        assert_eq!(
            plane.walk(0, 2).unwrap_err(),
            RouteError::Unroutable {
                source: 0,
                target: 2
            }
        );
    }

    #[test]
    fn node_count_mismatch_is_rejected() {
        let g4 = generators::path(4);
        let g5 = generators::path(5);
        let w = EdgeWeights::uniform(&g4, 1u64);
        let scheme = DestTable::build(&g4, &w, &ShortestPath);
        assert_eq!(
            compile(&scheme, &g5).unwrap_err(),
            CompileError::NodeCountMismatch {
                scheme: 4,
                graph: 5
            }
        );
    }

    #[test]
    fn memory_report_counts_every_array() {
        let g = generators::cycle(8);
        let w = EdgeWeights::uniform(&g, 1u64);
        let scheme = DestTable::build(&g, &w, &ShortestPath);
        let plane = compile(&scheme, &g).unwrap();
        let mem = plane.memory();
        assert!(mem.transition_bits > 0);
        assert!(mem.initial_bits > 0);
        assert!(mem.adjacency_bits > 0);
        assert_eq!(
            mem.total_bits(),
            mem.transition_bits + mem.initial_bits + mem.adjacency_bits
        );
        assert!(mem.to_string().contains("dense") || mem.to_string().contains("sparse"));
    }
}
