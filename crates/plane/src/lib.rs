//! # cpr-plane — a compiled forwarding plane for compact routing schemes
//!
//! The schemes in `cpr-routing` are *specifications*: each hop evaluates
//! a local routing function on a structured header (clone a Thorup–Zwick
//! label, binary-search a table, …). That is the right shape for proving
//! bit bounds, and the wrong shape for serving route queries at rate.
//! This crate closes the gap the way real routers do — by separating the
//! control plane from the forwarding plane:
//!
//! * [`compile`] flattens any [`RoutingScheme`](cpr_routing::RoutingScheme)
//!   into an immutable [`ForwardingPlane`]: reachable `(node, header)`
//!   states are interned to dense ids and their decisions bit-packed into
//!   flat transition arrays ([`PackedArray`]), with a dense or sparse
//!   layout chosen from the instance's honest bit accounting. Compilation
//!   drives the live `step` simulation for every pair and aborts on any
//!   misroute, and [`validate`] replays all pairs hop-for-hop afterwards.
//! * [`workload`] generates deterministic query batches — uniform,
//!   degree-weighted gravity, and hotspot traffic.
//! * [`engine`] serves a batch across sharded scoped threads and reports
//!   throughput, hop counts, hop stretch against the `cpr-paths` optima,
//!   and every failure ([`ServeReport`]) — delivery errors are surfaced
//!   as [`RouteError`](cpr_routing::RouteError)s, never masked.
//! * [`heal`] keeps a compiled plane honest under topology churn: every
//!   plane carries a [`graph_digest`] of the topology it was compiled
//!   against, and [`SelfHealingPlane`] detects drift, incrementally
//!   repairs only the affected pairs, and falls back to the live scheme
//!   while repairs are pending — a stale plane degrades loudly, it
//!   never forwards onto a dead link.
//! * [`multi`] serves *many* policy classes from one process over one
//!   shared substrate: `Arc`-deduped initial/adjacency tables, one
//!   [`HopMatrix`](cpr_paths::HopMatrix), and one shared dirty set per
//!   topology delta repairing every class ([`MultiPlane`]).
//!
//! ```
//! use cpr_algebra::policies::ShortestPath;
//! use cpr_graph::{generators, EdgeWeights};
//! use cpr_plane::{compile, serve, validate, EngineConfig, HopOptima, TrafficPattern};
//! use cpr_routing::DestTable;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let g = generators::gnp_connected(16, 0.2, &mut rng);
//! let w = EdgeWeights::uniform(&g, 1u64);
//! let scheme = DestTable::build(&g, &w, &ShortestPath);
//!
//! let plane = compile(&scheme, &g).unwrap();
//! validate(&plane, &scheme, &g).unwrap();
//!
//! let queries = cpr_plane::generate(&g, &TrafficPattern::Uniform, 1000, &mut rng);
//! let optima = HopOptima::compute(&g);
//! let report = serve(&plane, &queries, Some(&optima), &EngineConfig::with_shards(2));
//! assert_eq!(report.delivered, 1000);
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod engine;
pub mod heal;
pub mod multi;
pub mod tenant;
pub mod workload;

pub use compile::{
    compile, compile_with_threads, graph_digest, validate, CompileError, Decision, Divergence,
    ForwardingPlane, PackedArray, PlaneMemory,
};
pub use engine::{
    serve, serve_obs, BatchScratch, BatchStats, EngineConfig, HopOptima, LookupCore, QueryFailure,
    ServeReport, StaticCore, StretchStats,
};
pub use heal::{
    HealthCounters, PendingWork, RepairPolicy, RepairStats, SelfHealingPlane, Served, StaleReport,
};
pub use multi::{
    ClassMemory, ClassPlane, ClassRegistration, MultiBuilder, MultiMemory, MultiPlane,
    MultiRepairReport, MultiSnapshot, TypedClassPlane,
};
pub use tenant::{
    build_tenant_class, dyn_edge_weights, sw_edge_weights, TenantClass, TenantError, MAX_CLASSES,
};
// Delta oracles are defined in `cpr-paths`; re-exported here because the
// healing APIs above consume them, so plane users (e.g. `cpr-serve`) need
// no direct `cpr-paths` dependency.
pub use cpr_paths::{DeltaOracle, DeltaReport, DeltaTracker, DirtyPairs, FullDirtyOracle};
pub use workload::{generate, TrafficPattern};
