//! Multi-algebra serving: many policy classes compiled into one process
//! over one shared substrate.
//!
//! The paper's Table 1 story is about *many* algebras staying compact
//! simultaneously — QoS classes mapping to widest-shortest vs
//! shortest-widest, valley-free constraints for inter-domain pairs. A
//! [`MultiPlane`] holds one compiled [`SelfHealingPlane`] per *traffic
//! class* (a named scheme × algebra combination), all built against the
//! **same** topology, and makes the sharing explicit:
//!
//! * the CSR adjacency snapshot and the `n²` initial-header table of
//!   every plane are `Arc`-backed ([`ForwardingPlane`]); after
//!   compilation a dedupe pass aliases content-identical tables across
//!   classes, so e.g. all eight Table 1 destination-table classes carry
//!   **one** initial table and **one** adjacency snapshot between them;
//! * one [`HopMatrix`] serves every class (hop optima depend on the
//!   topology, not the algebra);
//! * one topology delta produces **one** shared dirty set
//!   ([`SelfHealingPlane::observe_with_dirty`]) distributed to every
//!   class — N classes pay one delta analysis per churn event, not N.
//!
//! [`MultiMemory`] reports the honest bit accounting both ways —
//! substrate counted once ([`MultiMemory::multi_total_bits`]) vs. the
//! sum of independently deployed planes
//! ([`MultiMemory::independent_total_bits`]) — which is the number the
//! multi-tenant claim rests on, pinned by tests and `BENCH_multi.json`.
//!
//! The shared dirty set is deliberately *structural*, never
//! metric-specific: for an edge-removal delta it contains `(x, t)` and
//! `(y, t)` for every removed edge `(x, y)` and every target `t`, which
//! is sound for **any** algebra (a walk crossing the edge visits an
//! endpoint, so the per-class walk closure catches it; a removal never
//! makes an unroutable pair routable). Any edge *addition* falls back to
//! [`DirtyPairs::All`]: addition bounds are metric-specific
//! (`cpr_paths::DeltaTracker` reasons about one algebra's via-weights)
//! and unsound to share across classes.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use cpr_graph::{Graph, NodeId};
use cpr_paths::{DirtyPairs, HopMatrix};
use cpr_routing::{RouteError, RoutingScheme};

use crate::compile::{graph_digest, CompileError, ForwardingPlane};
use crate::engine::StaticCore;
use crate::heal::{
    HealthCounters, RepairPolicy, RepairStats, SelfHealingPlane, Served, StaleReport,
};
use crate::tenant::{build_tenant_class, TenantClass, TenantError, MAX_CLASSES};

/// One served traffic class: a self-healing plane plus the scheme
/// factory that rebuilds its live scheme when the topology moves.
///
/// Object-safe so a [`MultiPlane`] can mix header types — Table 1
/// destination tables (`Header = NodeId`) and BGP state tables
/// (`Header = BgpHeader`) live in one `Vec<Box<dyn ClassPlane>>`.
pub trait ClassPlane: Send + Sync {
    /// Registry name of the class (e.g. `"widest-shortest"`, `"bgp-b2"`).
    fn class_name(&self) -> &str;

    /// The compiled base plane.
    fn base(&self) -> &ForwardingPlane;

    /// Mutable base access for the substrate dedupe pass.
    fn base_mut(&mut self) -> &mut ForwardingPlane;

    /// Read-only healed lookup (`&self`, shareable across serving
    /// threads), against the class's *current* scheme and `graph`.
    ///
    /// # Errors
    ///
    /// Same as [`SelfHealingPlane::lookup`].
    fn lookup(
        &self,
        graph: &Graph,
        source: NodeId,
        target: NodeId,
    ) -> Result<(Vec<NodeId>, Served), RouteError>;

    /// Folds a precomputed shared dirty set into this class's healing
    /// state and — when the topology actually moved — rebuilds the live
    /// scheme from the factory for the new graph.
    ///
    /// # Errors
    ///
    /// Same as [`SelfHealingPlane::observe_with_dirty`].
    fn observe_dirty(
        &mut self,
        graph: &Graph,
        affected: &DirtyPairs,
    ) -> Result<StaleReport, CompileError>;

    /// Repairs from the dirty set accumulated by
    /// [`observe_dirty`](Self::observe_dirty).
    ///
    /// # Errors
    ///
    /// Same as [`SelfHealingPlane::repair_observed`].
    fn repair(
        &mut self,
        graph: &Graph,
        policy: &RepairPolicy,
        obs: &cpr_obs::Obs,
    ) -> Result<RepairStats, CompileError>;

    /// Pairs awaiting repair.
    fn dirty_pairs(&self) -> usize;

    /// Live patch-layer entries overriding the base arrays.
    fn patch_entries(&self) -> usize;

    /// Content digest of the class's base plane
    /// ([`ForwardingPlane::digest`]).
    fn digest(&self) -> u64;

    /// Topology epoch of the class's healing state.
    fn epoch(&self) -> u64;

    /// Cumulative health counters.
    fn counters(&self) -> HealthCounters;

    /// An owned zero-alloc serving core — `Some` only when the base
    /// plane is current for `graph` and nothing overrides it (no patch
    /// entries, no dirty pairs), because the flat core bypasses the
    /// patch layer entirely.
    fn serving_core(&self, graph: &Graph) -> Option<StaticCore>;

    /// Clones the class for an immutable serving snapshot.
    fn clone_box(&self) -> Box<dyn ClassPlane>;
}

/// The concrete [`ClassPlane`] for any scheme type: a name, a scheme
/// factory (so topology changes can rebuild the live scheme), the
/// current scheme, and the self-healing compiled plane.
pub struct TypedClassPlane<S: RoutingScheme> {
    name: String,
    factory: Arc<dyn Fn(&Graph) -> S + Send + Sync>,
    scheme: S,
    healing: SelfHealingPlane<S>,
}

impl<S> TypedClassPlane<S>
where
    S: RoutingScheme + Clone + Send + Sync + 'static,
    S::Header: Send + Sync,
{
    /// Builds the scheme from `factory` and compiles it over `graph`.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`] of the underlying compile.
    pub fn new(
        name: impl Into<String>,
        graph: &Graph,
        factory: impl Fn(&Graph) -> S + Send + Sync + 'static,
    ) -> Result<Self, CompileError> {
        let factory: Arc<dyn Fn(&Graph) -> S + Send + Sync> = Arc::new(factory);
        let scheme = factory(graph);
        let healing = SelfHealingPlane::new(&scheme, graph)?;
        Ok(TypedClassPlane {
            name: name.into(),
            factory,
            scheme,
            healing,
        })
    }

    /// The class's current live scheme.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// The class's healing state.
    pub fn healing(&self) -> &SelfHealingPlane<S> {
        &self.healing
    }
}

impl<S> ClassPlane for TypedClassPlane<S>
where
    S: RoutingScheme + Clone + Send + Sync + 'static,
    S::Header: Send + Sync,
{
    fn class_name(&self) -> &str {
        &self.name
    }

    fn base(&self) -> &ForwardingPlane {
        self.healing.base()
    }

    fn base_mut(&mut self) -> &mut ForwardingPlane {
        self.healing.base_mut()
    }

    fn lookup(
        &self,
        graph: &Graph,
        source: NodeId,
        target: NodeId,
    ) -> Result<(Vec<NodeId>, Served), RouteError> {
        self.healing.lookup(&self.scheme, graph, source, target)
    }

    fn observe_dirty(
        &mut self,
        graph: &Graph,
        affected: &DirtyPairs,
    ) -> Result<StaleReport, CompileError> {
        let report = self.healing.observe_with_dirty(graph, affected)?;
        if report.stale {
            // The live scheme must match the topology it falls back to
            // and re-traces dirty pairs against.
            self.scheme = (self.factory)(graph);
        }
        Ok(report)
    }

    fn repair(
        &mut self,
        graph: &Graph,
        policy: &RepairPolicy,
        obs: &cpr_obs::Obs,
    ) -> Result<RepairStats, CompileError> {
        self.healing
            .repair_observed(&self.scheme, graph, policy, obs)
    }

    fn dirty_pairs(&self) -> usize {
        self.healing.dirty_pairs()
    }

    fn patch_entries(&self) -> usize {
        self.healing.patch_entries()
    }

    fn digest(&self) -> u64 {
        self.healing.base().digest()
    }

    fn epoch(&self) -> u64 {
        self.healing.epoch()
    }

    fn counters(&self) -> HealthCounters {
        self.healing.counters()
    }

    fn serving_core(&self, graph: &Graph) -> Option<StaticCore> {
        if self.healing.base().is_current_for(graph)
            && self.healing.patch_entries() == 0
            && self.healing.dirty_pairs() == 0
        {
            Some(self.healing.base().static_core())
        } else {
            None
        }
    }

    fn clone_box(&self) -> Box<dyn ClassPlane> {
        Box::new(TypedClassPlane {
            name: self.name.clone(),
            factory: Arc::clone(&self.factory),
            scheme: self.scheme.clone(),
            healing: self.healing.clone(),
        })
    }
}

/// Deferred class registrations for [`MultiPlane::build`]: each entry
/// compiles one class against the graph handed to `build`.
#[derive(Default)]
pub struct MultiBuilder {
    #[allow(clippy::type_complexity)]
    factories: Vec<Box<dyn FnOnce(&Graph) -> Result<Box<dyn ClassPlane>, CompileError>>>,
}

impl MultiBuilder {
    /// An empty registry.
    pub fn new() -> Self {
        MultiBuilder::default()
    }

    /// Registers a class under `name`: `factory` builds the scheme for
    /// any topology (fresh compile *and* later churn rebuilds). Classes
    /// are served in registration order — the wire protocol's traffic
    /// class `k` is the `k`-th registration.
    pub fn class<S>(
        mut self,
        name: impl Into<String>,
        factory: impl Fn(&Graph) -> S + Send + Sync + 'static,
    ) -> Self
    where
        S: RoutingScheme + Clone + Send + Sync + 'static,
        S::Header: Send + Sync,
    {
        let name = name.into();
        self.factories.push(Box::new(move |graph| {
            Ok(Box::new(TypedClassPlane::new(name, graph, factory)?) as Box<dyn ClassPlane>)
        }));
        self
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// `true` when no class is registered.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

/// One wire traffic-class slot of a [`MultiPlane`]. Slot indices are
/// the wire protocol's class ids and **never shift**: deregistering a
/// runtime class leaves a tombstone that keeps its index (and name, for
/// diagnostics) until a later registration reuses it, so concurrent
/// readers of other classes cannot be renumbered underneath.
enum Slot {
    /// A serving class; `dynamic` marks runtime registrations (the only
    /// ones that may be deregistered).
    Live {
        plane: Box<dyn ClassPlane>,
        dynamic: bool,
    },
    /// A deregistered runtime class, index held in reserve.
    Retired { name: String },
}

impl Slot {
    fn live(&self) -> Option<&dyn ClassPlane> {
        match self {
            Slot::Live { plane, .. } => Some(plane.as_ref()),
            Slot::Retired { .. } => None,
        }
    }

    fn live_box_mut(&mut self) -> Option<&mut Box<dyn ClassPlane>> {
        match self {
            Slot::Live { plane, .. } => Some(plane),
            Slot::Retired { .. } => None,
        }
    }

    fn name(&self) -> &str {
        match self {
            Slot::Live { plane, .. } => plane.class_name(),
            Slot::Retired { name } => name,
        }
    }
}

/// Outcome of a successful [`MultiPlane::register_class_expr`].
#[derive(Clone, Debug)]
pub struct ClassRegistration {
    /// The wire traffic-class id the new class serves under (a reused
    /// tombstone slot when one exists, else a fresh index).
    pub class: usize,
    /// The scheme the admissibility gate selected.
    pub scheme: cpr_algebra::SchemeChoice,
    /// Multi-plane epoch after the registration.
    pub epoch: u64,
    /// The full gate decision (lowered algebra, measured property
    /// report, admissibility verdict).
    pub decision: cpr_algebra::Decision,
}

/// Outcome of one [`MultiPlane::reconcile`] pass: the shared delta
/// analysis plus every class's own [`RepairStats`].
#[derive(Clone, Debug)]
pub struct MultiRepairReport {
    /// Multi-plane epoch after the pass.
    pub epoch: u64,
    /// Edges removed by the delta.
    pub removed_edges: usize,
    /// Edges added by the delta.
    pub added_edges: usize,
    /// `"none"` (no delta), `"pairs"` (structural endpoint set) or
    /// `"all"` (additions present — every pair dirty, metric-specific
    /// addition bounds are unsound to share across algebras).
    pub strategy: &'static str,
    /// Ordered pairs in the shared dirty set (`n·(n−1)` under `"all"`).
    pub shared_dirty_pairs: usize,
    /// Per-class repair outcomes, in class order.
    pub class_stats: Vec<(String, RepairStats)>,
}

/// Shared-substrate accounting of one class inside [`MultiMemory`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassMemory {
    /// Registry name.
    pub name: String,
    /// Bits private to the class (transition arrays).
    pub transition_bits: u64,
    /// Bits of the class's initial-header table.
    pub initial_bits: u64,
    /// `true` when the initial table aliases an earlier class's
    /// allocation (costs zero additional bits in the multi plane).
    pub initial_shared: bool,
    /// `true` when the CSR adjacency aliases an earlier class's
    /// allocation.
    pub adjacency_shared: bool,
}

/// Honest bit accounting of a [`MultiPlane`], both ways: substrate
/// counted once (the multi-tenant process) vs. summed per class
/// (independent deployments).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiMemory {
    /// Served classes.
    pub classes: usize,
    /// Node count.
    pub nodes: usize,
    /// Total bits of the multi plane: every class's transition arrays,
    /// each **distinct** initial-table / adjacency allocation counted
    /// once, plus one shared [`HopMatrix`].
    pub multi_total_bits: u64,
    /// What the same classes would cost as independent single-class
    /// processes: per-class plane totals plus a [`HopMatrix`] each.
    pub independent_total_bits: u64,
    /// Distinct initial-header-table allocations across classes.
    pub distinct_initial_tables: usize,
    /// Distinct CSR adjacency allocations across classes.
    pub distinct_adjacency_tables: usize,
    /// Bits of the one shared hop matrix.
    pub hop_matrix_bits: u64,
    /// Per-class breakdown, in class order.
    pub per_class: Vec<ClassMemory>,
}

impl MultiMemory {
    /// Multi-plane bytes per node.
    pub fn multi_bytes_per_node(&self) -> f64 {
        self.multi_total_bits as f64 / 8.0 / self.nodes as f64
    }

    /// Independent-deployment bytes per node.
    pub fn independent_bytes_per_node(&self) -> f64 {
        self.independent_total_bits as f64 / 8.0 / self.nodes as f64
    }

    /// Fraction of the independent footprint saved by sharing.
    pub fn savings_fraction(&self) -> f64 {
        if self.independent_total_bits == 0 {
            0.0
        } else {
            1.0 - self.multi_total_bits as f64 / self.independent_total_bits as f64
        }
    }
}

impl fmt::Display for MultiMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} classes over n={}: {} KiB shared vs {} KiB independent \
             ({:.1}% saved; {} initial tables, {} adjacency tables)",
            self.classes,
            self.nodes,
            self.multi_total_bits / 8192,
            self.independent_total_bits / 8192,
            self.savings_fraction() * 100.0,
            self.distinct_initial_tables,
            self.distinct_adjacency_tables,
        )
    }
}

/// One clone of a class inside a [`MultiSnapshot`], with the optional
/// zero-alloc fast path.
struct SnapshotClass {
    plane: Box<dyn ClassPlane>,
    /// `Some` only when the class's base plane is pristine for the
    /// snapshot topology — the flat core bypasses the patch layer, so a
    /// degraded class always serves through the healed walk instead.
    core: Option<StaticCore>,
}

/// A snapshot slot mirrors the master's [`Slot`] layout so class ids
/// mean the same thing on both sides of the RCU swap.
enum SnapSlot {
    Live(SnapshotClass),
    Retired(String),
}

/// An immutable multi-class serving snapshot, cloned from the master
/// [`MultiPlane`] RCU-style: serving threads share `&MultiSnapshot`
/// while the master keeps absorbing churn.
pub struct MultiSnapshot {
    epoch: u64,
    digest: u64,
    graph: Graph,
    classes: Vec<SnapSlot>,
}

impl MultiSnapshot {
    /// Multi-plane epoch the snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// [`graph_digest`] of the snapshot topology.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The snapshot topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Traffic-class slots, live **and** retired — the range of valid
    /// wire class ids.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Registry name of class `class` (a retired slot keeps its last
    /// name for diagnostics).
    ///
    /// # Panics
    ///
    /// Panics when `class` is out of range.
    pub fn class_name(&self, class: usize) -> &str {
        match &self.classes[class] {
            SnapSlot::Live(c) => c.plane.class_name(),
            SnapSlot::Retired(name) => name,
        }
    }

    /// Whether slot `class` serves (i.e. is not a deregistered
    /// tombstone). The serving layer checks this before routing.
    ///
    /// # Panics
    ///
    /// Panics when `class` is out of range.
    pub fn class_live(&self, class: usize) -> bool {
        matches!(self.classes[class], SnapSlot::Live(_))
    }

    /// Whether class `class` currently serves through its zero-alloc
    /// flat core (pristine base) rather than the healed walk.
    ///
    /// # Panics
    ///
    /// Panics when `class` is out of range.
    pub fn class_on_core(&self, class: usize) -> bool {
        matches!(&self.classes[class], SnapSlot::Live(c) if c.core.is_some())
    }

    /// `true` when no live class has pairs awaiting repair — published
    /// snapshots always are, because the multi reconcile repairs every
    /// class before the swap.
    pub fn is_fresh(&self) -> bool {
        self.classes.iter().all(|c| match c {
            SnapSlot::Live(c) => c.plane.dirty_pairs() == 0,
            SnapSlot::Retired(_) => true,
        })
    }

    /// Routes `source → target` in traffic class `class`: through the
    /// class's flat [`StaticCore`] when its base plane is pristine,
    /// otherwise through the healed patch-over-base walk with live-edge
    /// checks.
    ///
    /// # Errors
    ///
    /// Same as [`SelfHealingPlane::lookup`].
    ///
    /// # Panics
    ///
    /// Panics when `class` is out of range or retired — the serving
    /// layer validates the wire-supplied class id (range **and**
    /// liveness, via [`class_live`](Self::class_live)) before calling.
    pub fn lookup(
        &self,
        class: usize,
        source: NodeId,
        target: NodeId,
    ) -> Result<(Vec<NodeId>, Served), RouteError> {
        let c = match &self.classes[class] {
            SnapSlot::Live(c) => c,
            SnapSlot::Retired(name) => panic!("class {class} (`{name}`) is retired"),
        };
        match &c.core {
            Some(core) => core.walk(source, target).map(|p| (p, Served::Compiled)),
            None => c.plane.lookup(&self.graph, source, target),
        }
    }
}

/// All traffic classes of one process, compiled over one topology with
/// the substrate shared; see the module docs for the sharing contract.
pub struct MultiPlane {
    graph: Graph,
    digest: u64,
    hops: Arc<HopMatrix>,
    classes: Vec<Slot>,
    epoch: u64,
}

impl MultiPlane {
    /// Compiles every registered class over `graph`, dedupes the
    /// substrate allocations across classes and computes the one shared
    /// hop matrix.
    ///
    /// # Errors
    ///
    /// The first [`CompileError`] of any class compile.
    pub fn build(graph: &Graph, builder: MultiBuilder) -> Result<Self, CompileError> {
        let mut classes = Vec::with_capacity(builder.factories.len());
        for f in builder.factories {
            classes.push(Slot::Live {
                plane: f(graph)?,
                dynamic: false,
            });
        }
        dedupe_substrate(&mut classes);
        Ok(MultiPlane {
            graph: graph.clone(),
            digest: graph_digest(graph),
            hops: Arc::new(HopMatrix::compute(graph)),
            classes,
            epoch: 0,
        })
    }

    /// The topology every class currently serves.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// [`graph_digest`] of the served topology.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Multi-plane epoch: bumped by every completed reconcile pass that
    /// found a delta and by every registration / deregistration — any
    /// event a serving snapshot must be re-taken for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared hop matrix (BFS optima of the served topology).
    pub fn hops(&self) -> &Arc<HopMatrix> {
        &self.hops
    }

    /// Traffic-class slots, live **and** retired — the range of valid
    /// wire class ids.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Live (serving) classes.
    pub fn live_class_count(&self) -> usize {
        self.classes.iter().filter(|s| s.live().is_some()).count()
    }

    /// The live classes, in slot (= wire traffic-class) order. Retired
    /// slots are skipped, so on a plane that never deregistered this is
    /// exactly the registration order.
    pub fn classes(&self) -> impl Iterator<Item = &dyn ClassPlane> {
        self.classes.iter().filter_map(|c| c.live())
    }

    /// Index of the live class registered under `name`.
    pub fn class_index(&self, name: &str) -> Option<usize> {
        self.classes
            .iter()
            .position(|c| c.live().is_some() && c.name() == name)
    }

    /// Whether slot `class` serves (not a deregistered tombstone).
    ///
    /// # Panics
    ///
    /// Panics when `class` is out of range.
    pub fn class_live(&self, class: usize) -> bool {
        self.classes[class].live().is_some()
    }

    /// Whether slot `class` is a runtime registration (deregisterable).
    ///
    /// # Panics
    ///
    /// Panics when `class` is out of range.
    pub fn class_dynamic(&self, class: usize) -> bool {
        matches!(self.classes[class], Slot::Live { dynamic: true, .. })
    }

    /// Parses, gates, compiles and registers a tenant class under
    /// `name`, serving from the first tombstone slot (else a fresh
    /// index). The new class compiles against the **current** topology,
    /// joins the content-deduped substrate, and is covered by the
    /// shared dirty set of every later [`reconcile`](Self::reconcile)
    /// identically to seed classes. Existing classes are untouched —
    /// readers of a snapshot taken before the registration keep
    /// serving, and the epoch bump tells the serving layer to publish a
    /// new snapshot.
    ///
    /// # Errors
    ///
    /// [`TenantError::Parse`] / [`TenantError::Inadmissible`] (nothing
    /// was compiled), [`TenantError::DuplicateName`],
    /// [`TenantError::RegistryFull`], or [`TenantError::Compile`].
    pub fn register_class_expr(
        &mut self,
        name: &str,
        text: &str,
    ) -> Result<ClassRegistration, TenantError> {
        if self
            .classes
            .iter()
            .any(|c| c.live().is_some() && c.name() == name)
        {
            return Err(TenantError::DuplicateName(name.to_owned()));
        }
        let slot = self.classes.iter().position(|c| c.live().is_none());
        if slot.is_none() && self.classes.len() >= MAX_CLASSES {
            return Err(TenantError::RegistryFull);
        }
        let TenantClass {
            plane,
            decision,
            scheme,
            ..
        } = build_tenant_class(name, text, &self.graph)?;
        let class = match slot {
            Some(i) => {
                self.classes[i] = Slot::Live {
                    plane,
                    dynamic: true,
                };
                i
            }
            None => {
                self.classes.push(Slot::Live {
                    plane,
                    dynamic: true,
                });
                self.classes.len() - 1
            }
        };
        dedupe_substrate(&mut self.classes);
        self.epoch += 1;
        Ok(ClassRegistration {
            class,
            scheme,
            epoch: self.epoch,
            decision,
        })
    }

    /// Deregisters the runtime class named `name`, leaving a tombstone
    /// that keeps the slot index reserved (wire class ids never shift).
    ///
    /// # Errors
    ///
    /// [`TenantError::UnknownClass`] when no live class has the name,
    /// [`TenantError::SeedClass`] for build-time classes.
    pub fn deregister_class(&mut self, name: &str) -> Result<usize, TenantError> {
        let class = self
            .class_index(name)
            .ok_or_else(|| TenantError::UnknownClass(name.to_owned()))?;
        match &self.classes[class] {
            Slot::Live { dynamic: false, .. } => {
                return Err(TenantError::SeedClass(name.to_owned()))
            }
            _ => {
                self.classes[class] = Slot::Retired {
                    name: name.to_owned(),
                };
            }
        }
        self.epoch += 1;
        Ok(class)
    }

    /// Read-only healed lookup in class `class` against the current
    /// topology.
    ///
    /// # Errors
    ///
    /// Same as [`SelfHealingPlane::lookup`].
    ///
    /// # Panics
    ///
    /// Panics when `class` is out of range or retired.
    pub fn lookup(
        &self,
        class: usize,
        source: NodeId,
        target: NodeId,
    ) -> Result<(Vec<NodeId>, Served), RouteError> {
        match &self.classes[class] {
            Slot::Live { plane, .. } => plane.lookup(&self.graph, source, target),
            Slot::Retired { name } => panic!("class {class} (`{name}`) is retired"),
        }
    }

    /// Diffs `graph` against the served topology and, on any change,
    /// repairs **every** class from one shared dirty set: removals
    /// produce the structural endpoint set (sound for any algebra),
    /// additions force [`DirtyPairs::All`]. After the per-class repairs
    /// the substrate is re-deduped (a rebuild re-allocates a class's
    /// tables) and the shared hop matrix is recomputed once.
    ///
    /// # Errors
    ///
    /// The first [`CompileError`] of any class's observe or repair.
    pub fn reconcile(
        &mut self,
        graph: &Graph,
        policy: &RepairPolicy,
        obs: &cpr_obs::Obs,
    ) -> Result<MultiRepairReport, CompileError> {
        let n = self.graph.node_count();
        let old_edges: BTreeSet<(NodeId, NodeId)> = self
            .graph
            .edges()
            .map(|(_, (u, v))| (u.min(v), u.max(v)))
            .collect();
        let new_edges: BTreeSet<(NodeId, NodeId)> = graph
            .edges()
            .map(|(_, (u, v))| (u.min(v), u.max(v)))
            .collect();
        let removed: Vec<(NodeId, NodeId)> = old_edges.difference(&new_edges).copied().collect();
        let added: Vec<(NodeId, NodeId)> = new_edges.difference(&old_edges).copied().collect();
        if removed.is_empty() && added.is_empty() && graph.node_count() == n {
            return Ok(MultiRepairReport {
                epoch: self.epoch,
                removed_edges: 0,
                added_edges: 0,
                strategy: "none",
                shared_dirty_pairs: 0,
                class_stats: Vec::new(),
            });
        }
        let (dirty, strategy) = if !added.is_empty() {
            (DirtyPairs::All, "all")
        } else {
            let mut pairs = BTreeSet::new();
            for &(x, y) in &removed {
                for t in 0..graph.node_count() {
                    if t != x {
                        pairs.insert((x, t));
                    }
                    if t != y {
                        pairs.insert((y, t));
                    }
                }
            }
            (DirtyPairs::Pairs(pairs), "pairs")
        };
        let shared_dirty_pairs = match &dirty {
            DirtyPairs::All => graph.node_count() * graph.node_count().saturating_sub(1),
            DirtyPairs::Pairs(p) => p.len(),
        };
        let mut class_stats = Vec::with_capacity(self.classes.len());
        for slot in &mut self.classes {
            let Some(class) = slot.live_box_mut() else {
                continue;
            };
            class.observe_dirty(graph, &dirty)?;
            let stats = class.repair(graph, policy, obs)?;
            class_stats.push((class.class_name().to_string(), stats));
        }
        dedupe_substrate(&mut self.classes);
        self.graph = graph.clone();
        self.digest = graph_digest(graph);
        self.hops = Arc::new(HopMatrix::compute(graph));
        self.epoch += 1;
        obs.event(
            "multi.reconcile",
            &[
                ("epoch", cpr_obs::Json::int(self.epoch as i64)),
                ("classes", cpr_obs::Json::int(self.classes.len() as i64)),
                ("removed", cpr_obs::Json::int(removed.len() as i64)),
                ("added", cpr_obs::Json::int(added.len() as i64)),
                (
                    "shared_dirty",
                    cpr_obs::Json::int(shared_dirty_pairs as i64),
                ),
            ],
        );
        Ok(MultiRepairReport {
            epoch: self.epoch,
            removed_edges: removed.len(),
            added_edges: added.len(),
            strategy,
            shared_dirty_pairs,
            class_stats,
        })
    }

    /// Clones every class into an immutable [`MultiSnapshot`], attaching
    /// a zero-alloc [`StaticCore`] to each class whose base plane is
    /// pristine for the current topology.
    pub fn snapshot(&self) -> MultiSnapshot {
        MultiSnapshot {
            epoch: self.epoch,
            digest: self.digest,
            graph: self.graph.clone(),
            classes: self
                .classes
                .iter()
                .map(|slot| match slot {
                    Slot::Live { plane, .. } => SnapSlot::Live(SnapshotClass {
                        core: plane.serving_core(&self.graph),
                        plane: plane.clone_box(),
                    }),
                    Slot::Retired { name } => SnapSlot::Retired(name.clone()),
                })
                .collect(),
        }
    }

    /// The shared-substrate bit accounting; see [`MultiMemory`].
    pub fn memory(&self) -> MultiMemory {
        let hop_matrix_bits = self.hops.bytes() as u64 * 8;
        let mut seen_initial = BTreeSet::new();
        let mut seen_adjacency = BTreeSet::new();
        let mut multi_total_bits = hop_matrix_bits;
        let mut independent_total_bits = 0u64;
        let mut per_class = Vec::with_capacity(self.classes.len());
        for class in self.classes.iter().filter_map(|s| s.live()) {
            let base = class.base();
            let mem = base.memory();
            independent_total_bits += mem.total_bits() + hop_matrix_bits;
            multi_total_bits += mem.transition_bits;
            let (initial_ptr, row_ptr, nbr_ptr) = base.substrate_ptrs();
            let initial_new = seen_initial.insert(initial_ptr);
            if initial_new {
                multi_total_bits += base.initial_table_bits();
            }
            let adjacency_new = seen_adjacency.insert((row_ptr, nbr_ptr));
            if adjacency_new {
                multi_total_bits += base.adjacency_table_bits();
            }
            per_class.push(ClassMemory {
                name: class.class_name().to_string(),
                transition_bits: mem.transition_bits,
                initial_bits: mem.initial_bits,
                initial_shared: !initial_new,
                adjacency_shared: !adjacency_new,
            });
        }
        MultiMemory {
            classes: self.live_class_count(),
            nodes: self.graph.node_count(),
            multi_total_bits,
            independent_total_bits,
            distinct_initial_tables: seen_initial.len(),
            distinct_adjacency_tables: seen_adjacency.len(),
            hop_matrix_bits,
            per_class,
        }
    }

    /// Records per-class health into `obs` under
    /// `multi.class.{name}.*` gauges.
    pub fn record_health(&self, obs: &cpr_obs::Obs) {
        for class in self.classes.iter().filter_map(|s| s.live()) {
            let name = class.class_name();
            let c = class.counters();
            obs.set_gauge(
                &format!("multi.class.{name}.dirty_pairs"),
                class.dirty_pairs() as i64,
            );
            obs.set_gauge(
                &format!("multi.class.{name}.patch_entries"),
                class.patch_entries() as i64,
            );
            obs.set_gauge(
                &format!("multi.class.{name}.full_rebuilds"),
                c.full_rebuilds as i64,
            );
            obs.set_gauge(
                &format!("multi.class.{name}.incremental_repairs"),
                c.incremental_repairs as i64,
            );
        }
    }
}

/// Aliases content-identical substrate allocations across classes: each
/// class after the first redirects its initial-table / adjacency `Arc`s
/// at the earliest class holding equal contents. Content equality is
/// checked, never assumed — a class whose routability differs keeps its
/// own table.
fn dedupe_substrate(classes: &mut [Slot]) {
    for i in 1..classes.len() {
        let (head, tail) = classes.split_at_mut(i);
        let Some(cur) = tail[0].live_box_mut() else {
            continue;
        };
        let cur = cur.base_mut();
        let mut initial_done = false;
        let mut adjacency_done = false;
        for canon in head.iter().filter_map(|s| s.live()) {
            let (ini, adj) = cur.share_substrate_with(canon.base());
            initial_done |= ini;
            adjacency_done |= adj;
            if initial_done && adjacency_done {
                break;
            }
        }
    }
}
