//! Deterministic traffic generators for forwarding-plane experiments.
//!
//! A workload is just a vector of `(source, target)` queries; the three
//! [`TrafficPattern`]s cover the standard experimental mixes — uniform
//! random pairs, degree-weighted "gravity" traffic where hubs originate
//! and sink proportionally more flows, and hotspot traffic that
//! concentrates a fraction of all targets on the few highest-degree
//! nodes. Generation is fully determined by the RNG seed, mirroring
//! `cpr_bench::experiment_rng`-style reproducibility.

use cpr_graph::{Graph, NodeId};
use rand::Rng;

/// A synthetic traffic pattern over the nodes of a graph.
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficPattern {
    /// Source and target drawn independently and uniformly, `s ≠ t`
    /// whenever the graph has at least two nodes.
    Uniform,
    /// Both endpoints drawn with probability proportional to node degree
    /// (a gravity model): an AS with many links sees proportionally more
    /// traffic in both directions.
    Gravity,
    /// Targets concentrate on the highest-degree nodes: with probability
    /// `fraction` the target is one of the `hotspots` top-degree nodes
    /// (uniformly among them), otherwise uniform; sources stay uniform.
    Hotspot {
        /// Number of top-degree nodes acting as hotspots (clamped to
        /// `1..=n`).
        hotspots: usize,
        /// Fraction of queries aimed at a hotspot (clamped to
        /// `0.0..=1.0`).
        fraction: f64,
    },
}

impl TrafficPattern {
    /// Short human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficPattern::Uniform => "uniform",
            TrafficPattern::Gravity => "gravity",
            TrafficPattern::Hotspot { .. } => "hotspot",
        }
    }
}

/// Generates `count` `(source, target)` queries under `pattern`.
///
/// Self-pairs are excluded whenever the graph has at least two nodes (on
/// a single-node graph every query is `(0, 0)`). The output is fully
/// determined by the RNG state.
///
/// # Panics
///
/// Panics on an empty graph.
pub fn generate<R: Rng + ?Sized>(
    graph: &Graph,
    pattern: &TrafficPattern,
    count: usize,
    rng: &mut R,
) -> Vec<(NodeId, NodeId)> {
    let n = graph.node_count();
    assert!(n > 0, "cannot generate traffic on an empty graph");
    match pattern {
        TrafficPattern::Uniform => (0..count).map(|_| uniform_pair(n, rng)).collect(),
        TrafficPattern::Gravity => {
            // Cumulative degree table; sampling is one gen_range plus a
            // binary search.
            let mut cum = Vec::with_capacity(n);
            let mut total = 0u64;
            for v in graph.nodes() {
                total += graph.degree(v) as u64;
                cum.push(total);
            }
            if total == 0 {
                // Edgeless graph: gravity degenerates to uniform.
                return (0..count).map(|_| uniform_pair(n, rng)).collect();
            }
            let draw = |rng: &mut R| -> NodeId {
                let x = rng.gen_range(0..total);
                cum.partition_point(|&c| c <= x)
            };
            (0..count)
                .map(|_| {
                    let s = draw(rng);
                    if n == 1 {
                        return (s, s);
                    }
                    loop {
                        let t = draw(rng);
                        if t != s {
                            return (s, t);
                        }
                    }
                })
                .collect()
        }
        TrafficPattern::Hotspot { hotspots, fraction } => {
            let k = (*hotspots).clamp(1, n);
            let p = fraction.clamp(0.0, 1.0);
            let mut by_degree: Vec<NodeId> = graph.nodes().collect();
            by_degree.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
            let hot = &by_degree[..k];
            (0..count)
                .map(|_| {
                    let t = if rng.gen_bool(p) {
                        hot[rng.gen_range(0..k)]
                    } else {
                        rng.gen_range(0..n)
                    };
                    if n == 1 {
                        return (t, t);
                    }
                    loop {
                        let s = rng.gen_range(0..n);
                        if s != t {
                            return (s, t);
                        }
                    }
                })
                .collect()
        }
    }
}

fn uniform_pair<R: Rng + ?Sized>(n: usize, rng: &mut R) -> (NodeId, NodeId) {
    let s = rng.gen_range(0..n);
    if n == 1 {
        return (s, s);
    }
    loop {
        let t = rng.gen_range(0..n);
        if t != s {
            return (s, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_graph::generators;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_pairs_are_in_range_and_distinct() {
        let g = generators::cycle(10);
        let qs = generate(&g, &TrafficPattern::Uniform, 500, &mut rng(1));
        assert_eq!(qs.len(), 500);
        for &(s, t) in &qs {
            assert!(s < 10 && t < 10 && s != t);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = generators::star(12);
        for pattern in [
            TrafficPattern::Uniform,
            TrafficPattern::Gravity,
            TrafficPattern::Hotspot {
                hotspots: 2,
                fraction: 0.8,
            },
        ] {
            let a = generate(&g, &pattern, 200, &mut rng(9));
            let b = generate(&g, &pattern, 200, &mut rng(9));
            assert_eq!(a, b, "{}", pattern.name());
        }
    }

    #[test]
    fn gravity_prefers_the_hub() {
        // Star: the hub has degree n−1, each leaf degree 1 — the hub
        // should appear as an endpoint in the overwhelming majority of
        // flows.
        let g = generators::star(16);
        let qs = generate(&g, &TrafficPattern::Gravity, 1000, &mut rng(2));
        let hub_flows = qs.iter().filter(|&&(s, t)| s == 0 || t == 0).count();
        assert!(hub_flows > 600, "hub in only {hub_flows}/1000 flows");
    }

    #[test]
    fn hotspot_concentrates_targets() {
        let g = generators::star(20);
        let qs = generate(
            &g,
            &TrafficPattern::Hotspot {
                hotspots: 1,
                fraction: 0.9,
            },
            1000,
            &mut rng(3),
        );
        // Node 0 is the unique top-degree node.
        let to_hot = qs.iter().filter(|&&(_, t)| t == 0).count();
        assert!(to_hot > 700, "only {to_hot}/1000 queries hit the hotspot");
    }

    #[test]
    fn single_node_graph_yields_self_pairs() {
        let g = Graph::with_nodes(1);
        let qs = generate(&g, &TrafficPattern::Uniform, 5, &mut rng(4));
        assert_eq!(qs, vec![(0, 0); 5]);
    }
}
