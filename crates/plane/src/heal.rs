//! A self-healing forwarding plane.
//!
//! A compiled [`ForwardingPlane`] is a snapshot: the moment a link dies
//! the plane's CSR adjacency and transition arrays describe a topology
//! that no longer exists, and a plain `decide()` walk would forward
//! packets onto the dead link — silently. This module makes staleness
//! *detectable*, *repairable* and *survivable*:
//!
//! * **Detect** — every plane records a [`graph_digest`] of the topology
//!   it was compiled against ([`ForwardingPlane::is_current_for`]), and
//!   [`SelfHealingPlane::observe`] diffs the live graph's edge set
//!   against the plane's view, bumping a topology epoch and computing
//!   exactly which `(source, target)` pairs a removed link dirties (by
//!   walking their compiled paths — a pair whose walk never crossed the
//!   link is untouched).
//! * **Repair** — [`SelfHealingPlane::repair`] re-traces only the dirty
//!   pairs through the live scheme on the *new* graph, extending the
//!   header intern space as needed, and installs the re-verified steps
//!   in a patch layer that overrides the base arrays. Under the default
//!   [`observe`](SelfHealingPlane::observe), edge additions dirty every
//!   pair (any route may improve), which degenerates to a full
//!   recompile; [`observe_with`](SelfHealingPlane::observe_with) /
//!   [`repair_with`](SelfHealingPlane::repair_with) instead take a
//!   [`DeltaOracle`] (typically a [`cpr_paths::DeltaTracker`]) that
//!   bounds the affected pairs of *any* delta — additions included — so
//!   an added edge patches only the pairs it can reach, falling back to
//!   a rebuild only when the dirty set exceeds a configurable fraction
//!   of pairs ([`RepairPolicy`]).
//! * **Survive** — while a pair is dirty (observed but not yet
//!   repaired), [`SelfHealingPlane::route`] falls back to the live
//!   scheme's [`route`](cpr_routing::route) instead of serving a stale
//!   hop, and [`HealthCounters`] records every compiled / degraded /
//!   fallback / failed query. A query is *never* answered with a hop
//!   over an edge absent from the current topology: base-array hops are
//!   checked against the live edge set and surface as
//!   [`RouteError::BadPort`] if the arrays try — a loud failure, never a
//!   silently wrong hop.

use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

use cpr_graph::{Graph, NodeId};
use cpr_paths::{DeltaOracle, DirtyPairs};
use cpr_routing::{RouteAction, RouteError, RoutingScheme};

use crate::compile::{
    compile_with_intern, graph_digest, CompileError, Decision, ForwardingPlane, Interner,
};
use crate::engine::{QueryFailure, ServeReport};

/// How a query was answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// Entirely from the pristine compiled arrays.
    Compiled,
    /// Through at least one repaired (patched) transition.
    Degraded,
    /// By the live scheme, because the pair was dirty awaiting repair.
    Fallback,
}

/// Cumulative health counters of a self-healing plane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// Queries served entirely from the base compiled arrays.
    pub compiled: u64,
    /// Queries served through at least one patched transition.
    pub degraded: u64,
    /// Queries answered by the live scheme while their pair was dirty.
    pub fallback: u64,
    /// Queries that failed (unroutable, budget, or a stale hop caught by
    /// the live-edge check).
    pub failed: u64,
    /// Completed [`repair`](SelfHealingPlane::repair) passes.
    pub repairs: u64,
    /// Repair passes that patched only dirty pairs (no recompile).
    pub incremental_repairs: u64,
    /// Repair passes that rebuilt the base plane from scratch — because
    /// every pair was dirty, or because a [`RepairPolicy`] threshold
    /// forced it.
    pub full_rebuilds: u64,
    /// Topology epoch: number of observed topology changes.
    pub epoch: u64,
}

/// Why a stale plane has outstanding work — distinguishes "stale because
/// a (bounded) repair is pending" from "stale because the next pass must
/// rebuild".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PendingWork {
    /// Nothing outstanding: no pair awaits repair.
    #[default]
    None,
    /// Dirty pairs await an incremental repair pass.
    Repair,
    /// Every pair is dirty: the next repair pass will recompile the
    /// base plane instead of patching.
    Rebuild,
}

/// Tunables of a delta-driven repair pass
/// ([`SelfHealingPlane::repair_with`]).
#[derive(Clone, Copy, Debug)]
pub struct RepairPolicy {
    /// When the dirty set exceeds this fraction of all ordered pairs,
    /// the pass abandons patching and rebuilds the base plane — loudly:
    /// the rebuild is counted in
    /// [`HealthCounters::full_rebuilds`], flagged in
    /// [`RepairStats::forced_rebuild`], and surfaced as a
    /// `heal.rebuild.forced` obs event.
    pub max_dirty_fraction: f64,
    /// Record each pass's wall-clock as a `heal.repair_budget_ms` gauge.
    /// Off by default: wall-clock gauges break the byte-determinism of
    /// pinned registry snapshots, so benches enable this only when
    /// timing is on.
    pub record_budget_ms: bool,
}

impl Default for RepairPolicy {
    fn default() -> Self {
        RepairPolicy {
            max_dirty_fraction: 0.5,
            record_budget_ms: false,
        }
    }
}

/// What [`SelfHealingPlane::observe`] found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaleReport {
    /// Whether the observed topology differs from the plane's view.
    pub stale: bool,
    /// [`graph_digest`] of the topology the plane was serving *before*
    /// this observation — what it expected to see.
    pub expected_digest: u64,
    /// [`graph_digest`] of the topology actually observed. Equal to
    /// [`expected_digest`](Self::expected_digest) exactly when
    /// [`stale`](Self::stale) is `false`; both are carried here so swap
    /// logic and logs never recompute `graph_digest` on the hot path.
    pub observed_digest: u64,
    /// Edges the plane was compiled with that no longer exist.
    pub removed_edges: Vec<(NodeId, NodeId)>,
    /// Edges of the live graph the plane has never seen.
    pub added_edges: Vec<(NodeId, NodeId)>,
    /// Total `(source, target)` pairs currently dirty.
    pub dirty_pairs: usize,
    /// What the dirty set implies for the next repair pass.
    pub pending: PendingWork,
}

/// What one [`SelfHealingPlane::repair`] pass did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairStats {
    /// Topology epoch after the repair.
    pub epoch: u64,
    /// Dirty pairs going into the repair.
    pub dirty_pairs: usize,
    /// Pairs re-traced to a verified route on the new topology.
    pub repaired_pairs: usize,
    /// Pairs the new topology cannot route (now loudly unroutable).
    pub unroutable_pairs: usize,
    /// `(node, header)` patch entries now overriding the base arrays.
    pub patched_states: usize,
    /// Whether the pass fell back to a full recompile (every pair was
    /// dirty, so patching would rebuild everything anyway — or a
    /// [`RepairPolicy`] forced it).
    pub full_rebuild: bool,
    /// Whether a [`RepairPolicy::max_dirty_fraction`] threshold forced
    /// the rebuild (as opposed to every pair being dirty).
    pub forced_rebuild: bool,
}

/// A repaired transition: the resolved *node* is stored rather than a
/// port, because port numbering in the base plane's CSR snapshot refers
/// to the old topology.
#[derive(Clone, Copy, Debug)]
enum PatchStep {
    Deliver,
    Forward { to: NodeId, next: u32 },
}

/// A [`ForwardingPlane`] wrapped with topology-drift detection, an
/// incremental repair layer and live-scheme fallback. See module docs.
pub struct SelfHealingPlane<S: RoutingScheme> {
    base: ForwardingPlane,
    intern: Interner<S::Header>,
    /// The edge set (normalized `(min, max)`) the plane currently
    /// serves; updated by [`observe`](Self::observe).
    current_edges: BTreeSet<(NodeId, NodeId)>,
    current_digest: u64,
    /// Repaired transitions, keyed by `(node, interned header id)`;
    /// checked before the base arrays.
    patch: HashMap<(NodeId, u32), PatchStep>,
    /// Repaired initial-header ids (`None` = pair became unroutable).
    initial_patch: HashMap<(NodeId, NodeId), Option<u32>>,
    /// Pairs observed stale and not yet repaired; ordered so repair
    /// passes (and thus header-id assignment) are deterministic.
    dirty: BTreeSet<(NodeId, NodeId)>,
    counters: HealthCounters,
}

/// A healed plane is cloneable into an immutable serving snapshot: the
/// clone shares nothing with the original, so a route-query server can
/// publish it RCU-style while the master keeps absorbing churn. Only the
/// header type must be cloneable (it already is — every
/// [`RoutingScheme::Header`] is `Clone`); the scheme itself stays
/// outside the plane.
impl<S: RoutingScheme> Clone for SelfHealingPlane<S> {
    fn clone(&self) -> Self {
        SelfHealingPlane {
            base: self.base.clone(),
            intern: Interner {
                map: self.intern.map.clone(),
                order: self.intern.order.clone(),
            },
            current_edges: self.current_edges.clone(),
            current_digest: self.current_digest,
            patch: self.patch.clone(),
            initial_patch: self.initial_patch.clone(),
            dirty: self.dirty.clone(),
            counters: self.counters,
        }
    }
}

fn norm(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    (u.min(v), u.max(v))
}

fn edge_set(graph: &Graph) -> BTreeSet<(NodeId, NodeId)> {
    graph.edges().map(|(_, (u, v))| norm(u, v)).collect()
}

impl<S> SelfHealingPlane<S>
where
    S: RoutingScheme + Sync,
    S::Header: Send,
{
    /// Compiles `scheme` over `graph` and wraps the plane with healing
    /// state.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`] of the underlying compile.
    pub fn new(scheme: &S, graph: &Graph) -> Result<Self, CompileError> {
        let (base, order) = compile_with_intern(scheme, graph, cpr_core::par::thread_count())?;
        let map = order
            .iter()
            .enumerate()
            .map(|(i, h)| (h.clone(), i as u32))
            .collect();
        Ok(SelfHealingPlane {
            base,
            intern: Interner { map, order },
            current_edges: edge_set(graph),
            current_digest: graph_digest(graph),
            patch: HashMap::new(),
            initial_patch: HashMap::new(),
            dirty: BTreeSet::new(),
            counters: HealthCounters::default(),
        })
    }

    /// The wrapped base plane.
    pub fn base(&self) -> &ForwardingPlane {
        &self.base
    }

    /// Mutable base access for the multi-plane substrate dedupe pass
    /// (`crate::multi`) — the pass only redirects `Arc`s at
    /// content-identical allocations, never changes logical state.
    pub(crate) fn base_mut(&mut self) -> &mut ForwardingPlane {
        &mut self.base
    }

    /// Cumulative health counters.
    pub fn counters(&self) -> HealthCounters {
        self.counters
    }

    /// Pairs currently dirty (served via live fallback).
    pub fn dirty_pairs(&self) -> usize {
        self.dirty.len()
    }

    /// The current topology epoch: number of observed topology changes.
    /// Cheap accessor — no digest is recomputed.
    pub fn epoch(&self) -> u64 {
        self.counters.epoch
    }

    /// The cached [`graph_digest`] of the topology this plane currently
    /// serves (as of the latest [`observe`](Self::observe)). Cheap
    /// accessor — no digest is recomputed.
    pub fn digest(&self) -> u64 {
        self.current_digest
    }

    /// `(node, header)` entries currently overriding the base arrays —
    /// the live size of the patch layer. A full rebuild resets this to
    /// zero; anything else here must have been written by the *latest*
    /// repair, never left over from an earlier topology.
    pub fn patch_entries(&self) -> usize {
        self.patch.len() + self.initial_patch.len()
    }

    /// `true` when the plane's view matches `graph` and no pair awaits
    /// repair.
    pub fn is_fresh_for(&self, graph: &Graph) -> bool {
        self.current_digest == graph_digest(graph) && self.dirty.is_empty()
    }

    /// Diffs `graph` against the plane's current topology view. On any
    /// change the topology epoch advances and the affected pairs are
    /// marked dirty: for removed edges, exactly the pairs whose healed
    /// walk crossed the edge; for added edges, every pair (any route may
    /// improve). Idempotent when nothing changed.
    ///
    /// # Errors
    ///
    /// [`CompileError::NodeCountMismatch`] when `graph` has a different
    /// node count — node-set changes are a rebuild, not a repair.
    pub fn observe(&mut self, graph: &Graph) -> Result<StaleReport, CompileError> {
        let n = self.base.node_count();
        if graph.node_count() != n {
            return Err(CompileError::NodeCountMismatch {
                scheme: n,
                graph: graph.node_count(),
            });
        }
        let new_edges = edge_set(graph);
        let expected_digest = self.current_digest;
        let removed: Vec<(NodeId, NodeId)> =
            self.current_edges.difference(&new_edges).copied().collect();
        let added: Vec<(NodeId, NodeId)> =
            new_edges.difference(&self.current_edges).copied().collect();
        if removed.is_empty() && added.is_empty() {
            // Identical edge sets mean identical digests, so the cached
            // one serves for both sides — nothing is recomputed here.
            return Ok(StaleReport {
                stale: false,
                expected_digest,
                observed_digest: expected_digest,
                removed_edges: removed,
                added_edges: added,
                dirty_pairs: self.dirty.len(),
                pending: self.pending(),
            });
        }
        self.counters.epoch += 1;
        if !added.is_empty() {
            // A new link can improve any pair: all dirty.
            for s in 0..n {
                for t in 0..n {
                    if s != t {
                        self.dirty.insert((s, t));
                    }
                }
            }
        } else {
            let removed_set: BTreeSet<(NodeId, NodeId)> = removed.iter().copied().collect();
            for s in 0..n {
                for t in 0..n {
                    if s == t || self.dirty.contains(&(s, t)) {
                        continue;
                    }
                    if self.walk_crosses(s, t, &removed_set) {
                        self.dirty.insert((s, t));
                    }
                }
            }
        }
        self.current_edges = new_edges;
        self.current_digest = graph_digest(graph);
        Ok(StaleReport {
            stale: true,
            expected_digest,
            observed_digest: self.current_digest,
            removed_edges: removed,
            added_edges: added,
            dirty_pairs: self.dirty.len(),
            pending: self.pending(),
        })
    }

    /// [`observe`](Self::observe), with the delta's affected pairs
    /// bounded by `oracle` instead of the conservative built-in rule —
    /// in particular, edge *additions* no longer dirty every pair.
    ///
    /// The oracle (typically a [`cpr_paths::DeltaTracker`] advanced in
    /// lockstep with this plane, built over the same weights as the live
    /// scheme) reports the ordered pairs whose *preferred-tree route*
    /// can change. The plane closes that set over its forwarding walks:
    /// a pair `(s, t)` is dirtied when any node `u` on its current
    /// healed walk owns an affected pair `(u, t)` — hop-by-hop
    /// forwarding composes per-node trees, so `u`'s next hop toward `t`
    /// changing re-routes every walk through `u`. Walks that cannot be
    /// decided are conservatively dirtied.
    ///
    /// # Errors
    ///
    /// [`CompileError::NodeCountMismatch`] as for
    /// [`observe`](Self::observe).
    pub fn observe_with(
        &mut self,
        graph: &Graph,
        oracle: &mut dyn DeltaOracle,
    ) -> Result<StaleReport, CompileError> {
        let n = self.base.node_count();
        if graph.node_count() != n {
            return Err(CompileError::NodeCountMismatch {
                scheme: n,
                graph: graph.node_count(),
            });
        }
        let new_edges = edge_set(graph);
        let expected_digest = self.current_digest;
        let removed: Vec<(NodeId, NodeId)> =
            self.current_edges.difference(&new_edges).copied().collect();
        let added: Vec<(NodeId, NodeId)> =
            new_edges.difference(&self.current_edges).copied().collect();
        if removed.is_empty() && added.is_empty() {
            return Ok(StaleReport {
                stale: false,
                expected_digest,
                observed_digest: expected_digest,
                removed_edges: removed,
                added_edges: added,
                dirty_pairs: self.dirty.len(),
                pending: self.pending(),
            });
        }
        self.counters.epoch += 1;
        let affected = oracle.affected_pairs(graph);
        self.mark_dirty(&affected);
        self.current_edges = new_edges;
        self.current_digest = graph_digest(graph);
        Ok(StaleReport {
            stale: true,
            expected_digest,
            observed_digest: self.current_digest,
            removed_edges: removed,
            added_edges: added,
            dirty_pairs: self.dirty.len(),
            pending: self.pending(),
        })
    }

    /// [`observe_with`](Self::observe_with), with the delta's affected
    /// pairs supplied directly instead of consulted from an oracle —
    /// the multi-plane reconcile computes **one** shared dirty set per
    /// topology delta and distributes it to every algebra class through
    /// this entry point, so N classes pay one delta analysis, not N.
    ///
    /// The caller is responsible for the set's soundness across *all*
    /// receiving classes: `DirtyPairs::Pairs` is still closed over this
    /// plane's own forwarding walks (per-class), so a structurally
    /// sound endpoint set — e.g. `(x, t)` and `(y, t)` for every
    /// removed edge `(x, y)` and every target `t` — is safe for any
    /// algebra, while metric-specific bounds are not.
    ///
    /// # Errors
    ///
    /// [`CompileError::NodeCountMismatch`] as for
    /// [`observe`](Self::observe).
    pub fn observe_with_dirty(
        &mut self,
        graph: &Graph,
        affected: &DirtyPairs,
    ) -> Result<StaleReport, CompileError> {
        let n = self.base.node_count();
        if graph.node_count() != n {
            return Err(CompileError::NodeCountMismatch {
                scheme: n,
                graph: graph.node_count(),
            });
        }
        let new_edges = edge_set(graph);
        let expected_digest = self.current_digest;
        let removed: Vec<(NodeId, NodeId)> =
            self.current_edges.difference(&new_edges).copied().collect();
        let added: Vec<(NodeId, NodeId)> =
            new_edges.difference(&self.current_edges).copied().collect();
        if removed.is_empty() && added.is_empty() {
            return Ok(StaleReport {
                stale: false,
                expected_digest,
                observed_digest: expected_digest,
                removed_edges: removed,
                added_edges: added,
                dirty_pairs: self.dirty.len(),
                pending: self.pending(),
            });
        }
        self.counters.epoch += 1;
        self.mark_dirty(affected);
        self.current_edges = new_edges;
        self.current_digest = graph_digest(graph);
        Ok(StaleReport {
            stale: true,
            expected_digest,
            observed_digest: self.current_digest,
            removed_edges: removed,
            added_edges: added,
            dirty_pairs: self.dirty.len(),
            pending: self.pending(),
        })
    }

    /// Folds an affected-pair set into the dirty set, closing
    /// `DirtyPairs::Pairs` over this plane's current healed walks (a
    /// pair `(s, t)` is dirtied when any node on its walk owns an
    /// affected pair toward `t`).
    fn mark_dirty(&mut self, affected: &DirtyPairs) {
        let n = self.base.node_count();
        match affected {
            DirtyPairs::All => {
                for s in 0..n {
                    for t in 0..n {
                        if s != t {
                            self.dirty.insert((s, t));
                        }
                    }
                }
            }
            DirtyPairs::Pairs(affected) => {
                for s in 0..n {
                    for t in 0..n {
                        if s == t || self.dirty.contains(&(s, t)) {
                            continue;
                        }
                        if self.walk_touches(s, t, affected) {
                            self.dirty.insert((s, t));
                        }
                    }
                }
            }
        }
    }

    /// What the current dirty set implies for the next repair pass.
    fn pending(&self) -> PendingWork {
        let n = self.base.node_count();
        if self.dirty.is_empty() {
            PendingWork::None
        } else if n > 1 && self.dirty.len() == n * n - n {
            PendingWork::Rebuild
        } else {
            PendingWork::Repair
        }
    }

    /// Whether any node on the healed walk for `(s, t)` owns an affected
    /// pair toward `t` (or the walk cannot be decided — conservatively
    /// dirty). The walk runs over the plane's *current* (pre-delta)
    /// view, which is exactly the route whose survival is in question.
    fn walk_touches(&self, s: NodeId, t: NodeId, affected: &BTreeSet<(NodeId, NodeId)>) -> bool {
        if affected.contains(&(s, t)) {
            return true;
        }
        let Some(mut hid) = self.initial_of(s, t) else {
            // Unroutable pairs that become routable are in `affected`
            // (checked above); anything else stays unroutable.
            return false;
        };
        let mut at = s;
        let mut hops = 0usize;
        loop {
            match self.healed_decide(at, hid) {
                HealedDecision::Deliver => return false,
                HealedDecision::Forward { to, next } => {
                    if to != t && affected.contains(&(to, t)) {
                        return true;
                    }
                    at = to;
                    hid = next;
                    hops += 1;
                    if hops > self.base.hop_budget() {
                        return true;
                    }
                }
                HealedDecision::Invalid => return true,
            }
        }
    }

    /// Whether the healed walk for `(s, t)` crosses any edge in
    /// `removed`, or can no longer be decided (conservatively dirty).
    /// Pairs that were already unroutable stay unroutable under edge
    /// removal and are not dirtied.
    fn walk_crosses(&self, s: NodeId, t: NodeId, removed: &BTreeSet<(NodeId, NodeId)>) -> bool {
        let Some(mut hid) = self.initial_of(s, t) else {
            return false;
        };
        let mut at = s;
        let mut hops = 0usize;
        loop {
            match self.healed_decide(at, hid) {
                HealedDecision::Deliver => return false,
                HealedDecision::Forward { to, next } => {
                    if removed.contains(&norm(at, to)) {
                        return true;
                    }
                    at = to;
                    hid = next;
                    hops += 1;
                    if hops > self.base.hop_budget() {
                        return true;
                    }
                }
                HealedDecision::Invalid => return true,
            }
        }
    }

    /// The pair's initial header id through the patch layer.
    fn initial_of(&self, s: NodeId, t: NodeId) -> Option<u32> {
        match self.initial_patch.get(&(s, t)) {
            Some(over) => *over,
            None => self.base.initial_id(s, t),
        }
    }

    /// One healed decision: the patch layer first, then the base arrays
    /// (only for header ids the base plane knows about — repaired walks
    /// may intern ids past its table).
    fn healed_decide(&self, at: NodeId, hid: u32) -> HealedDecision {
        if let Some(step) = self.patch.get(&(at, hid)) {
            return match *step {
                PatchStep::Deliver => HealedDecision::Deliver,
                PatchStep::Forward { to, next } => HealedDecision::Forward { to, next },
            };
        }
        if (hid as usize) >= self.base.header_count() {
            return HealedDecision::Invalid;
        }
        match self.base.decide(at, hid) {
            Decision::Deliver => HealedDecision::Deliver,
            Decision::Forward { port, next } => match self.base.neighbor(at, port) {
                Some(to) => HealedDecision::Forward { to, next },
                None => HealedDecision::Invalid,
            },
            Decision::Invalid => HealedDecision::Invalid,
        }
    }

    /// Re-traces every dirty pair through the live `scheme` on `graph`
    /// (which must describe the same topology passed to the latest
    /// [`observe`](Self::observe) — `repair` re-observes first, so a
    /// single call does both). Dirty pairs that re-trace successfully
    /// leave the fallback path; pairs the new topology cannot route
    /// become loudly unroutable. When every pair is dirty (edge
    /// additions), the pass recompiles the base plane instead.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`]: the live scheme misdelivering or looping
    /// during a re-trace aborts the repair with the pair's error.
    pub fn repair(&mut self, scheme: &S, graph: &Graph) -> Result<RepairStats, CompileError> {
        self.repair_obs(scheme, graph, &cpr_obs::Obs::disabled())
    }

    /// [`repair`](Self::repair), recording the pass into `obs`: the whole
    /// pass runs under a `heal.repair` span whose close event carries the
    /// repair outcome, and the registry accumulates
    /// `heal.repairs` / `heal.repaired_pairs` / `heal.unroutable_pairs`
    /// counters plus a `heal.dirty_pairs` histogram of per-pass dirty-set
    /// sizes — all logical quantities, so snapshots stay deterministic.
    ///
    /// # Errors
    ///
    /// Same as [`repair`](Self::repair).
    pub fn repair_obs(
        &mut self,
        scheme: &S,
        graph: &Graph,
        obs: &cpr_obs::Obs,
    ) -> Result<RepairStats, CompileError> {
        let span = obs.span(
            "heal.repair",
            &[("epoch", cpr_obs::Json::int(self.counters.epoch))],
        );
        let stats = self.repair_inner(scheme, graph)?;
        record_repair_obs(&stats, &span, obs);
        Ok(stats)
    }

    /// [`repair`](Self::repair), with the dirty set bounded by `oracle`
    /// (via [`observe_with`](Self::observe_with)) and the patch/rebuild
    /// choice governed by `policy`: the pass patches only the affected
    /// pairs — edge additions included — and falls back to a full
    /// rebuild only when every pair is dirty or the dirty set exceeds
    /// [`RepairPolicy::max_dirty_fraction`] (a *forced* rebuild, flagged
    /// in [`RepairStats::forced_rebuild`]).
    ///
    /// # Errors
    ///
    /// Same as [`repair`](Self::repair).
    pub fn repair_with(
        &mut self,
        scheme: &S,
        graph: &Graph,
        oracle: &mut dyn DeltaOracle,
        policy: &RepairPolicy,
    ) -> Result<RepairStats, CompileError> {
        self.repair_with_obs(scheme, graph, oracle, policy, &cpr_obs::Obs::disabled())
    }

    /// [`repair_with`](Self::repair_with), recording the pass into `obs`
    /// like [`repair_obs`](Self::repair_obs). A threshold-forced rebuild
    /// additionally emits a `heal.rebuild.forced` event, and when
    /// [`RepairPolicy::record_budget_ms`] is set the pass's wall-clock
    /// lands in a `heal.repair_budget_ms` gauge.
    ///
    /// # Errors
    ///
    /// Same as [`repair`](Self::repair).
    pub fn repair_with_obs(
        &mut self,
        scheme: &S,
        graph: &Graph,
        oracle: &mut dyn DeltaOracle,
        policy: &RepairPolicy,
        obs: &cpr_obs::Obs,
    ) -> Result<RepairStats, CompileError> {
        let start = Instant::now();
        let span = obs.span(
            "heal.repair",
            &[("epoch", cpr_obs::Json::int(self.counters.epoch))],
        );
        self.observe_with(graph, oracle)?;
        self.repair_marked(scheme, graph, policy, obs, start, &span)
    }

    /// [`repair_with_obs`](Self::repair_with_obs) without the observe
    /// step: repairs from the dirty set already accumulated by a prior
    /// [`observe_with_dirty`](Self::observe_with_dirty) (or
    /// [`observe`](Self::observe)) call. The patch/rebuild choice and
    /// obs wiring are identical to `repair_with_obs`.
    ///
    /// # Errors
    ///
    /// Same as [`repair`](Self::repair).
    pub fn repair_observed(
        &mut self,
        scheme: &S,
        graph: &Graph,
        policy: &RepairPolicy,
        obs: &cpr_obs::Obs,
    ) -> Result<RepairStats, CompileError> {
        let start = Instant::now();
        let span = obs.span(
            "heal.repair",
            &[("epoch", cpr_obs::Json::int(self.counters.epoch))],
        );
        self.repair_marked(scheme, graph, policy, obs, start, &span)
    }

    /// The shared post-observe repair tail: forced-rebuild check, the
    /// patch-vs-rebuild decision, and obs recording.
    fn repair_marked(
        &mut self,
        scheme: &S,
        graph: &Graph,
        policy: &RepairPolicy,
        obs: &cpr_obs::Obs,
        start: Instant,
        span: &cpr_obs::Span<'_>,
    ) -> Result<RepairStats, CompileError> {
        let n = self.base.node_count();
        let all_pairs = n * n - n;
        let forced = n > 1
            && self.dirty.len() < all_pairs
            && self.dirty.len() as f64 > policy.max_dirty_fraction * all_pairs as f64;
        if forced {
            obs.event(
                "heal.rebuild.forced",
                &[
                    ("dirty_pairs", cpr_obs::Json::int(self.dirty.len())),
                    ("total_pairs", cpr_obs::Json::int(all_pairs)),
                ],
            );
        }
        let stats = if n > 1 && (forced || self.dirty.len() == all_pairs) {
            self.rebuild(scheme, graph, forced)?
        } else {
            self.patch_dirty(scheme, graph)?
        };
        record_repair_obs(&stats, span, obs);
        if policy.record_budget_ms {
            obs.set_gauge("heal.repair_budget_ms", start.elapsed().as_millis() as i64);
        }
        Ok(stats)
    }

    fn repair_inner(&mut self, scheme: &S, graph: &Graph) -> Result<RepairStats, CompileError> {
        self.observe(graph)?;
        let n = self.base.node_count();
        if self.dirty.len() == n * n - n && n > 1 {
            // Everything is dirty: a fresh compile is the same work with
            // better layout, and it resets the patch layer entirely.
            self.rebuild(scheme, graph, false)
        } else {
            self.patch_dirty(scheme, graph)
        }
    }

    /// Recompiles the base plane from scratch, preserving the cumulative
    /// counters and resetting the patch layer.
    fn rebuild(
        &mut self,
        scheme: &S,
        graph: &Graph,
        forced: bool,
    ) -> Result<RepairStats, CompileError> {
        let dirty_pairs = self.dirty.len();
        let rebuilt = Self::new(scheme, graph)?;
        let counters = HealthCounters {
            repairs: self.counters.repairs + 1,
            full_rebuilds: self.counters.full_rebuilds + 1,
            ..self.counters
        };
        *self = rebuilt;
        self.counters = counters;
        Ok(RepairStats {
            epoch: self.counters.epoch,
            dirty_pairs,
            repaired_pairs: dirty_pairs,
            unroutable_pairs: 0,
            patched_states: 0,
            full_rebuild: true,
            forced_rebuild: forced,
        })
    }

    /// Re-traces every dirty pair into the patch layer (the incremental
    /// path — no recompile).
    fn patch_dirty(&mut self, scheme: &S, graph: &Graph) -> Result<RepairStats, CompileError> {
        let dirty_pairs = self.dirty.len();
        let budget = self.base.hop_budget();
        let mut repaired = 0usize;
        let mut unroutable = 0usize;
        let pairs: Vec<(NodeId, NodeId)> = self.dirty.iter().copied().collect();
        for (s, t) in pairs {
            let Some(h0) = scheme.initial_header(s, t) else {
                self.initial_patch.insert((s, t), None);
                unroutable += 1;
                continue;
            };
            let mut hid = self.intern.intern(h0.clone())?;
            self.initial_patch.insert((s, t), Some(hid));
            let mut h = h0;
            let mut at = s;
            let mut hops = 0usize;
            loop {
                match scheme.step(at, &h) {
                    RouteAction::Deliver => {
                        if at != t {
                            return Err(CompileError::Misdelivery {
                                source: s,
                                target: t,
                                delivered: at,
                            });
                        }
                        self.patch.insert((at, hid), PatchStep::Deliver);
                        break;
                    }
                    RouteAction::Forward { port, header } => {
                        let Some((to, _)) = graph.neighbor_at(at, port) else {
                            return Err(CompileError::Route {
                                source: s,
                                target: t,
                                error: RouteError::BadPort { at, port },
                            });
                        };
                        let next = self.intern.intern(header.clone())?;
                        self.patch
                            .insert((at, hid), PatchStep::Forward { to, next });
                        at = to;
                        hid = next;
                        h = header;
                        hops += 1;
                        if hops > budget {
                            return Err(CompileError::Route {
                                source: s,
                                target: t,
                                error: RouteError::HopBudgetExhausted {
                                    visited: Vec::new(),
                                },
                            });
                        }
                    }
                }
            }
            repaired += 1;
        }
        self.dirty.clear();
        self.counters.repairs += 1;
        self.counters.incremental_repairs += 1;
        Ok(RepairStats {
            epoch: self.counters.epoch,
            dirty_pairs,
            repaired_pairs: repaired,
            unroutable_pairs: unroutable,
            patched_states: self.patch.len(),
            full_rebuild: false,
            forced_rebuild: false,
        })
    }

    /// Routes one query through the healed plane: dirty pairs fall back
    /// to the live scheme, everything else walks the patch-over-base
    /// arrays with every base hop checked against the live edge set —
    /// a stale hop surfaces as [`RouteError::BadPort`], never silently.
    ///
    /// # Errors
    ///
    /// The same [`RouteError`]s as [`ForwardingPlane::walk`], plus
    /// `BadPort` for a stale base hop caught by the live-edge check.
    pub fn route(
        &mut self,
        scheme: &S,
        graph: &Graph,
        source: NodeId,
        target: NodeId,
    ) -> Result<(Vec<NodeId>, Served), RouteError> {
        match self.lookup(scheme, graph, source, target) {
            Ok((path, served)) => {
                match served {
                    Served::Compiled => self.counters.compiled += 1,
                    Served::Degraded => self.counters.degraded += 1,
                    Served::Fallback => self.counters.fallback += 1,
                }
                Ok((path, served))
            }
            Err(e) => {
                self.counters.failed += 1;
                Err(e)
            }
        }
    }

    /// [`route`](Self::route) without the counter updates: a `&self`
    /// read-only lookup, safe to share across serving threads. This is
    /// the hot path of the `cpr-serve` daemon, which publishes a healed
    /// plane snapshot behind an `Arc` and counts queries on its own side.
    ///
    /// # Errors
    ///
    /// Same as [`route`](Self::route).
    pub fn lookup(
        &self,
        scheme: &S,
        graph: &Graph,
        source: NodeId,
        target: NodeId,
    ) -> Result<(Vec<NodeId>, Served), RouteError> {
        if self.dirty.contains(&(source, target)) {
            return cpr_routing::route(scheme, graph, source, target)
                .map(|path| (path, Served::Fallback));
        }
        self.walk_healed(source, target).map(|(path, degraded)| {
            if degraded {
                (path, Served::Degraded)
            } else {
                (path, Served::Compiled)
            }
        })
    }

    fn walk_healed(
        &self,
        source: NodeId,
        target: NodeId,
    ) -> Result<(Vec<NodeId>, bool), RouteError> {
        let Some(mut hid) = self.initial_of(source, target) else {
            return Err(RouteError::Unroutable { source, target });
        };
        let mut at = source;
        let mut visited = vec![source];
        let mut degraded = false;
        loop {
            let from_patch = self.patch.contains_key(&(at, hid));
            match self.healed_decide(at, hid) {
                HealedDecision::Deliver => return Ok((visited, degraded)),
                HealedDecision::Forward { to, next } => {
                    if !from_patch && !self.current_edges.contains(&norm(at, to)) {
                        // The base arrays point at an edge that no longer
                        // exists and the pair escaped the dirty set — fail
                        // loudly rather than forward onto a dead link.
                        let port = match self.base.decide(at, hid) {
                            Decision::Forward { port, .. } => port,
                            _ => 0,
                        };
                        return Err(RouteError::BadPort { at, port });
                    }
                    degraded |= from_patch;
                    at = to;
                    hid = next;
                    visited.push(at);
                    if visited.len() > self.base.hop_budget() {
                        return Err(RouteError::HopBudgetExhausted { visited });
                    }
                }
                HealedDecision::Invalid => return Err(RouteError::Unroutable { source, target }),
            }
        }
    }

    /// Serves a batch through [`route`](Self::route), producing a
    /// [`ServeReport`] whose `degraded` / `fallback` counters are
    /// filled in (a plain [`serve`](crate::engine::serve) always
    /// reports them as zero).
    pub fn serve(
        &mut self,
        scheme: &S,
        graph: &Graph,
        queries: &[(NodeId, NodeId)],
    ) -> ServeReport {
        self.serve_obs(scheme, graph, queries, &cpr_obs::Obs::disabled())
    }

    /// [`serve`](Self::serve), recording the batch into `obs`: a
    /// `heal.serve.hops` latency histogram over delivered queries,
    /// `heal.serve.*` counters split by how each query was answered
    /// (compiled / degraded / fallback / failed), a mirror of the
    /// cumulative [`HealthCounters`] as `heal.health.*` gauges, and a
    /// trace event carrying the batch's wall-clock time (tracer only).
    pub fn serve_obs(
        &mut self,
        scheme: &S,
        graph: &Graph,
        queries: &[(NodeId, NodeId)],
        obs: &cpr_obs::Obs,
    ) -> ServeReport {
        let start = Instant::now();
        let mut report = ServeReport {
            scheme: self.base.scheme().to_string(),
            queries: queries.len(),
            shards: 1,
            delivered: 0,
            failures: Vec::new(),
            total_hops: 0,
            max_hops: 0,
            elapsed: std::time::Duration::ZERO,
            stretch: None,
            degraded: 0,
            fallback: 0,
        };
        for &(source, target) in queries {
            match self.route(scheme, graph, source, target) {
                Ok((path, served)) => {
                    let hops = path.len().saturating_sub(1);
                    report.delivered += 1;
                    report.total_hops += hops as u64;
                    report.max_hops = report.max_hops.max(hops);
                    obs.record("heal.serve.hops", hops as u64);
                    match served {
                        Served::Compiled => obs.incr("heal.serve.compiled"),
                        Served::Degraded => {
                            report.degraded += 1;
                            obs.incr("heal.serve.degraded");
                        }
                        Served::Fallback => {
                            report.fallback += 1;
                            obs.incr("heal.serve.fallback");
                        }
                    }
                }
                Err(error) => {
                    obs.incr("heal.serve.failed");
                    report.failures.push(QueryFailure {
                        source,
                        target,
                        error,
                    });
                }
            }
        }
        report.elapsed = start.elapsed();
        obs.add("heal.serve.queries", queries.len() as u64);
        self.record_health(obs);
        obs.event(
            "heal.serve",
            &[
                ("queries", cpr_obs::Json::int(queries.len())),
                ("delivered", cpr_obs::Json::int(report.delivered)),
                ("micros", cpr_obs::Json::int(report.elapsed.as_micros())),
            ],
        );
        report
    }

    /// Mirrors the cumulative [`HealthCounters`] into `obs` as
    /// `heal.health.*` gauges, so a registry snapshot carries the
    /// plane's current health alongside the per-batch counters.
    pub fn record_health(&self, obs: &cpr_obs::Obs) {
        let c = self.counters;
        obs.set_gauge("heal.health.compiled", c.compiled as i64);
        obs.set_gauge("heal.health.degraded", c.degraded as i64);
        obs.set_gauge("heal.health.fallback", c.fallback as i64);
        obs.set_gauge("heal.health.failed", c.failed as i64);
        obs.set_gauge("heal.health.repairs", c.repairs as i64);
        obs.set_gauge(
            "heal.health.incremental_repairs",
            c.incremental_repairs as i64,
        );
        obs.set_gauge("heal.health.full_rebuilds", c.full_rebuilds as i64);
        obs.set_gauge("heal.health.epoch", c.epoch as i64);
    }
}

/// Shared outcome recording of a repair pass: the `heal.repair` span's
/// close event plus the registry counters and the `heal.dirty_pairs`
/// histogram.
fn record_repair_obs(stats: &RepairStats, span: &cpr_obs::Span<'_>, obs: &cpr_obs::Obs) {
    span.event(
        "heal.repair.done",
        &[
            ("dirty_pairs", cpr_obs::Json::int(stats.dirty_pairs)),
            ("repaired_pairs", cpr_obs::Json::int(stats.repaired_pairs)),
            (
                "unroutable_pairs",
                cpr_obs::Json::int(stats.unroutable_pairs),
            ),
            ("patched_states", cpr_obs::Json::int(stats.patched_states)),
            ("full_rebuild", cpr_obs::Json::Bool(stats.full_rebuild)),
        ],
    );
    obs.incr("heal.repairs");
    obs.add("heal.repaired_pairs", stats.repaired_pairs as u64);
    obs.add("heal.unroutable_pairs", stats.unroutable_pairs as u64);
    obs.record("heal.dirty_pairs", stats.dirty_pairs as u64);
    if stats.full_rebuild {
        obs.incr("heal.full_rebuilds");
    } else {
        obs.incr("heal.incremental_repairs");
    }
}

/// A patched-or-base decision with the next node already resolved.
#[derive(Clone, Copy, Debug)]
enum HealedDecision {
    Deliver,
    Forward { to: NodeId, next: u32 },
    Invalid,
}
