//! Property-based tests for the graph substrate: structural invariants of
//! the graph type and every generator.

use cpr_graph::{generators, io, metrics, traversal, Graph};
use proptest::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Handshake lemma: degrees sum to 2m, for every generator.
    #[test]
    fn degree_sum_is_twice_edges(n in 4usize..40, seed in any::<u64>()) {
        let graphs = [
            generators::gnp(n, 0.3, &mut rng(seed)),
            generators::gnm(n, n.min(n * (n - 1) / 2), &mut rng(seed)),
            generators::random_tree(n, &mut rng(seed)),
            generators::barabasi_albert(n.max(4), 2, &mut rng(seed)),
        ];
        for g in graphs {
            let sum: usize = g.nodes().map(|v| g.degree(v)).sum();
            prop_assert_eq!(sum, 2 * g.edge_count());
        }
    }

    /// Prüfer decoding always yields a tree, and trees have diameter
    /// bounds consistent with BFS.
    #[test]
    fn random_trees_are_trees(n in 2usize..60, seed in any::<u64>()) {
        let g = generators::random_tree(n, &mut rng(seed));
        prop_assert!(traversal::is_tree(&g));
        let d = traversal::diameter(&g).unwrap();
        prop_assert!((d as usize) < n);
        prop_assert_eq!(metrics::triangle_count(&g), 0);
    }

    /// gnp_connected really is connected, whatever p.
    #[test]
    fn gnp_connected_is_connected(n in 2usize..50, p in 0.0f64..0.4, seed in any::<u64>()) {
        let g = generators::gnp_connected(n, p, &mut rng(seed));
        prop_assert!(traversal::is_connected(&g));
    }

    /// Port labelling is consistent: `neighbor_at(v, port_towards(v, u)) == u`.
    #[test]
    fn ports_and_neighbors_agree(n in 3usize..30, seed in any::<u64>()) {
        let g = generators::gnp_connected(n, 0.25, &mut rng(seed));
        for v in g.nodes() {
            for (p, (u, e)) in g.neighbors(v).enumerate() {
                prop_assert_eq!(g.port_towards(v, u), Some(p));
                prop_assert_eq!(g.neighbor_at(v, p), Some((u, e)));
                prop_assert_eq!(g.opposite(v, e), u);
                prop_assert_eq!(g.edge_between(v, u), Some(e));
            }
        }
    }

    /// BFS distances satisfy the edge relaxation inequality everywhere.
    #[test]
    fn bfs_distances_are_consistent(n in 3usize..40, seed in any::<u64>()) {
        let g = generators::gnp_connected(n, 0.2, &mut rng(seed));
        let dist = traversal::bfs_distances(&g, 0);
        for (_, (u, v)) in g.edges() {
            let du = dist[u].unwrap();
            let dv = dist[v].unwrap();
            prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}): {du} vs {dv}");
        }
    }

    /// Serialization round-trips for arbitrary connected graphs.
    #[test]
    fn edge_list_round_trip(n in 2usize..30, seed in any::<u64>()) {
        let g = generators::gnp_connected(n, 0.3, &mut rng(seed));
        let parsed = io::parse_graph(&g.to_string()).unwrap();
        prop_assert_eq!(parsed, g);
    }

    /// The lower-bound family always has the advertised shape.
    #[test]
    fn family_shape(p in 2usize..4, delta in 2usize..4, seed in any::<u64>()) {
        let space = (delta as u64).pow(p as u32);
        let t_count = (space / 2).max(1) as usize;
        let fam = generators::random_lower_bound_family(p, delta, t_count, &mut rng(seed));
        prop_assert_eq!(fam.graph.node_count(), p + p * delta + t_count);
        prop_assert_eq!(fam.graph.edge_count(), p * delta + t_count * p);
        // Every centre reaches every target in exactly 2 hops.
        for &c in &fam.centers {
            let dist = traversal::bfs_distances(&fam.graph, c);
            for (t, _) in &fam.targets {
                prop_assert_eq!(dist[*t], Some(2));
            }
        }
    }

    /// Watts–Strogatz keeps the node count and an edge count near the
    /// lattice's, for any rewiring probability.
    #[test]
    fn watts_strogatz_shape(n in 8usize..40, beta in 0.0f64..1.0, seed in any::<u64>()) {
        let g = generators::watts_strogatz(n, 4, beta, &mut rng(seed));
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.edge_count() <= 2 * n);
        prop_assert!(g.edge_count() >= n); // few rewires get dropped
    }
}

#[test]
fn hypercube_is_vertex_transitive_in_degree() {
    for d in 1..=6u32 {
        let g = generators::hypercube(d);
        assert!(g.nodes().all(|v| g.degree(v) == d as usize));
        assert_eq!(traversal::diameter(&g), Some(d));
    }
}

#[test]
fn balanced_tree_counts() {
    let g = generators::balanced_tree(3, 3);
    assert_eq!(g.node_count(), 1 + 3 + 9 + 27);
    assert!(traversal::is_tree(&g));
}

#[test]
fn grid_diameter_is_manhattan() {
    let g = generators::grid(4, 7);
    assert_eq!(traversal::diameter(&g), Some(3 + 6));
}

#[test]
fn fig1_graphs_are_the_paper_shapes() {
    let a = generators::fig1a();
    assert_eq!(
        (a.graph.node_count(), a.graph.edge_count()),
        (3, 3),
        "fig1a is the triangle"
    );
    let c = generators::fig1c();
    assert_eq!(traversal::diameter(&c.graph), Some(2));
    assert_eq!(metrics::triangle_count(&c.graph), 0);
}

#[test]
fn metrics_on_known_graph() {
    // Two triangles sharing an edge: the "bowtie" minus the cut vertex.
    let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)]).unwrap();
    assert_eq!(metrics::triangle_count(&g), 2);
    let stats = metrics::degree_stats(&g);
    assert_eq!(stats.max, 3);
    assert_eq!(stats.min, 2);
    assert!(metrics::average_clustering(&g) > 0.5);
}
