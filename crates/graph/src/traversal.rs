//! Unweighted traversal: BFS, connectivity, components, diameter.

use std::collections::VecDeque;

use crate::graph::{Graph, NodeId};

/// BFS hop distances from `source`; `None` for unreachable nodes.
///
/// # Examples
///
/// ```
/// use cpr_graph::{generators, traversal};
///
/// let g = generators::path(4);
/// assert_eq!(traversal::bfs_distances(&g, 0), vec![Some(0), Some(1), Some(2), Some(3)]);
/// ```
///
/// # Panics
///
/// Panics if `source` is out of bounds.
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<Option<u32>> {
    assert!(source < graph.node_count(), "source out of bounds");
    let mut dist = vec![None; graph.node_count()];
    dist[source] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued nodes have distances");
        for (v, _) in graph.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS parents from `source`: `parent[v]` is the predecessor of `v` on a
/// minimum-hop path from `source` (`None` for the source itself and for
/// unreachable nodes).
pub fn bfs_parents(graph: &Graph, source: NodeId) -> Vec<Option<NodeId>> {
    assert!(source < graph.node_count(), "source out of bounds");
    let mut parent = vec![None; graph.node_count()];
    let mut seen = vec![false; graph.node_count()];
    seen[source] = true;
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for (v, _) in graph.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    parent
}

/// The connected components: `(component_of, count)` where
/// `component_of[v]` is a dense component index in `0..count`.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = count;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for (v, _) in graph.neighbors(u) {
                if comp[v] == usize::MAX {
                    comp[v] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// `true` when the graph is connected (the empty graph is connected).
pub fn is_connected(graph: &Graph) -> bool {
    graph.node_count() == 0 || connected_components(graph).1 == 1
}

/// The eccentricity of `v`: the maximum hop distance from `v` to any
/// reachable node, or `None` when some node is unreachable.
pub fn eccentricity(graph: &Graph, v: NodeId) -> Option<u32> {
    let dist = bfs_distances(graph, v);
    dist.into_iter()
        .collect::<Option<Vec<_>>>()?
        .into_iter()
        .max()
}

/// The exact hop diameter, or `None` for disconnected or empty graphs.
/// Runs one BFS per node — fine for experiment-sized graphs.
pub fn diameter(graph: &Graph) -> Option<u32> {
    if graph.node_count() == 0 {
        return None;
    }
    let mut best = 0;
    for v in graph.nodes() {
        best = best.max(eccentricity(graph, v)?);
    }
    Some(best)
}

/// `true` when the graph is a tree: connected with `m = n − 1`.
pub fn is_tree(graph: &Graph) -> bool {
    graph.node_count() > 0 && graph.edge_count() == graph.node_count() - 1 && is_connected(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn distances_on_cycle() {
        let g = generators::cycle(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(
            d,
            vec![Some(0), Some(1), Some(2), Some(3), Some(2), Some(1)]
        );
    }

    #[test]
    fn parents_give_min_hop_tree() {
        let g = generators::star(5); // center 0
        let p = bfs_parents(&g, 1);
        assert_eq!(p[1], None);
        assert_eq!(p[0], Some(1));
        assert_eq!(p[2], Some(0));
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = crate::Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(diameter(&generators::path(5)), Some(4));
        assert_eq!(diameter(&generators::cycle(6)), Some(3));
        assert_eq!(diameter(&generators::complete(4)), Some(1));
        assert_eq!(diameter(&generators::hypercube(3)), Some(3));
        let disconnected = crate::Graph::from_edges(3, [(0, 1)]).unwrap();
        assert_eq!(diameter(&disconnected), None);
        assert_eq!(diameter(&crate::Graph::new()), None);
    }

    #[test]
    fn tree_detection() {
        assert!(is_tree(&generators::path(5)));
        assert!(is_tree(&generators::star(7)));
        assert!(!is_tree(&generators::cycle(4)));
        assert!(!is_tree(&crate::Graph::from_edges(3, [(0, 1)]).unwrap()));
    }

    #[test]
    fn empty_graph_is_connected_by_convention() {
        assert!(is_connected(&crate::Graph::new()));
    }
}
