//! Topology metrics, used by the experiment harness to characterize the
//! graphs the schemes are measured on (degree structure drives both the
//! `log d` factors in the memory bounds and the cluster geometry of the
//! landmark schemes).

use crate::graph::{Graph, NodeId};

/// Summary statistics of a graph's degree sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree `d` (the paper's `d`).
    pub max: usize,
    /// Mean degree `2m/n`.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
}

/// Computes the degree statistics.
///
/// # Panics
///
/// Panics on the empty graph.
pub fn degree_stats(graph: &Graph) -> DegreeStats {
    assert!(graph.node_count() > 0, "empty graph has no degrees");
    let mut degrees: Vec<usize> = graph.nodes().map(|v| graph.degree(v)).collect();
    degrees.sort_unstable();
    DegreeStats {
        min: degrees[0],
        max: *degrees.last().expect("non-empty"),
        mean: 2.0 * graph.edge_count() as f64 / graph.node_count() as f64,
        median: degrees[degrees.len() / 2],
    }
}

/// The degree histogram: `hist[d]` = number of nodes of degree `d`.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut hist = vec![0; graph.max_degree() + 1];
    for v in graph.nodes() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

/// The local clustering coefficient of `v`: the fraction of `v`'s
/// neighbour pairs that are themselves adjacent (`None` for degree < 2).
pub fn local_clustering(graph: &Graph, v: NodeId) -> Option<f64> {
    let neighbors: Vec<NodeId> = graph.neighbors(v).map(|(u, _)| u).collect();
    let k = neighbors.len();
    if k < 2 {
        return None;
    }
    let mut closed = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            if graph.contains_edge(neighbors[i], neighbors[j]) {
                closed += 1;
            }
        }
    }
    Some(closed as f64 / (k * (k - 1) / 2) as f64)
}

/// The average clustering coefficient over nodes of degree ≥ 2
/// (Watts–Strogatz definition); 0.0 when no such node exists.
pub fn average_clustering(graph: &Graph) -> f64 {
    let values: Vec<f64> = graph
        .nodes()
        .filter_map(|v| local_clustering(graph, v))
        .collect();
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Number of triangles in the graph, each counted once: a triangle
/// `{a < b < c}` is detected exactly at its unique lowest edge `{a, b}`
/// by scanning for a common neighbour `c` above both endpoints.
pub fn triangle_count(graph: &Graph) -> usize {
    let mut count = 0;
    for (_, (u, v)) in graph.edges() {
        for (w, _) in graph.neighbors(u) {
            if w > u && w > v && graph.contains_edge(v, w) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degree_stats_of_star() {
        let g = generators::star(6);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert!((s.mean - 2.0 * 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.median, 1);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = generators::grid(3, 4);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 12);
        assert_eq!(hist[2], 4); // corners
    }

    #[test]
    fn clustering_of_complete_graph_is_one() {
        let g = generators::complete(5);
        assert_eq!(average_clustering(&g), 1.0);
        assert_eq!(local_clustering(&g, 0), Some(1.0));
    }

    #[test]
    fn clustering_of_tree_is_zero() {
        let g = generators::balanced_tree(2, 3);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn leaf_has_no_clustering() {
        let g = generators::star(4);
        assert_eq!(local_clustering(&g, 1), None);
        assert_eq!(local_clustering(&g, 0), Some(0.0));
    }

    #[test]
    fn triangles_counted_once() {
        let g = generators::complete(4); // C(4,3) = 4 triangles
        assert_eq!(triangle_count(&g), 4);
        let tri = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(triangle_count(&tri), 1);
        let tree = generators::path(5);
        assert_eq!(triangle_count(&tree), 0);
    }

    use crate::Graph;
}
