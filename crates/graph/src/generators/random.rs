//! Random topology generators.
//!
//! All generators are deterministic in the supplied RNG, so experiments are
//! reproducible from a seed.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{Graph, NodeId};
use crate::traversal::connected_components;

/// A uniformly random labelled tree on `n` nodes via a random Prüfer
/// sequence.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    assert!(n > 0, "tree needs at least one node");
    if n == 1 {
        return Graph::with_nodes(1);
    }
    if n == 2 {
        return Graph::from_edges(2, [(0, 1)]).expect("two-node tree");
    }
    let pruefer: Vec<NodeId> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &pruefer {
        degree[v] += 1;
    }
    let mut g = Graph::with_nodes(n);
    // Min-leaf extraction without a heap: n is experiment-sized.
    let mut leaf_ptr = 0;
    let mut leaf: Option<NodeId> = None;
    for &v in &pruefer {
        let l = match leaf.take() {
            Some(l) => l,
            None => {
                while degree[leaf_ptr] != 1 {
                    leaf_ptr += 1;
                }
                let l = leaf_ptr;
                leaf_ptr += 1;
                l
            }
        };
        g.add_edge(l, v).expect("Prüfer edges are simple");
        degree[l] -= 1;
        degree[v] -= 1;
        if degree[v] == 1 && v < leaf_ptr {
            leaf = Some(v);
        }
    }
    // Join the two remaining degree-1 nodes.
    let mut last = degree
        .iter()
        .enumerate()
        .filter(|&(_, d)| *d == 1)
        .map(|(v, _)| v);
    let a = last.next().expect("two leaves remain");
    let b = last.next().expect("two leaves remain");
    g.add_edge(a, b).expect("final Prüfer edge is simple");
    g
}

/// Erdős–Rényi `G(n, p)`: every pair independently an edge with
/// probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or `n == 0`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!(n > 0, "graph needs at least one node");
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut g = Graph::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v).expect("fresh pair");
            }
        }
    }
    g
}

/// `G(n, p)` conditioned on connectivity: the random graph is augmented
/// with uniformly random inter-component edges until connected. For
/// `p ≳ ln n / n` the augmentation is almost always empty, so the
/// distribution is close to true conditioned `G(n, p)`; experiments need
/// connectivity because the paper assumes a connected network.
pub fn gnp_connected<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = gnp(n, p, rng);
    loop {
        let (comp, count) = connected_components(&g);
        if count == 1 {
            return g;
        }
        // Pick a random representative in component 0 and in another
        // component and connect them.
        let in_zero: Vec<NodeId> = g.nodes().filter(|&v| comp[v] == 0).collect();
        let outside: Vec<NodeId> = g.nodes().filter(|&v| comp[v] != 0).collect();
        let u = *in_zero.choose(rng).expect("component 0 is non-empty");
        let v = *outside.choose(rng).expect("another component exists");
        g.add_edge(u, v).expect("inter-component edge is new");
    }
}

/// `G(n, m)`: exactly `m` edges chosen uniformly among all pairs.
///
/// # Panics
///
/// Panics if `m` exceeds `n·(n−1)/2`.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(n > 0, "graph needs at least one node");
    let max = n * (n - 1) / 2;
    assert!(m <= max, "too many edges requested");
    let mut g = Graph::with_nodes(n);
    // Rejection sampling is fast while m is well below max; fall back to
    // shuffling all pairs when dense.
    if m * 3 < max {
        while g.edge_count() < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v && !g.contains_edge(u, v) {
                g.add_edge(u, v).expect("checked fresh");
            }
        }
    } else {
        let mut pairs: Vec<(NodeId, NodeId)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        pairs.shuffle(rng);
        for &(u, v) in pairs.iter().take(m) {
            g.add_edge(u, v).expect("each pair once");
        }
    }
    g
}

/// Barabási–Albert preferential attachment: starts from a clique of
/// `m0 = m_attach` nodes, then each new node attaches to `m_attach`
/// distinct existing nodes chosen proportionally to degree. Produces
/// connected scale-free graphs like the Internet-ish topologies compact
/// routing is usually evaluated on.
///
/// # Panics
///
/// Panics if `m_attach == 0` or `n < m_attach + 1`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m_attach: usize, rng: &mut R) -> Graph {
    assert!(m_attach >= 1, "attachment degree must be positive");
    assert!(n > m_attach, "need more nodes than the seed clique");
    let mut g = Graph::with_nodes(n);
    // Repeated-endpoint list: picking a uniform element is degree-
    // proportional sampling.
    let mut endpoints: Vec<NodeId> = Vec::new();
    for u in 0..m_attach {
        for v in (u + 1)..m_attach {
            g.add_edge(u, v).expect("seed clique");
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    if m_attach == 1 {
        // Degenerate seed: a single node with no edges; seed the endpoint
        // list so the first attachment has a target.
        endpoints.push(0);
    }
    for v in m_attach..n {
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m_attach);
        while chosen.len() < m_attach {
            let &candidate = endpoints.choose(rng).expect("endpoint list non-empty");
            if candidate != v && !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        for u in chosen {
            g.add_edge(v, u).expect("new node's edges are fresh");
            endpoints.push(v);
            endpoints.push(u);
        }
    }
    g
}

/// Waxman's geometric random graph: nodes at uniform positions in the
/// unit square, pair `{u, v}` an edge with probability
/// `alpha · exp(−dist(u,v) / (beta · √2))` — the classic synthetic model
/// of router-level topologies (locality-biased, tunable density).
/// Augmented to connectivity like [`gnp_connected`].
///
/// # Panics
///
/// Panics if `alpha ∉ (0, 1]` or `beta ≤ 0` or `n == 0`.
pub fn waxman_connected<R: Rng + ?Sized>(n: usize, alpha: f64, beta: f64, rng: &mut R) -> Graph {
    assert!(n > 0, "graph needs at least one node");
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    assert!(beta > 0.0, "beta must be positive");
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let max_dist = std::f64::consts::SQRT_2;
    let mut g = Graph::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let (ux, uy) = positions[u];
            let (vx, vy) = positions[v];
            let dist = ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt();
            let p = alpha * (-dist / (beta * max_dist)).exp();
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v).expect("fresh pair");
            }
        }
    }
    // Connectivity augmentation: link nearest cross-component pairs.
    loop {
        let (comp, count) = connected_components(&g);
        if count == 1 {
            return g;
        }
        let mut best: Option<(NodeId, NodeId, f64)> = None;
        for u in 0..n {
            for v in (u + 1)..n {
                if comp[u] == comp[v] {
                    continue;
                }
                let (ux, uy) = positions[u];
                let (vx, vy) = positions[v];
                let dist = ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt();
                if best.is_none_or(|(_, _, d)| dist < d) {
                    best = Some((u, v, dist));
                }
            }
        }
        let (u, v, _) = best.expect("disconnected graph has a cross pair");
        g.add_edge(u, v).expect("cross-component edge is new");
    }
}

/// Watts–Strogatz small world: a ring lattice where each node connects to
/// its `k/2` nearest neighbours on each side, with each edge rewired to a
/// uniform random endpoint with probability `beta` (skipping rewires that
/// would create loops or duplicates).
///
/// # Panics
///
/// Panics if `k` is odd, `k < 2`, or `k >= n`.
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "k must be even and at least 2"
    );
    assert!(k < n, "k must be below n");
    assert!((0.0..=1.0).contains(&beta), "probability out of range");
    let mut g = Graph::with_nodes(n);
    for u in 0..n {
        for offset in 1..=(k / 2) {
            let v = (u + offset) % n;
            if rng.gen_bool(beta) {
                // Rewire: connect u to a random node instead.
                let mut tries = 0;
                loop {
                    let w = rng.gen_range(0..n);
                    if w != u && !g.contains_edge(u, w) {
                        g.add_edge(u, w).expect("checked fresh");
                        break;
                    }
                    tries += 1;
                    if tries > 4 * n {
                        // Saturated neighbourhood; keep the lattice edge if
                        // still available.
                        if !g.contains_edge(u, v) {
                            g.add_edge(u, v).expect("checked fresh");
                        }
                        break;
                    }
                }
            } else if !g.contains_edge(u, v) {
                g.add_edge(u, v).expect("checked fresh");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{is_connected, is_tree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..10 {
            let g = random_tree(30, &mut rng(seed));
            assert!(is_tree(&g), "seed {seed} did not produce a tree");
        }
        assert_eq!(random_tree(1, &mut rng(0)).node_count(), 1);
        assert!(is_tree(&random_tree(2, &mut rng(0))));
        assert!(is_tree(&random_tree(3, &mut rng(0))));
    }

    #[test]
    fn random_tree_degree_sum() {
        let g = random_tree(50, &mut rng(3));
        let total: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(total, 2 * (50 - 1));
    }

    #[test]
    fn gnp_extremes() {
        let empty = gnp(10, 0.0, &mut rng(1));
        assert_eq!(empty.edge_count(), 0);
        let full = gnp(10, 1.0, &mut rng(1));
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn gnp_connected_is_connected() {
        for seed in 0..5 {
            let g = gnp_connected(40, 0.05, &mut rng(seed));
            assert!(is_connected(&g), "seed {seed} disconnected");
        }
    }

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(20, 30, &mut rng(2));
        assert_eq!(g.edge_count(), 30);
        let dense = gnm(10, 44, &mut rng(2));
        assert_eq!(dense.edge_count(), 44);
    }

    #[test]
    fn barabasi_albert_shape() {
        let g = barabasi_albert(100, 3, &mut rng(5));
        assert_eq!(g.node_count(), 100);
        // seed clique C(3,2)=3 edges + 97 * 3
        assert_eq!(g.edge_count(), 3 + 97 * 3);
        assert!(is_connected(&g));
        // Hubs exist: some node should have degree well above m.
        assert!(g.max_degree() >= 9);
    }

    #[test]
    fn barabasi_albert_m1_is_tree() {
        let g = barabasi_albert(50, 1, &mut rng(6));
        assert!(is_tree(&g));
    }

    #[test]
    fn waxman_is_connected_and_locality_biased() {
        let g = waxman_connected(60, 0.9, 0.12, &mut rng(9));
        assert_eq!(g.node_count(), 60);
        assert!(is_connected(&g));
        // Locality bias keeps it sparse relative to dense G(n, 0.9).
        assert!(g.edge_count() < 60 * 59 / 4);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn waxman_rejects_bad_alpha() {
        waxman_connected(10, 1.5, 0.1, &mut rng(0));
    }

    #[test]
    fn watts_strogatz_zero_beta_is_lattice() {
        let g = watts_strogatz(12, 4, 0.0, &mut rng(7));
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(is_connected(&g));
    }

    #[test]
    fn watts_strogatz_rewired_still_reasonable() {
        let g = watts_strogatz(50, 4, 0.3, &mut rng(8));
        assert_eq!(g.node_count(), 50);
        assert!(g.edge_count() >= 90, "most edges should survive rewiring");
    }
}
