//! The counterexample graphs of the paper's Fig. 1.
//!
//! Lemma 1's converse direction is proved by exhibiting, for each way
//! selectivity can fail in a monotone delimited algebra, a small graph in
//! which the preferred paths do not form a tree. These generators build
//! those graphs together with the weight-class assignment of their edges;
//! the caller instantiates the classes with concrete weights of the algebra
//! under test.

use crate::graph::{EdgeId, Graph};

/// A Fig. 1 counterexample: a graph whose edges are partitioned into the
/// weight classes `w1` and `w2` (for Fig. 1a, all edges are in `w1`).
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The topology.
    pub graph: Graph,
    /// Edges carrying the weight `w1` (the paper's `w` for Fig. 1a).
    pub w1_edges: Vec<EdgeId>,
    /// Edges carrying the weight `w2` (empty for Fig. 1a).
    pub w2_edges: Vec<EdgeId>,
}

impl Counterexample {
    /// Materializes the per-edge weights: `w1` on `w1_edges`, `w2` on
    /// `w2_edges`, in edge-id order.
    pub fn weights<W: Clone>(&self, w1: &W, w2: &W) -> Vec<W> {
        let mut out: Vec<Option<W>> = vec![None; self.graph.edge_count()];
        for &e in &self.w1_edges {
            out[e] = Some(w1.clone());
        }
        for &e in &self.w2_edges {
            out[e] = Some(w2.clone());
        }
        out.into_iter()
            .map(|w| w.expect("every edge is in exactly one class"))
            .collect()
    }
}

/// Fig. 1a — violation of *auto-selectivity* (`w ⊕ w ≻ w`): the triangle
/// with all edges of weight `w`. Preferred paths are exactly the three
/// direct edges, which form a cycle, not a tree.
pub fn fig1a() -> Counterexample {
    let graph = Graph::from_edges(3, [(0, 1), (0, 2), (1, 2)]).expect("triangle");
    Counterexample {
        w1_edges: (0..graph.edge_count()).collect(),
        w2_edges: Vec::new(),
        graph,
    }
}

/// Fig. 1b — `w1 ≺ w2` but `w1 ⊕ w2 ≻ w2`: the triangle with edge
/// `(0, 1)` of weight `w1` and edges `(0, 2)`, `(1, 2)` of weight `w2`.
/// Again every preferred path is a direct edge.
pub fn fig1b() -> Counterexample {
    let graph = Graph::from_edges(3, [(0, 1), (0, 2), (1, 2)]).expect("triangle");
    Counterexample {
        w1_edges: vec![0],
        w2_edges: vec![1, 2],
        graph,
    }
}

/// Fig. 1c — `w1 = w2` in preference but `w1 ⊕ w2 ≻ w2`: the 4-cycle
/// `0 − 1 − 3 − 2 − 0` with weights alternating `w1, w2, w1, w2`.
/// Adjacent pairs prefer their direct edge; the two diagonal pairs use
/// two-hop paths — and all four edges appear on preferred paths, so no
/// spanning tree contains a preferred path for every pair.
pub fn fig1c() -> Counterexample {
    // Node numbering follows the paper's figure: 1↦0, 2↦1, 3↦2, 4↦3.
    let graph = Graph::from_edges(4, [(0, 1), (1, 3), (3, 2), (2, 0)]).expect("4-cycle");
    Counterexample {
        w1_edges: vec![0, 2],
        w2_edges: vec![1, 3],
        graph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_is_uniform_triangle() {
        let ce = fig1a();
        assert_eq!(ce.graph.node_count(), 3);
        assert_eq!(ce.graph.edge_count(), 3);
        assert_eq!(ce.w1_edges.len(), 3);
        assert!(ce.w2_edges.is_empty());
        let w = ce.weights(&10u64, &99u64);
        assert_eq!(w, vec![10, 10, 10]);
    }

    #[test]
    fn fig1b_partition_covers_all_edges() {
        let ce = fig1b();
        assert_eq!(ce.w1_edges.len() + ce.w2_edges.len(), ce.graph.edge_count());
        let w = ce.weights(&1u64, &5u64);
        assert_eq!(w, vec![1, 5, 5]);
    }

    #[test]
    fn fig1c_is_alternating_cycle() {
        let ce = fig1c();
        assert_eq!(ce.graph.node_count(), 4);
        assert_eq!(ce.graph.edge_count(), 4);
        assert!(ce.graph.nodes().all(|v| ce.graph.degree(v) == 2));
        // Diagonals are non-edges.
        assert!(!ce.graph.contains_edge(0, 3));
        assert!(!ce.graph.contains_edge(1, 2));
        let w = ce.weights(&7u64, &8u64);
        assert_eq!(w, vec![7, 8, 7, 8]);
    }
}
