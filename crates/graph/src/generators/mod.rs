//! Topology generators: deterministic families, random models, and the
//! paper's special constructions (Fig. 1 counterexamples, Fig. 2
//! lower-bound family).

mod basic;
mod counterexamples;
mod lower_bound;
mod random;

pub use basic::{balanced_tree, complete, cycle, grid, hypercube, path, star};
pub use counterexamples::{fig1a, fig1b, fig1c, Counterexample};
pub use lower_bound::{lower_bound_family, random_lower_bound_family, LowerBoundFamily};
pub use random::{
    barabasi_albert, gnm, gnp, gnp_connected, random_tree, watts_strogatz, waxman_connected,
};
