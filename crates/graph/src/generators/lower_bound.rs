//! The Fraigniaud–Gavoille lower-bound graph family (paper Fig. 2,
//! Theorem 4).
//!
//! The family starts from `p ≥ 2` centre nodes `c_i`, gives each centre
//! `δ ≥ 2` relay neighbours `z_{i,1}, …, z_{i,δ}` (edges in weight class
//! `i`), and wires every target `t ∈ T` to exactly one relay per centre
//! according to a length-`p` *word* over the alphabet `{0, …, δ−1}`: the
//! `i`-th symbol selects which relay of centre `i` links to `t` (again in
//! weight class `i`).
//!
//! With weights satisfying the paper's condition (1), the preferred
//! `c_i → t` path is the unique two-hop path through the relay the word
//! selects, and *any* other path blows the stretch bound. Since there are
//! `δ^(p·|T|)` distinct wirings that all demand different forwarding
//! behaviour at the centres, some node needs `Ω(|T| · p · log δ)` bits —
//! linear in the network size.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{EdgeId, Graph, NodeId};

/// A member of the Fig. 2 lower-bound family, with the structure needed to
/// (a) assign the class weights and (b) count the family's information
/// content.
#[derive(Clone, Debug)]
pub struct LowerBoundFamily {
    /// The topology.
    pub graph: Graph,
    /// The `p` centre nodes `c_i`.
    pub centers: Vec<NodeId>,
    /// `relays[i][j]` is `z_{i,j}`, the `j`-th relay of centre `i`.
    pub relays: Vec<Vec<NodeId>>,
    /// The target nodes, each with its defining word:
    /// `words[k].1[i] = j` means target `k` links to relay `z_{i,j}`.
    pub targets: Vec<(NodeId, Vec<u8>)>,
    /// `class_of_edge[e] = i`: edge `e` carries the class-`i` weight `w_i`.
    pub class_of_edge: Vec<usize>,
}

impl LowerBoundFamily {
    /// Materializes per-edge weights by instantiating class `i` with
    /// `class_weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `class_weights.len()` differs from the number of centres.
    pub fn weights<W: Clone>(&self, class_weights: &[W]) -> Vec<W> {
        assert_eq!(
            class_weights.len(),
            self.centers.len(),
            "one weight per centre class required"
        );
        self.class_of_edge
            .iter()
            .map(|&i| class_weights[i].clone())
            .collect()
    }

    /// Number of distinct family members with this shape: each of the
    /// `|T|` targets independently picks one of `δ^p` words, so the family
    /// encodes `|T| · p · log₂ δ` bits. This is the information-theoretic
    /// content that any (even stretched) routing scheme must store at the
    /// centre side (Fraigniaud–Gavoille counting argument).
    pub fn information_bits(&self) -> f64 {
        let delta = self.relays.first().map_or(0, Vec::len);
        let p = self.centers.len();
        self.targets.len() as f64 * p as f64 * (delta as f64).log2()
    }
}

/// Builds the Fig. 2 family member for `p` centres, `δ` relays per centre
/// and the given target words (each of length `p` over `0..δ`).
///
/// # Panics
///
/// Panics if `p < 2`, `δ < 2`, any word has the wrong length or an
/// out-of-range symbol, or two words are identical (duplicate targets
/// would create parallel structure the counting argument does not use).
pub fn lower_bound_family(p: usize, delta: usize, words: &[Vec<u8>]) -> LowerBoundFamily {
    assert!(p >= 2, "need at least two centres");
    assert!(delta >= 2, "need at least two relays per centre");
    for w in words {
        assert_eq!(w.len(), p, "word length must equal the number of centres");
        assert!(
            w.iter().all(|&s| (s as usize) < delta),
            "word symbol out of range"
        );
    }
    for (a, w) in words.iter().enumerate() {
        assert!(!words[a + 1..].contains(w), "duplicate target word {w:?}");
    }

    let mut graph = Graph::new();
    let mut class_of_edge: Vec<usize> = Vec::new();
    let push_edge = |graph: &mut Graph, class_of_edge: &mut Vec<usize>, u, v, class| {
        let e: EdgeId = graph.add_edge(u, v).expect("family edges are simple");
        debug_assert_eq!(e, class_of_edge.len());
        class_of_edge.push(class);
    };

    let centers: Vec<NodeId> = (0..p).map(|_| graph.add_node()).collect();
    let relays: Vec<Vec<NodeId>> = (0..p)
        .map(|i| {
            (0..delta)
                .map(|_| {
                    let z = graph.add_node();
                    push_edge(&mut graph, &mut class_of_edge, centers[i], z, i);
                    z
                })
                .collect()
        })
        .collect();
    let targets: Vec<(NodeId, Vec<u8>)> = words
        .iter()
        .map(|word| {
            let t = graph.add_node();
            for (i, &j) in word.iter().enumerate() {
                push_edge(&mut graph, &mut class_of_edge, relays[i][j as usize], t, i);
            }
            (t, word.clone())
        })
        .collect();

    LowerBoundFamily {
        graph,
        centers,
        relays,
        targets,
        class_of_edge,
    }
}

/// Builds a family member with `t_count` *random distinct* words — the
/// typical way an experiment samples the family.
///
/// # Panics
///
/// Panics if `t_count > δ^p` (not enough distinct words) or `δ^p`
/// overflows `usize`.
pub fn random_lower_bound_family<R: Rng + ?Sized>(
    p: usize,
    delta: usize,
    t_count: usize,
    rng: &mut R,
) -> LowerBoundFamily {
    let space = (delta as u128).pow(p as u32);
    assert!(
        (t_count as u128) <= space,
        "requested more targets than distinct words exist"
    );
    // Sample distinct word indices, then decode to base-δ words.
    let words: Vec<Vec<u8>> = if space <= 4 * t_count as u128 {
        // Dense: shuffle the full space.
        let mut all: Vec<u128> = (0..space).collect();
        all.shuffle(rng);
        all.truncate(t_count);
        all.into_iter()
            .map(|ix| decode_word(ix, p, delta))
            .collect()
    } else {
        let mut chosen: Vec<u128> = Vec::with_capacity(t_count);
        while chosen.len() < t_count {
            let ix = rng.gen_range(0..space);
            if !chosen.contains(&ix) {
                chosen.push(ix);
            }
        }
        chosen
            .into_iter()
            .map(|ix| decode_word(ix, p, delta))
            .collect()
    };
    lower_bound_family(p, delta, &words)
}

fn decode_word(mut ix: u128, p: usize, delta: usize) -> Vec<u8> {
    let mut word = vec![0u8; p];
    for symbol in word.iter_mut() {
        *symbol = (ix % delta as u128) as u8;
        ix /= delta as u128;
    }
    word
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::bfs_distances;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_example_p2_delta2() {
        // Fig. 2: p = 2, δ = 2, all four words.
        let words = vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]];
        let fam = lower_bound_family(2, 2, &words);
        assert_eq!(fam.centers.len(), 2);
        assert_eq!(fam.relays.iter().flatten().count(), 4);
        assert_eq!(fam.targets.len(), 4);
        // n = p + pδ + |T| = 2 + 4 + 4 = 10
        assert_eq!(fam.graph.node_count(), 10);
        // m = pδ (centre–relay) + |T|·p (relay–target) = 4 + 8 = 12
        assert_eq!(fam.graph.edge_count(), 12);
        assert_eq!(fam.information_bits(), 8.0); // 4 targets · 2 · log2(2)
    }

    #[test]
    fn centre_to_target_distance_is_two() {
        let words = vec![vec![0, 0], vec![1, 1], vec![0, 1]];
        let fam = lower_bound_family(2, 2, &words);
        for &c in &fam.centers {
            let dist = bfs_distances(&fam.graph, c);
            for (t, _) in &fam.targets {
                assert_eq!(dist[*t], Some(2), "c={c} t={t}");
            }
        }
    }

    #[test]
    fn word_determines_wiring() {
        let words = vec![vec![1, 0], vec![0, 1]];
        let fam = lower_bound_family(2, 2, &words);
        let (t0, w0) = &fam.targets[0];
        assert_eq!(w0, &vec![1, 0]);
        assert!(fam.graph.contains_edge(fam.relays[0][1], *t0));
        assert!(fam.graph.contains_edge(fam.relays[1][0], *t0));
        assert!(!fam.graph.contains_edge(fam.relays[0][0], *t0));
    }

    #[test]
    fn edge_classes_match_centres() {
        let words = vec![vec![0, 0, 1], vec![2, 1, 0]];
        let fam = lower_bound_family(3, 3, &words);
        let class_weights = vec![10u64, 20, 30];
        let w = fam.weights(&class_weights);
        for (e, (u, v)) in fam.graph.edges() {
            let class = fam.class_of_edge[e];
            assert_eq!(w[e], class_weights[class]);
            // Each edge touches centre `class`'s star or a class-`class`
            // relay–target link.
            let relay_set = &fam.relays[class];
            assert!(
                u == fam.centers[class]
                    || v == fam.centers[class]
                    || relay_set.contains(&u)
                    || relay_set.contains(&v)
            );
        }
    }

    #[test]
    fn random_family_distinct_words() {
        let mut rng = StdRng::seed_from_u64(11);
        let fam = random_lower_bound_family(3, 2, 8, &mut rng); // full space
        assert_eq!(fam.targets.len(), 8);
        let mut words: Vec<Vec<u8>> = fam.targets.iter().map(|(_, w)| w.clone()).collect();
        words.sort();
        words.dedup();
        assert_eq!(words.len(), 8);
        let sparse = random_lower_bound_family(4, 3, 10, &mut rng);
        assert_eq!(sparse.targets.len(), 10);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_words_rejected() {
        lower_bound_family(2, 2, &[vec![0, 0], vec![0, 0]]);
    }

    #[test]
    #[should_panic(expected = "more targets")]
    fn oversampling_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        random_lower_bound_family(2, 2, 5, &mut rng);
    }
}
