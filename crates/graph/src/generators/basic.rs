//! Deterministic topology generators.

use crate::graph::Graph;

/// The path graph `0 − 1 − … − (n−1)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "path needs at least one node");
    let mut g = Graph::with_nodes(n);
    for v in 1..n {
        g.add_edge(v - 1, v).expect("path edges are simple");
    }
    g
}

/// The cycle graph on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least three nodes");
    let mut g = path(n);
    g.add_edge(n - 1, 0).expect("closing edge is simple");
    g
}

/// The star graph: node `0` is the centre, nodes `1..n` are leaves.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs a centre and at least one leaf");
    let mut g = Graph::with_nodes(n);
    for v in 1..n {
        g.add_edge(0, v).expect("star edges are simple");
    }
    g
}

/// The complete graph `K_n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n > 0, "complete graph needs at least one node");
    let mut g = Graph::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v).expect("complete edges are simple");
        }
    }
    g
}

/// The `rows × cols` grid graph; node `(r, c)` has id `r * cols + c`.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut g = Graph::with_nodes(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                g.add_edge(id, id + 1).expect("grid edges are simple");
            }
            if r + 1 < rows {
                g.add_edge(id, id + cols).expect("grid edges are simple");
            }
        }
    }
    g
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes; nodes adjacent iff
/// their ids differ in one bit.
///
/// # Panics
///
/// Panics if `d > 20` (over a million nodes is outside experiment scale).
pub fn hypercube(d: u32) -> Graph {
    assert!(d <= 20, "hypercube dimension too large");
    let n = 1usize << d;
    let mut g = Graph::with_nodes(n);
    for u in 0..n {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if u < v {
                g.add_edge(u, v).expect("hypercube edges are simple");
            }
        }
    }
    g
}

/// The complete `b`-ary tree of the given `depth` (depth 0 is a single
/// root). Node 0 is the root; children are laid out breadth-first.
///
/// # Panics
///
/// Panics if `b < 2` or the tree would exceed a million nodes.
pub fn balanced_tree(b: usize, depth: u32) -> Graph {
    assert!(b >= 2, "branching factor must be at least 2");
    // n = (b^(depth+1) - 1) / (b - 1)
    let mut n: usize = 1;
    let mut level = 1usize;
    for _ in 0..depth {
        level = level.checked_mul(b).expect("tree size overflow");
        n = n.checked_add(level).expect("tree size overflow");
        assert!(n <= 1_000_000, "tree too large for experiments");
    }
    let mut g = Graph::with_nodes(n);
    for v in 1..n {
        let parent = (v - 1) / b;
        g.add_edge(parent, v).expect("tree edges are simple");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{is_connected, is_tree};

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!((g.node_count(), g.edge_count()), (5, 4));
        assert!(is_tree(&g));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn single_node_path() {
        let g = path(1);
        assert_eq!((g.node_count(), g.edge_count()), (1, 0));
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(5);
        assert_eq!((g.node_count(), g.edge_count()), (5, 5));
        assert!(g.nodes().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        assert!((1..6).all(|v| g.degree(v) == 1));
        assert!(is_tree(&g));
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // m = rows*(cols-1) + cols*(rows-1) = 3*3 + 4*2 = 17
        assert_eq!(g.edge_count(), 17);
        assert!(is_connected(&g));
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior (1,1)
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(g.contains_edge(0b0000, 0b1000));
        assert!(!g.contains_edge(0b0000, 0b0011));
    }

    #[test]
    fn balanced_tree_shape() {
        let g = balanced_tree(2, 3);
        assert_eq!(g.node_count(), 15);
        assert!(is_tree(&g));
        assert_eq!(g.degree(0), 2);
        let g3 = balanced_tree(3, 2);
        assert_eq!(g3.node_count(), 13);
        assert!(is_tree(&g3));
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn tiny_cycle_rejected() {
        cycle(2);
    }
}
