//! # cpr-graph — the graph substrate for compact policy routing
//!
//! Port-labelled simple undirected graphs, edge weightings over routing
//! algebras, unweighted traversal, and the topology generators the paper's
//! experiments need — including the Fig. 1 counterexample graphs and the
//! Fig. 2 Fraigniaud–Gavoille lower-bound family.
//!
//! The graph type exposes neighbours through *local ports* (indices into a
//! node's adjacency list) because the compact-routing model measures
//! routing tables in bits and forwarding decisions in `⌈log deg(v)⌉`-bit
//! port numbers, never in global node identifiers.
//!
//! ```
//! use cpr_algebra::policies::ShortestPath;
//! use cpr_graph::{generators, traversal, EdgeWeights};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let g = generators::gnp_connected(64, 0.08, &mut rng);
//! assert!(traversal::is_connected(&g));
//! let weights = EdgeWeights::random(&g, &ShortestPath, &mut rng);
//! assert_eq!(weights.len(), g.edge_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
mod graph;
pub mod io;
pub mod metrics;
pub mod traversal;
mod weights;

pub use graph::{EdgeId, Graph, GraphError, NodeId, Port};
pub use weights::EdgeWeights;
