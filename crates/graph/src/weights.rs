//! Edge weightings: assigning algebra weights to the edges of a graph.
//!
//! Topology and weighting are separate so that one graph can be weighted
//! under several algebras in the same experiment (exactly how the paper's
//! Table 1 compares policies on common topologies).

use cpr_algebra::{PathWeight, RoutingAlgebra, SampleWeights};
use rand::Rng;

use crate::graph::{EdgeId, Graph};

/// A weighting of a graph's edges with the finite weights of some algebra.
///
/// # Examples
///
/// ```
/// use cpr_algebra::policies::ShortestPath;
/// use cpr_graph::{generators, EdgeWeights};
/// use rand::SeedableRng;
///
/// let g = generators::cycle(5);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let w = EdgeWeights::random(&g, &ShortestPath, &mut rng);
/// assert_eq!(w.len(), g.edge_count());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeWeights<W> {
    weights: Vec<W>,
}

impl<W: Clone> EdgeWeights<W> {
    /// Creates a weighting from one weight per edge, in edge-id order.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != graph.edge_count()`.
    pub fn from_vec(graph: &Graph, weights: Vec<W>) -> Self {
        assert_eq!(
            weights.len(),
            graph.edge_count(),
            "one weight per edge required"
        );
        EdgeWeights { weights }
    }

    /// Creates a weighting where every edge has the same weight.
    pub fn uniform(graph: &Graph, weight: W) -> Self {
        EdgeWeights {
            weights: vec![weight; graph.edge_count()],
        }
    }

    /// Creates a weighting by evaluating `f` on each edge id.
    pub fn from_fn(graph: &Graph, mut f: impl FnMut(EdgeId) -> W) -> Self {
        EdgeWeights {
            weights: (0..graph.edge_count()).map(&mut f).collect(),
        }
    }

    /// Creates a random weighting using the algebra's weight sampler.
    pub fn random<A, R>(graph: &Graph, alg: &A, rng: &mut R) -> Self
    where
        A: SampleWeights<W = W>,
        R: Rng + ?Sized,
    {
        EdgeWeights {
            weights: alg.random_weights(rng, graph.edge_count()),
        }
    }

    /// The weight of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn weight(&self, e: EdgeId) -> &W {
        &self.weights[e]
    }

    /// Replaces the weight of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn set(&mut self, e: EdgeId, w: W) {
        self.weights[e] = w;
    }

    /// Number of weighted edges.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` when the graph had no edges.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Iterates `(EdgeId, &W)` in edge order.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, &W)> {
        self.weights.iter().enumerate()
    }

    /// The weight of a node path under `alg`, evaluated left-
    /// associatively. Returns `φ` if the node sequence is not a path in
    /// `graph` (or is a single node — the trivial path carries no weight).
    pub fn path_weight<A>(&self, alg: &A, graph: &Graph, path: &[crate::NodeId]) -> PathWeight<W>
    where
        A: RoutingAlgebra<W = W>,
        W: std::fmt::Debug + PartialEq,
    {
        let mut edge_weights = Vec::with_capacity(path.len().saturating_sub(1));
        for hop in path.windows(2) {
            match graph.edge_between(hop[0], hop[1]) {
                Some(e) => edge_weights.push(self.weight(e).clone()),
                None => return PathWeight::Infinite,
            }
        }
        alg.weigh_path_left(edge_weights.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use cpr_algebra::policies::ShortestPath;

    #[test]
    fn uniform_and_from_fn() {
        let g = generators::path(4);
        let u = EdgeWeights::uniform(&g, 7u64);
        assert_eq!(*u.weight(2), 7);
        let f = EdgeWeights::from_fn(&g, |e| e as u64 + 1);
        assert_eq!(*f.weight(0), 1);
        assert_eq!(*f.weight(2), 3);
    }

    #[test]
    #[should_panic(expected = "one weight per edge")]
    fn from_vec_length_checked() {
        let g = generators::path(4);
        EdgeWeights::from_vec(&g, vec![1u64, 2]);
    }

    #[test]
    fn path_weight_sums_along_path() {
        let g = generators::path(4); // 0-1-2-3, edges 0,1,2
        let w = EdgeWeights::from_fn(&g, |e| e as u64 + 1); // 1,2,3
        assert_eq!(
            w.path_weight(&ShortestPath, &g, &[0, 1, 2, 3]),
            PathWeight::Finite(6)
        );
        assert_eq!(
            w.path_weight(&ShortestPath, &g, &[0, 2]),
            PathWeight::Infinite
        );
        assert_eq!(w.path_weight(&ShortestPath, &g, &[2]), PathWeight::Infinite);
    }

    #[test]
    fn set_overwrites() {
        let g = generators::path(3);
        let mut w = EdgeWeights::uniform(&g, 1u64);
        w.set(1, 9);
        assert_eq!(*w.weight(1), 9);
        assert_eq!(w.iter().count(), 2);
        assert!(!w.is_empty());
    }
}
