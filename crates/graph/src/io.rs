//! Plain-text graph serialization.
//!
//! The format is the classic edge list the [`Display`](std::fmt::Display)
//! impl of [`Graph`] emits: a header line `n m` followed by one `u v`
//! line per edge, in edge-id order. Weighted variants append one weight
//! token per line. Lines starting with `#` are comments.

use std::fmt::Write as _;
use std::str::FromStr;

use crate::graph::{Graph, GraphError};
use crate::weights::EdgeWeights;

/// Errors from parsing an edge-list document.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseGraphError {
    /// The `n m` header line is missing or malformed.
    BadHeader,
    /// An edge line is malformed (wrong arity or non-numeric token).
    BadEdgeLine {
        /// 1-based line number in the input.
        line: usize,
    },
    /// Fewer edge lines than the header's `m`.
    MissingEdges {
        /// Edges expected.
        expected: usize,
        /// Edges found.
        found: usize,
    },
    /// The edge set is invalid (self-loop, duplicate, out of bounds).
    Graph(GraphError),
}

impl std::fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseGraphError::BadHeader => write!(f, "missing or malformed `n m` header"),
            ParseGraphError::BadEdgeLine { line } => write!(f, "malformed edge on line {line}"),
            ParseGraphError::MissingEdges { expected, found } => {
                write!(f, "expected {expected} edges, found {found}")
            }
            ParseGraphError::Graph(e) => write!(f, "invalid edge: {e}"),
        }
    }
}

impl std::error::Error for ParseGraphError {}

impl From<GraphError> for ParseGraphError {
    fn from(e: GraphError) -> Self {
        ParseGraphError::Graph(e)
    }
}

/// Parses the edge-list format produced by `Graph`'s `Display`.
///
/// # Examples
///
/// ```
/// use cpr_graph::{generators, io};
///
/// let g = generators::cycle(5);
/// let text = g.to_string();
/// let parsed = io::parse_graph(&text).unwrap();
/// assert_eq!(parsed, g);
/// ```
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed input.
pub fn parse_graph(text: &str) -> Result<Graph, ParseGraphError> {
    let mut lines = meaningful_lines(text);
    let (_, header) = lines.next().ok_or(ParseGraphError::BadHeader)?;
    let mut header_tokens = header.split_whitespace();
    let n: usize = parse_token(header_tokens.next()).ok_or(ParseGraphError::BadHeader)?;
    let m: usize = parse_token(header_tokens.next()).ok_or(ParseGraphError::BadHeader)?;
    if header_tokens.next().is_some() {
        return Err(ParseGraphError::BadHeader);
    }
    let mut graph = Graph::with_nodes(n);
    let mut found = 0;
    for (line_no, line) in lines {
        let mut tokens = line.split_whitespace();
        let u: usize =
            parse_token(tokens.next()).ok_or(ParseGraphError::BadEdgeLine { line: line_no })?;
        let v: usize =
            parse_token(tokens.next()).ok_or(ParseGraphError::BadEdgeLine { line: line_no })?;
        if tokens.next().is_some() {
            return Err(ParseGraphError::BadEdgeLine { line: line_no });
        }
        graph.add_edge(u, v)?;
        found += 1;
    }
    if found != m {
        return Err(ParseGraphError::MissingEdges { expected: m, found });
    }
    Ok(graph)
}

/// Serializes a graph together with one weight per edge (appended as a
/// third token on each edge line, via the weight's `Display`).
pub fn write_weighted<W: std::fmt::Display + Clone>(
    graph: &Graph,
    weights: &EdgeWeights<W>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", graph.node_count(), graph.edge_count());
    for (e, (u, v)) in graph.edges() {
        let _ = writeln!(out, "{u} {v} {}", weights.weight(e));
    }
    out
}

/// Parses the weighted edge-list format of [`write_weighted`]; weights
/// parse through `W::from_str`.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed input or unparsable weights.
pub fn parse_weighted<W>(text: &str) -> Result<(Graph, EdgeWeights<W>), ParseGraphError>
where
    W: FromStr + Clone,
{
    let mut lines = meaningful_lines(text);
    let (_, header) = lines.next().ok_or(ParseGraphError::BadHeader)?;
    let mut header_tokens = header.split_whitespace();
    let n: usize = parse_token(header_tokens.next()).ok_or(ParseGraphError::BadHeader)?;
    let m: usize = parse_token(header_tokens.next()).ok_or(ParseGraphError::BadHeader)?;
    let mut graph = Graph::with_nodes(n);
    let mut weights: Vec<W> = Vec::new();
    for (line_no, line) in lines {
        let bad = ParseGraphError::BadEdgeLine { line: line_no };
        let mut tokens = line.split_whitespace();
        let u: usize = parse_token(tokens.next()).ok_or(bad.clone())?;
        let v: usize = parse_token(tokens.next()).ok_or(bad.clone())?;
        let w: W = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(bad.clone())?;
        if tokens.next().is_some() {
            return Err(bad);
        }
        graph.add_edge(u, v)?;
        weights.push(w);
    }
    if weights.len() != m {
        return Err(ParseGraphError::MissingEdges {
            expected: m,
            found: weights.len(),
        });
    }
    let ew = EdgeWeights::from_vec(&graph, weights);
    Ok((graph, ew))
}

fn meaningful_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
}

fn parse_token<T: FromStr>(token: Option<&str>) -> Option<T> {
    token.and_then(|t| t.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn display_parse_round_trip() {
        for g in [
            generators::cycle(7),
            generators::grid(3, 3),
            generators::star(5),
            Graph::with_nodes(4), // edgeless
        ] {
            let text = g.to_string();
            assert_eq!(parse_graph(&text).unwrap(), g, "round trip failed");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a triangle\n3 3\n\n0 1\n# middle comment\n1 2\n0 2\n";
        let g = parse_graph(text).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert!(g.contains_edge(0, 2));
    }

    #[test]
    fn header_errors() {
        assert_eq!(parse_graph(""), Err(ParseGraphError::BadHeader));
        assert_eq!(parse_graph("x y\n"), Err(ParseGraphError::BadHeader));
        assert_eq!(parse_graph("3 1 9\n0 1\n"), Err(ParseGraphError::BadHeader));
    }

    #[test]
    fn edge_errors() {
        assert_eq!(
            parse_graph("3 1\n0\n"),
            Err(ParseGraphError::BadEdgeLine { line: 2 })
        );
        assert_eq!(
            parse_graph("3 2\n0 1\n"),
            Err(ParseGraphError::MissingEdges {
                expected: 2,
                found: 1
            })
        );
        assert!(matches!(
            parse_graph("2 1\n0 0\n"),
            Err(ParseGraphError::Graph(_))
        ));
    }

    #[test]
    fn weighted_round_trip() {
        let g = generators::path(4);
        let w = EdgeWeights::from_fn(&g, |e| (e as u64 + 1) * 10);
        let text = write_weighted(&g, &w);
        let (g2, w2): (Graph, EdgeWeights<u64>) = parse_weighted(&text).unwrap();
        assert_eq!(g2, g);
        for e in 0..g.edge_count() {
            assert_eq!(w2.weight(e), w.weight(e));
        }
    }

    #[test]
    fn weighted_rejects_missing_weight() {
        assert_eq!(
            parse_weighted::<u64>("2 1\n0 1\n"),
            Err(ParseGraphError::BadEdgeLine { line: 2 })
        );
    }

    use crate::Graph;
}
