//! The port-labelled graph type used by every routing scheme in this
//! workspace.
//!
//! The compact-routing model (paper §2.3) requires that the edges emanating
//! from a node `v` are labelled *locally*: `L_E(v, ·) ∈ {1, …, deg(v)}`, so
//! that a forwarding decision is "send the packet out of port `p`", not
//! "send it to node `u`". [`Graph`] therefore exposes neighbours through
//! 0-based *ports* — indices into the node's adjacency list — and all
//! routing schemes account for port labels with `⌈log deg(v)⌉` bits.

use std::fmt;

/// Index of a node; nodes are `0..graph.node_count()`.
pub type NodeId = usize;

/// Index of an undirected edge; edges are `0..graph.edge_count()`.
pub type EdgeId = usize;

/// A local port number at a node: the `p`-th incident edge, `0 ≤ p <
/// deg(v)`. Port numbers carry no global information (paper §2.3's
/// requirement that labels encode nothing beyond identification).
pub type Port = usize;

/// Errors returned when constructing or mutating a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint is `>= node_count()`.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
    },
    /// Self-loops are not allowed (the model uses simple graphs).
    SelfLoop {
        /// The node with the attempted loop.
        node: NodeId,
    },
    /// Parallel edges are not allowed (the model uses simple graphs).
    DuplicateEdge {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node } => write!(f, "node {node} out of bounds"),
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A finite, simple, undirected graph with port-labelled adjacency.
///
/// # Examples
///
/// ```
/// use cpr_graph::Graph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::with_nodes(3);
/// let e01 = g.add_edge(0, 1)?;
/// let e12 = g.add_edge(1, 2)?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.degree(1), 2);
/// // Node 1 reaches node 2 through its local port 1.
/// assert_eq!(g.port_towards(1, 2), Some(1));
/// assert_eq!(g.neighbor_at(1, 1), Some((2, e12)));
/// assert_eq!(g.edge_between(0, 1), Some(e01));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    edges: Vec<(NodeId, NodeId)>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Adds an isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds the undirected edge `{u, v}` and returns its id.
    ///
    /// # Errors
    ///
    /// Rejects out-of-bounds endpoints, self-loops and parallel edges.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        let n = self.node_count();
        for node in [u, v] {
            if node >= n {
                return Err(GraphError::NodeOutOfBounds { node });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.edge_between(u, v).is_some() {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        let e = self.edges.len();
        self.edges.push((u, v));
        self.adj[u].push((v, e));
        self.adj[v].push((u, e));
        Ok(e)
    }

    /// Number of nodes `n = |V|`.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges `m = |E|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.node_count()
    }

    /// Iterator over `(EdgeId, (u, v))` for all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, (NodeId, NodeId))> + '_ {
        self.edges.iter().copied().enumerate()
    }

    /// The endpoints of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e]
    }

    /// Given edge `e` incident to `v`, returns the opposite endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds or not incident to `v`.
    pub fn opposite(&self, v: NodeId, e: EdgeId) -> NodeId {
        let (a, b) = self.edges[e];
        if a == v {
            b
        } else if b == v {
            a
        } else {
            panic!("edge {e} = ({a}, {b}) is not incident to node {v}")
        }
    }

    /// Degree of node `v` (also its number of ports).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// The maximum degree `d` over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterator over `(neighbor, edge)` pairs of `v`, in port order: the
    /// `p`-th yielded pair is reachable through port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.adj[v].iter().copied()
    }

    /// The neighbour and edge behind port `p` of node `v`, or `None` when
    /// `p ≥ deg(v)`.
    pub fn neighbor_at(&self, v: NodeId, p: Port) -> Option<(NodeId, EdgeId)> {
        self.adj[v].get(p).copied()
    }

    /// The port of `v` whose edge leads to `u`, or `None` if `{v, u} ∉ E`.
    pub fn port_towards(&self, v: NodeId, u: NodeId) -> Option<Port> {
        self.adj[v].iter().position(|&(w, _)| w == u)
    }

    /// The edge between `u` and `v`, if any.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        // Scan the smaller adjacency list.
        let (base, target) = if self.adj[u].len() <= self.adj[v].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[base]
            .iter()
            .find(|&&(w, _)| w == target)
            .map(|&(_, e)| e)
    }

    /// Returns `true` if the edge `{u, v}` exists.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Builds the edge-induced subgraph over the *same* node set: keeps
    /// exactly the edges for which `keep` returns `true`. Returns the
    /// subgraph plus, per subgraph edge, the originating edge id in
    /// `self` — the mapping solver code needs to translate weights.
    ///
    /// # Examples
    ///
    /// ```
    /// use cpr_graph::Graph;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)])?;
    /// let (sub, origin) = g.filter_edges(|e, _| e != 1);
    /// assert_eq!(sub.edge_count(), 2);
    /// assert_eq!(origin, vec![0, 2]);
    /// assert!(!sub.contains_edge(1, 2));
    /// # Ok(())
    /// # }
    /// ```
    pub fn filter_edges(
        &self,
        mut keep: impl FnMut(EdgeId, (NodeId, NodeId)) -> bool,
    ) -> (Graph, Vec<EdgeId>) {
        let mut sub = Graph::with_nodes(self.node_count());
        let mut origin = Vec::new();
        for (e, (u, v)) in self.edges() {
            if keep(e, (u, v)) {
                sub.add_edge(u, v).expect("subgraph of a simple graph");
                origin.push(e);
            }
        }
        (sub, origin)
    }

    /// Builds a graph from an explicit edge list over nodes `0..n`.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from [`add_edge`](Self::add_edge).
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Self, GraphError> {
        let mut g = Graph::with_nodes(n);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, edges={:?})",
            self.node_count(),
            self.edge_count(),
            self.edges
        )
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {}", self.node_count(), self.edge_count())?;
        for (_, (u, v)) in self.edges() {
            writeln!(f, "{u} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = Graph::with_nodes(2);
        let v2 = g.add_node();
        assert_eq!(v2, 2);
        let e = g.add_edge(0, 2).unwrap();
        assert_eq!(g.endpoints(e), (0, 2));
        assert_eq!(g.opposite(0, e), 2);
        assert_eq!(g.opposite(2, e), 0);
    }

    #[test]
    fn rejects_self_loops_duplicates_oob() {
        let mut g = Graph::with_nodes(3);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
        assert_eq!(
            g.add_edge(0, 3),
            Err(GraphError::NodeOutOfBounds { node: 3 })
        );
        g.add_edge(0, 1).unwrap();
        assert_eq!(
            g.add_edge(1, 0),
            Err(GraphError::DuplicateEdge { u: 1, v: 0 })
        );
    }

    #[test]
    fn ports_are_insertion_ordered() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 2).unwrap();
        g.add_edge(0, 1).unwrap();
        g.add_edge(0, 3).unwrap();
        let neighbors: Vec<NodeId> = g.neighbors(0).map(|(v, _)| v).collect();
        assert_eq!(neighbors, vec![2, 1, 3]);
        assert_eq!(g.port_towards(0, 1), Some(1));
        assert_eq!(g.port_towards(0, 3), Some(2));
        assert_eq!(g.port_towards(0, 0), None);
        assert_eq!(g.neighbor_at(0, 5), None);
    }

    #[test]
    fn edge_between_scans_smaller_side() {
        let mut g = Graph::with_nodes(5);
        for v in 1..5 {
            g.add_edge(0, v).unwrap();
        }
        assert_eq!(g.edge_between(0, 3), Some(2));
        assert_eq!(g.edge_between(3, 0), Some(2));
        assert_eq!(g.edge_between(1, 2), None);
        assert!(g.contains_edge(4, 0));
    }

    #[test]
    fn from_edges_builds_path() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "not incident")]
    fn opposite_panics_for_foreign_edge() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        g.opposite(2, 0);
    }

    #[test]
    fn display_is_edge_list() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.to_string(), "3 2\n0 1\n1 2\n");
    }
}
